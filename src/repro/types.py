"""Shared primitive types used across the :mod:`repro` package.

The whole library describes traffic between *racks* (top-of-rack switches)
identified by small non-negative integers.  A communication request is an
unordered pair of distinct racks; we canonicalise every pair to
``(min, max)`` so that dictionaries and sets behave consistently regardless
of the direction a request was generated in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple

__all__ = [
    "NodeId",
    "NodePair",
    "Request",
    "canonical_pair",
    "pair_index",
    "pairs_of",
    "all_pairs",
]

#: A rack / top-of-rack switch identifier.
NodeId = int

#: A canonical (sorted) unordered pair of distinct racks.
NodePair = Tuple[int, int]


def canonical_pair(u: int, v: int) -> NodePair:
    """Return the canonical representation of the unordered pair ``{u, v}``.

    Parameters
    ----------
    u, v:
        Distinct rack identifiers.

    Raises
    ------
    ValueError
        If ``u == v`` — self-loops carry no traffic in the model and are
        rejected early to surface generator bugs.
    """
    if u == v:
        raise ValueError(f"a node pair must consist of two distinct nodes, got ({u}, {v})")
    return (u, v) if u < v else (v, u)


def pair_index(u: int, v: int, n: int) -> int:
    """Map the unordered pair ``{u, v}`` to a unique index in ``[0, n*(n-1)/2)``.

    The mapping enumerates pairs in lexicographic order of their canonical
    form and is used to address dense per-pair numpy arrays (request
    counters, weights) without hashing overhead.
    """
    a, b = canonical_pair(u, v)
    if b >= n:
        raise ValueError(f"node {b} out of range for n={n}")
    # Pairs (a, *) occupy a block of size (n - 1 - a); blocks for all a' < a
    # together have size a*n - a*(a+1)/2.
    return a * n - a * (a + 1) // 2 + (b - a - 1)


def pairs_of(node: int, n: int) -> Iterator[NodePair]:
    """Yield every canonical pair that has ``node`` as an endpoint."""
    for other in range(n):
        if other != node:
            yield canonical_pair(node, other)


def all_pairs(n: int) -> Iterator[NodePair]:
    """Yield every canonical pair over ``n`` nodes in lexicographic order."""
    for u in range(n):
        for v in range(u + 1, n):
            yield (u, v)


@dataclass(frozen=True, slots=True)
class Request:
    """A single communication request between two racks.

    Attributes
    ----------
    src, dst:
        Rack identifiers.  The pair is *unordered* for matching purposes;
        use :meth:`pair` for the canonical form.
    size:
        Abstract demand size (defaults to 1).  The paper's model treats a
        request as a unit of transferred traffic; generators may use larger
        sizes which the simulation engine expands or weights.
    timestamp:
        Optional logical arrival time, carried through from trace
        generators for analysis purposes; the algorithms themselves only
        look at arrival *order*.
    """

    src: int
    dst: int
    size: float = 1.0
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"request endpoints must differ, got {self.src}")
        if self.size <= 0:
            raise ValueError(f"request size must be positive, got {self.size}")

    def pair(self) -> NodePair:
        """Canonical unordered node pair of this request."""
        return canonical_pair(self.src, self.dst)

    def reversed(self) -> "Request":
        """The same request with endpoints swapped (identical pair)."""
        return Request(self.dst, self.src, self.size, self.timestamp)


def as_requests(pairs: Iterable[Tuple[int, int]]) -> list[Request]:
    """Convert an iterable of ``(src, dst)`` tuples into :class:`Request` objects."""
    return [Request(int(s), int(t)) for s, t in pairs]
