"""Analysis tools: offline optimum, competitive ratios, adversaries, reports.

These modules connect the empirical side of the reproduction to the paper's
theory: a dynamic-programming offline optimum for tiny instances, an
empirical competitive-ratio harness, adversarial (lower-bound style) request
sequences, and plain-text rendering of the figure series for the benchmark
reports and ``EXPERIMENTS.md``.
"""

from .offline_opt import optimal_dynamic_matching_cost
from .competitive import CompetitiveReport, empirical_competitive_ratio
from .adversary import adversarial_paging_trace, round_robin_adversary_trace
from .plotting import ascii_line_chart, plot_results
from .report import markdown_report, write_markdown_report
from .tables import (
    format_comparison_table,
    format_series_table,
    routing_cost_reduction,
    series_rows,
)

__all__ = [
    "optimal_dynamic_matching_cost",
    "empirical_competitive_ratio",
    "CompetitiveReport",
    "adversarial_paging_trace",
    "round_robin_adversary_trace",
    "ascii_line_chart",
    "plot_results",
    "markdown_report",
    "write_markdown_report",
    "format_series_table",
    "format_comparison_table",
    "series_rows",
    "routing_cost_reduction",
]
