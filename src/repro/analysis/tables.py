"""Plain-text rendering of result series.

The original paper presents its evaluation as matplotlib figures; this
reproduction renders the same series as aligned text tables and CSV-style
rows, which the benchmark harness prints and ``EXPERIMENTS.md`` embeds.  Each
table has one row per checkpoint (number of requests) and one column per
algorithm/parameter combination — exactly the data behind the corresponding
figure panel.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

import numpy as np

from ..errors import SimulationError
from ..simulation.results import AggregateResult

__all__ = [
    "series_rows",
    "format_series_table",
    "format_comparison_table",
    "routing_cost_reduction",
]


def _series_values(result: AggregateResult, metric: str) -> np.ndarray:
    series = result.series
    if metric == "routing_cost":
        return series.routing_cost
    if metric == "total_cost":
        return series.total_cost
    if metric == "elapsed_seconds":
        return series.elapsed_seconds
    if metric == "matched_fraction":
        return series.matched_fraction
    if metric == "reconfiguration_cost":
        return series.reconfiguration_cost
    raise SimulationError(f"unknown metric {metric!r}")


def series_rows(
    results: Mapping[str, AggregateResult], metric: str = "routing_cost"
) -> List[List[float]]:
    """Rows of ``[requests, value_1, value_2, ...]`` across all results.

    All results must share the same checkpoint grid (they do when produced by
    :meth:`ExperimentRunner.compare_on_shared_trace`).
    """
    if not results:
        raise SimulationError("no results to tabulate")
    items = list(results.items())
    requests = items[0][1].series.requests
    for _label, result in items[1:]:
        if len(result.series.requests) != len(requests) or np.any(
            result.series.requests != requests
        ):
            raise SimulationError("results have mismatching checkpoint grids")
    columns = [_series_values(result, metric) for _label, result in items]
    rows: List[List[float]] = []
    for i, req in enumerate(requests):
        rows.append([float(req)] + [float(col[i]) for col in columns])
    return rows


def format_series_table(
    results: Mapping[str, AggregateResult],
    metric: str = "routing_cost",
    title: str | None = None,
    float_format: str = "{:.4g}",
) -> str:
    """Render results as an aligned text table (one column per configuration)."""
    rows = series_rows(results, metric)
    headers = ["# requests"] + list(results.keys())
    str_rows = [headers] + [
        [f"{int(row[0])}"] + [float_format.format(v) for v in row[1:]] for row in rows
    ]
    widths = [max(len(r[c]) for r in str_rows) for c in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(str_rows):
        lines.append("  ".join(cell.rjust(widths[c]) for c, cell in enumerate(row)))
        if i == 0:
            lines.append("  ".join("-" * widths[c] for c in range(len(headers))))
    return "\n".join(lines)


def routing_cost_reduction(
    result: AggregateResult, oblivious: AggregateResult
) -> float:
    """Fractional routing-cost reduction of ``result`` relative to the oblivious baseline.

    This is the number the paper quotes as "routing cost reduction of up to
    35 % with a cache size of 18".
    """
    if oblivious.routing_cost_mean <= 0:
        raise SimulationError("oblivious baseline has non-positive routing cost")
    return 1.0 - result.routing_cost_mean / oblivious.routing_cost_mean


def format_comparison_table(
    results: Mapping[str, AggregateResult],
    oblivious_label: str | None = None,
) -> str:
    """Summary table: final routing cost, reduction vs. oblivious, runtime, matched share."""
    if not results:
        raise SimulationError("no results to tabulate")
    oblivious = results.get(oblivious_label) if oblivious_label else None
    headers = [
        "configuration",
        "routing cost",
        "reduction vs oblivious",
        "runtime [s]",
        "matched share",
    ]
    rows: List[List[str]] = []
    for label, result in results.items():
        if oblivious is not None and label != oblivious_label:
            reduction = f"{100.0 * routing_cost_reduction(result, oblivious):.1f}%"
        else:
            reduction = "-"
        rows.append(
            [
                label,
                f"{result.routing_cost_mean:.4g}",
                reduction,
                f"{result.elapsed_seconds_mean:.3f}",
                f"{100.0 * result.matched_fraction_mean:.1f}%",
            ]
        )
    str_rows = [headers] + rows
    widths = [max(len(r[c]) for r in str_rows) for c in range(len(headers))]
    lines = []
    for i, row in enumerate(str_rows):
        lines.append("  ".join(cell.ljust(widths[c]) for c, cell in enumerate(row)))
        if i == 0:
            lines.append("  ".join("-" * widths[c] for c in range(len(headers))))
    return "\n".join(lines)
