"""Markdown report generation.

Turns a collection of aggregated results into a self-contained Markdown
section — summary table, per-checkpoint series, ASCII chart, and the headline
routing-cost reductions — so the benchmark harness (or a user script) can
regenerate an EXPERIMENTS.md-style record directly from measured data.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Optional, Sequence, Union

from ..errors import SimulationError
from ..simulation.results import AggregateResult
from .plotting import plot_results
from .tables import routing_cost_reduction, series_rows

__all__ = ["markdown_report", "write_markdown_report"]

PathLike = Union[str, Path]


def _markdown_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def markdown_report(
    results: Mapping[str, AggregateResult],
    title: str,
    description: str = "",
    oblivious_label: Optional[str] = None,
    include_chart: bool = True,
    include_series: bool = False,
) -> str:
    """Render a Markdown section for one experiment.

    Parameters
    ----------
    results:
        Aggregated results keyed by configuration label (as produced by
        :meth:`ExperimentRunner.compare_on_shared_trace`).
    title:
        Section heading.
    description:
        Free-form paragraph inserted after the heading.
    oblivious_label:
        If given (or if a label starting with ``"oblivious"`` exists), a
        "reduction vs oblivious" column is included.
    include_chart:
        Append an ASCII chart of the routing-cost series in a code block.
    include_series:
        Append the full per-checkpoint series as a Markdown table.
    """
    if not results:
        raise SimulationError("no results to report")
    if oblivious_label is None:
        oblivious_label = next(
            (label for label in results if label.startswith("oblivious")), None
        )
    oblivious = results.get(oblivious_label) if oblivious_label else None

    first = next(iter(results.values()))
    lines = [f"## {title}", ""]
    if description:
        lines += [description, ""]
    lines += [
        f"Workload `{first.workload}` on `{first.topology}`, "
        f"{first.n_requests:,} requests, α = {first.alpha:g}, "
        f"{first.repetitions} repetition(s).",
        "",
    ]

    headers = ["configuration", "routing cost", "runtime [s]", "matched share"]
    if oblivious is not None:
        headers.insert(2, "reduction vs oblivious")
    rows = []
    for label, result in results.items():
        row = [label, f"{result.routing_cost_mean:,.0f}",
               f"{result.elapsed_seconds_mean:.3f}",
               f"{result.matched_fraction_mean:.1%}"]
        if oblivious is not None:
            reduction = (
                "—" if label == oblivious_label
                else f"{routing_cost_reduction(result, oblivious):.1%}"
            )
            row.insert(2, reduction)
        rows.append(row)
    lines += [_markdown_table(headers, rows), ""]

    if include_series:
        series_headers = ["# requests"] + list(results.keys())
        series_table_rows = [
            [f"{int(row[0]):,}"] + [f"{value:,.0f}" for value in row[1:]]
            for row in series_rows(results, metric="routing_cost")
        ]
        lines += ["Per-checkpoint routing cost:", "",
                  _markdown_table(series_headers, series_table_rows), ""]

    if include_chart:
        lines += ["```", plot_results(results, metric="routing_cost", title=title), "```", ""]
    return "\n".join(lines)


def write_markdown_report(
    results: Mapping[str, AggregateResult],
    path: PathLike,
    title: str,
    **kwargs: object,
) -> Path:
    """Write :func:`markdown_report` output to ``path`` and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(markdown_report(results, title, **kwargs) + "\n")
    return path
