"""ASCII line charts for result series.

The original figures are matplotlib plots; in a headless / dependency-free
setting we render the same series as Unicode line charts so that the
benchmark output and EXPERIMENTS.md can show the *shape* of each curve
(crossovers, saturation, gaps between algorithms) without any plotting
dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..errors import SimulationError
from ..simulation.results import AggregateResult
from .tables import _series_values

__all__ = ["ascii_line_chart", "plot_results"]

_MARKERS = "ox+*#@%&"


def ascii_line_chart(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 72,
    height: int = 18,
    title: str | None = None,
    y_label: str = "",
) -> str:
    """Render one or more y-series over a shared x-axis as an ASCII chart.

    Parameters
    ----------
    x:
        Shared x values (monotonically increasing).
    series:
        Mapping from label to y values (same length as ``x``).
    width, height:
        Plot area size in characters (excluding axes and legend).
    title, y_label:
        Optional annotations.
    """
    if not series:
        raise SimulationError("no series to plot")
    x_arr = np.asarray(list(x), dtype=float)
    if x_arr.size < 2:
        raise SimulationError("need at least two points to plot")
    for label, values in series.items():
        if len(values) != x_arr.size:
            raise SimulationError(f"series {label!r} length does not match x axis")
    if width < 10 or height < 4:
        raise SimulationError("plot area too small")

    all_y = np.concatenate([np.asarray(list(v), dtype=float) for v in series.values()])
    y_min, y_max = float(all_y.min()), float(all_y.max())
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = float(x_arr.min()), float(x_arr.max())

    grid = [[" "] * width for _ in range(height)]
    for idx, (label, values) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        y_arr = np.asarray(list(values), dtype=float)
        # Interpolate onto the column grid so curves are continuous even with
        # few checkpoints.
        cols = np.arange(width)
        col_x = x_min + (x_max - x_min) * cols / (width - 1)
        col_y = np.interp(col_x, x_arr, y_arr)
        rows = ((col_y - y_min) / (y_max - y_min) * (height - 1)).round().astype(int)
        for c, r in zip(cols, rows):
            grid[height - 1 - int(r)][int(c)] = marker

    lines = []
    if title:
        lines.append(title)
    y_axis_width = 12  # width of the "{value:>10.3g} |" prefix
    for i, row in enumerate(grid):
        y_value = y_max - (y_max - y_min) * i / (height - 1)
        prefix = f"{y_value:>10.3g} |" if i % 3 == 0 or i == height - 1 else " " * 10 + " |"
        lines.append(prefix + "".join(row))
    lines.append(" " * y_axis_width + "-" * width)
    x_left = f"{x_min:.3g}"
    x_right = f"{x_max:.3g}"
    padding = width - len(x_left) - len(x_right)
    lines.append(" " * y_axis_width + x_left + " " * max(1, padding) + x_right)
    if y_label:
        lines.append(f"y: {y_label}")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {label}" for i, label in enumerate(series)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)


def plot_results(
    results: Mapping[str, AggregateResult],
    metric: str = "routing_cost",
    title: str | None = None,
    width: int = 72,
    height: int = 18,
) -> str:
    """Plot a metric of several aggregated results against the request count."""
    if not results:
        raise SimulationError("no results to plot")
    first = next(iter(results.values()))
    x = first.series.requests
    series = {}
    for label, result in results.items():
        if len(result.series.requests) != len(x) or np.any(result.series.requests != x):
            raise SimulationError("results have mismatching checkpoint grids")
        series[label] = _series_values(result, metric)
    return ascii_line_chart(
        x, series, width=width, height=height, title=title, y_label=metric
    )
