"""Empirical competitive-ratio harness.

Runs an online algorithm on a (small) instance, computes the exact offline
optimum with the dynamic program, and reports the ratio together with the
theoretical upper bound of Corollary 3 — the bridge between the paper's
theory section and its empirical section.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from ..config import MatchingConfig
from ..core.base import OnlineBMatchingAlgorithm
from ..paging.bounds import rbma_upper_bound
from ..topology import Topology
from ..types import Request
from .offline_opt import optimal_dynamic_matching_cost

__all__ = ["CompetitiveReport", "empirical_competitive_ratio"]

AlgorithmFactory = Callable[[], OnlineBMatchingAlgorithm]


@dataclass(frozen=True)
class CompetitiveReport:
    """Result of one empirical competitive-ratio measurement.

    Attributes
    ----------
    online_cost:
        Cost (mean over trials for randomized algorithms) of the online
        algorithm.
    offline_cost:
        Exact optimal offline cost.
    ratio:
        ``online_cost / offline_cost`` (``inf`` if the offline cost is 0 and
        the online cost is positive, 1 if both are 0).
    theoretical_bound:
        The Corollary 3 upper bound for the instance parameters, for context.
    trials:
        Number of independent online trials averaged.
    """

    online_cost: float
    offline_cost: float
    ratio: float
    theoretical_bound: float
    trials: int


def empirical_competitive_ratio(
    algorithm_factory: AlgorithmFactory,
    requests: Sequence[Request],
    topology: Topology,
    config: MatchingConfig,
    trials: int = 5,
    offline_b: Optional[int] = None,
) -> CompetitiveReport:
    """Measure the empirical competitive ratio of an online algorithm.

    Parameters
    ----------
    algorithm_factory:
        Zero-argument callable returning a *fresh* algorithm instance per
        trial (so randomized algorithms get independent randomness).
    requests:
        The request sequence (must be small enough for the exact offline DP).
    topology, config:
        Instance parameters.
    trials:
        Number of online trials to average (use 1 for deterministic
        algorithms).
    offline_b:
        Degree bound of the offline optimum; defaults to ``config.effective_a``
        (i.e. the resource-augmented comparison of the paper).
    """
    costs = []
    for _ in range(max(1, trials)):
        algorithm = algorithm_factory()
        algorithm.serve_all(list(requests))
        costs.append(algorithm.total_cost)
    online_cost = float(np.mean(costs))

    offline_cost = optimal_dynamic_matching_cost(
        requests,
        topology,
        b=offline_b if offline_b is not None else config.effective_a,
        alpha=config.alpha,
    )
    if offline_cost > 0:
        ratio = online_cost / offline_cost
    else:
        ratio = 1.0 if online_cost == 0 else float("inf")
    bound = rbma_upper_bound(
        config.b, config.effective_a, topology.max_distance(), config.alpha
    )
    return CompetitiveReport(
        online_cost=online_cost,
        offline_cost=offline_cost,
        ratio=ratio,
        theoretical_bound=bound,
        trials=max(1, trials),
    )
