"""Adversarial request sequences.

Two constructions connected to the paper's lower bound (Theorem 4, via the
star-graph embedding of paging in Lemma 1):

* :func:`adversarial_paging_trace` — the randomized-lower-bound style
  adversary: traffic on a star between the hub and ``b + 1`` leaves, each
  request choosing a uniformly random leaf and repeating it ``α`` times (one
  "block" per paging request).  No online algorithm, randomized or not, can
  keep more than ``b`` of the ``b + 1`` hot pairs matched, so it faults with
  probability at least ``1/(b+1)`` per block, while the optimum faults only
  about once per ``b`` blocks.
* :func:`round_robin_adversary_trace` — the deterministic-killer: requests
  cycle through ``b + 1`` pairs in round-robin blocks; a deterministic
  algorithm can be forced to pay for (almost) every block, which is what
  separates the deterministic Θ(b) bound from the randomized Θ(log b) bound.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import TrafficError
from ..traffic.base import Trace, TraceMetadata

__all__ = ["adversarial_paging_trace", "round_robin_adversary_trace"]


def _star_pairs_trace(
    leaf_sequence: np.ndarray, n_leaves: int, block_length: int, name: str, seed: Optional[int],
    params: dict,
) -> Trace:
    """Expand a sequence of leaf indices into hub-leaf request blocks."""
    if block_length < 1:
        raise TrafficError(f"block_length must be >= 1, got {block_length}")
    leaves = np.repeat(leaf_sequence, block_length)
    src = np.zeros(len(leaves), dtype=np.int32)  # hub is rack 0
    dst = (leaves + 1).astype(np.int32)  # leaves are racks 1..n_leaves
    meta = TraceMetadata(name=name, n_nodes=n_leaves + 1, seed=seed, params=params)
    return Trace(src, dst, meta)


def adversarial_paging_trace(
    b: int,
    n_blocks: int,
    block_length: Optional[int] = None,
    alpha: float = 1.0,
    seed: Optional[int] = None,
) -> Trace:
    """Uniform-random adversary over ``b + 1`` hub-leaf pairs on a star.

    Use with :class:`~repro.topology.star.StarTopology` (``hub_is_rack=True``,
    ``n_racks = b + 1`` leaves) so that the hub is rack 0.  ``block_length``
    defaults to ``⌈α⌉`` — each block corresponds to one paging request in the
    Lemma 1 reduction.
    """
    if b < 1:
        raise TrafficError(f"b must be >= 1, got {b}")
    if n_blocks < 1:
        raise TrafficError(f"n_blocks must be >= 1, got {n_blocks}")
    rng = np.random.default_rng(seed)
    n_leaves = b + 1
    block = block_length if block_length is not None else max(1, int(np.ceil(alpha)))
    leaf_sequence = rng.integers(0, n_leaves, size=n_blocks)
    return _star_pairs_trace(
        leaf_sequence,
        n_leaves,
        block,
        name="adversary-random",
        seed=seed,
        params={"b": b, "n_blocks": n_blocks, "block_length": block, "alpha": alpha},
    )


def round_robin_adversary_trace(
    b: int,
    n_blocks: int,
    block_length: Optional[int] = None,
    alpha: float = 1.0,
) -> Trace:
    """Round-robin adversary over ``b + 1`` hub-leaf pairs on a star."""
    if b < 1:
        raise TrafficError(f"b must be >= 1, got {b}")
    if n_blocks < 1:
        raise TrafficError(f"n_blocks must be >= 1, got {n_blocks}")
    n_leaves = b + 1
    block = block_length if block_length is not None else max(1, int(np.ceil(alpha)))
    leaf_sequence = np.arange(n_blocks) % n_leaves
    return _star_pairs_trace(
        leaf_sequence,
        n_leaves,
        block,
        name="adversary-round-robin",
        seed=None,
        params={"b": b, "n_blocks": n_blocks, "block_length": block, "alpha": alpha},
    )
