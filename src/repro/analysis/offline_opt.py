"""Exact offline optimum for the dynamic (b, a)-matching problem.

Computes ``Opt(σ)`` — the minimum total routing plus reconfiguration cost an
offline algorithm (with per-node degree bound ``a``) can achieve on a request
sequence — by dynamic programming over all feasible matchings.  The state
space is exponential in the number of *candidate* pairs, so this is only
meant for tiny instances (a handful of racks, short sequences); it is the
ground truth behind the empirical competitive-ratio experiments and the
property tests that certify the online algorithms' cost accounting.

Candidate pairs are restricted to pairs that actually appear in the sequence:
matching a never-requested pair can only add reconfiguration cost, so the
restriction does not change the optimum.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Sequence, Tuple

from ..errors import SolverError
from ..topology import Topology
from ..types import NodePair, Request, canonical_pair

__all__ = ["optimal_dynamic_matching_cost", "enumerate_feasible_matchings"]

MatchingState = FrozenSet[NodePair]


def enumerate_feasible_matchings(
    candidate_pairs: Sequence[NodePair], n_nodes: int, b: int
) -> List[MatchingState]:
    """All subsets of ``candidate_pairs`` that are valid b-matchings."""
    states: List[MatchingState] = []
    pairs = sorted(set(canonical_pair(*p) for p in candidate_pairs))
    for r in range(len(pairs) + 1):
        for subset in combinations(pairs, r):
            degrees = [0] * n_nodes
            ok = True
            for u, v in subset:
                degrees[u] += 1
                degrees[v] += 1
                if degrees[u] > b or degrees[v] > b:
                    ok = False
                    break
            if ok:
                states.append(frozenset(subset))
    return states


def optimal_dynamic_matching_cost(
    requests: Sequence[Request],
    topology: Topology,
    b: int,
    alpha: float,
    max_candidate_pairs: int = 12,
    max_states: int = 50_000,
) -> float:
    """Minimum offline cost of serving ``requests`` with degree bound ``b``.

    Parameters
    ----------
    requests:
        The request sequence.
    topology:
        Provides the fixed-network lengths ``ℓ_e``.
    b:
        Degree bound of the offline solution (use ``a`` for the resource-
        augmented setting).
    alpha:
        Reconfiguration cost per edge change.
    max_candidate_pairs, max_states:
        Safety limits; exceeding them raises :class:`SolverError` instead of
        silently taking forever.

    Notes
    -----
    The initial matching is empty (matching the online algorithms' starting
    state), and the optimum may reconfigure *before* serving each request,
    which is equivalent to the paper's "serve, then reconfigure" convention
    up to the position of the last reconfiguration — for cost purposes the
    two conventions coincide because trailing reconfigurations never pay off.
    """
    candidate_pairs = sorted({canonical_pair(r.src, r.dst) for r in requests})
    if len(candidate_pairs) > max_candidate_pairs:
        raise SolverError(
            f"offline optimum limited to {max_candidate_pairs} distinct pairs, "
            f"got {len(candidate_pairs)}"
        )
    states = enumerate_feasible_matchings(candidate_pairs, topology.n_racks, b)
    if len(states) > max_states:
        raise SolverError(f"state space too large: {len(states)} > {max_states}")

    lengths = {pair: topology.pair_length(pair) for pair in candidate_pairs}

    # Precompute reconfiguration costs between states.
    reconf: Dict[Tuple[int, int], float] = {}
    for i, s in enumerate(states):
        for j, t in enumerate(states):
            reconf[(i, j)] = alpha * len(s.symmetric_difference(t))

    # cost[j] = minimal cost of having processed the prefix and being in state j.
    empty_index = states.index(frozenset())
    INF = float("inf")
    cost = [INF] * len(states)
    # Transition from the empty initial matching (may reconfigure before the
    # first request).
    for j in range(len(states)):
        cost[j] = reconf[(empty_index, j)]

    for request in requests:
        pair = canonical_pair(request.src, request.dst)
        length = lengths[pair]
        serve_cost = [1.0 if pair in state else length for state in states]
        new_cost = [INF] * len(states)
        # First pay the serving cost in the current state, then optionally
        # move to another state for the future.
        after_serve = [cost[i] + serve_cost[i] for i in range(len(states))]
        for j in range(len(states)):
            best = INF
            for i in range(len(states)):
                candidate = after_serve[i] + reconf[(i, j)]
                if candidate < best:
                    best = candidate
            new_cost[j] = best
        cost = new_cost

    return min(cost)
