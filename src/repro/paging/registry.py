"""Factories for paging policies, addressed by name.

R-BMA takes a *paging factory* — a callable ``(capacity, rng) -> PagingAlgorithm``
— so the ablation benchmarks can swap the policy driving each per-node cache
without touching the matching logic.  The name → factory mapping is an
instance of the generic :class:`repro.experiments.Registry`; note that
:func:`make_paging_factory` *resolves* (returns the factory) rather than
builds, because R-BMA instantiates one paging instance per rack lazily.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..experiments.registry import Registry
from .base import PagingAlgorithm
from .fifo import FIFOPaging
from .lfu import LFUPaging
from .lru import LRUPaging
from .marking import RandomizedMarking
from .random_eviction import RandomEvictionPaging

__all__ = [
    "PAGING_POLICIES",
    "PagingFactory",
    "make_paging_factory",
    "available_paging_policies",
    "register_paging_policy",
]

#: Signature of a paging factory: capacity and an optional RNG.
PagingFactory = Callable[[int, Optional[np.random.Generator]], PagingAlgorithm]

#: The paging-policy registry; entries are *factories*, not instances.
PAGING_POLICIES: Registry[PagingAlgorithm] = Registry("paging policy")


def _marking(capacity: int, rng: Optional[np.random.Generator]) -> PagingAlgorithm:
    return RandomizedMarking(capacity, rng=rng)


def _random(capacity: int, rng: Optional[np.random.Generator]) -> PagingAlgorithm:
    return RandomEvictionPaging(capacity, rng=rng)


def _lru(capacity: int, rng: Optional[np.random.Generator]) -> PagingAlgorithm:
    return LRUPaging(capacity)


def _fifo(capacity: int, rng: Optional[np.random.Generator]) -> PagingAlgorithm:
    return FIFOPaging(capacity)


def _lfu(capacity: int, rng: Optional[np.random.Generator]) -> PagingAlgorithm:
    return LFUPaging(capacity)


def register_paging_policy(name: str, factory: PagingFactory) -> None:
    """Register a paging factory under ``name`` (lower-cased)."""
    PAGING_POLICIES.register(name, factory)


def available_paging_policies() -> list[str]:
    """Names of the registered paging policies."""
    return PAGING_POLICIES.names()


def make_paging_factory(name: str) -> PagingFactory:
    """Return the paging factory registered under ``name``."""
    return PAGING_POLICIES.resolve(name)


PAGING_POLICIES.register("marking", _marking)
PAGING_POLICIES.register("random", _random)
PAGING_POLICIES.register("lru", _lru)
PAGING_POLICIES.register("fifo", _fifo)
PAGING_POLICIES.register("lfu", _lfu)
