"""Factories for paging policies, addressed by name.

R-BMA takes a *paging factory* — a callable ``(capacity, rng) -> PagingAlgorithm``
— so the ablation benchmarks can swap the policy driving each per-node cache
without touching the matching logic.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from ..errors import ConfigurationError
from .base import PagingAlgorithm
from .fifo import FIFOPaging
from .lfu import LFUPaging
from .lru import LRUPaging
from .marking import RandomizedMarking
from .random_eviction import RandomEvictionPaging

__all__ = ["PagingFactory", "make_paging_factory", "available_paging_policies"]

#: Signature of a paging factory: capacity and an optional RNG.
PagingFactory = Callable[[int, Optional[np.random.Generator]], PagingAlgorithm]


def _marking(capacity: int, rng: Optional[np.random.Generator]) -> PagingAlgorithm:
    return RandomizedMarking(capacity, rng=rng)


def _random(capacity: int, rng: Optional[np.random.Generator]) -> PagingAlgorithm:
    return RandomEvictionPaging(capacity, rng=rng)


def _lru(capacity: int, rng: Optional[np.random.Generator]) -> PagingAlgorithm:
    return LRUPaging(capacity)


def _fifo(capacity: int, rng: Optional[np.random.Generator]) -> PagingAlgorithm:
    return FIFOPaging(capacity)


def _lfu(capacity: int, rng: Optional[np.random.Generator]) -> PagingAlgorithm:
    return LFUPaging(capacity)


_POLICIES: Dict[str, PagingFactory] = {
    "marking": _marking,
    "random": _random,
    "lru": _lru,
    "fifo": _fifo,
    "lfu": _lfu,
}


def available_paging_policies() -> list[str]:
    """Names of the registered paging policies."""
    return sorted(_POLICIES)


def make_paging_factory(name: str) -> PagingFactory:
    """Return the paging factory registered under ``name``."""
    key = name.lower()
    if key not in _POLICIES:
        raise ConfigurationError(
            f"unknown paging policy {name!r}; available: {', '.join(available_paging_policies())}"
        )
    return _POLICIES[key]
