"""Belady's offline optimal paging algorithm (MIN / furthest-in-future).

Given the entire request sequence in advance, evicting the cached page whose
next request is furthest in the future minimises the number of faults.  The
analysis and tests use it as the offline optimum ``Opt(I_v)`` of the per-node
paging instances in Theorem 2 and as a yardstick for empirical competitive
ratios of the online policies.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Hashable, Sequence

from ..errors import PagingError
from .base import PagingAlgorithm

__all__ = ["BeladyPaging", "offline_paging_cost"]


class BeladyPaging(PagingAlgorithm):
    """Furthest-in-future eviction over a known request sequence.

    Parameters
    ----------
    capacity:
        Cache size.
    sequence:
        The complete request sequence this instance will be driven with.
        Requests must be issued (via :meth:`request`) in exactly this order;
        deviating raises :class:`~repro.errors.PagingError`.
    """

    def __init__(self, capacity: int, sequence: Sequence[Hashable]):
        super().__init__(capacity)
        self._sequence = list(sequence)
        # Precompute, for each position, the queue of future positions of
        # every page, so victim selection is O(cache size) per miss.
        self._positions: dict[Hashable, deque[int]] = defaultdict(deque)
        for i, page in enumerate(self._sequence):
            self._positions[page].append(i)
        self._cursor = 0

    def request(self, page: Hashable):  # type: ignore[override]
        if self._cursor >= len(self._sequence):
            raise PagingError("BeladyPaging received more requests than its known sequence")
        expected = self._sequence[self._cursor]
        if page != expected:
            raise PagingError(
                f"BeladyPaging expected request {expected!r} at position {self._cursor}, got {page!r}"
            )
        # Consume this occurrence before serving so "next use" looks forward.
        queue = self._positions[page]
        if queue and queue[0] == self._cursor:
            queue.popleft()
        self._cursor += 1
        return super().request(page)

    def _next_use(self, page: Hashable) -> int:
        queue = self._positions.get(page)
        if queue:
            return queue[0]
        return len(self._sequence) + 1  # never used again

    def _evict_victim(self) -> Hashable:
        # Furthest next use; ties broken deterministically by repr for
        # reproducibility.
        return max(self._cache, key=lambda p: (self._next_use(p), repr(p)))

    def _on_reset(self) -> None:
        self._positions = defaultdict(deque)
        for i, page in enumerate(self._sequence):
            self._positions[page].append(i)
        self._cursor = 0


def offline_paging_cost(sequence: Sequence[Hashable], capacity: int) -> int:
    """Number of faults of the offline optimal policy on ``sequence``.

    Convenience wrapper that drives :class:`BeladyPaging` over the whole
    sequence and returns its miss count.
    """
    algo = BeladyPaging(capacity, sequence)
    return algo.serve_sequence(sequence)
