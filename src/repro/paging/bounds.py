"""Theoretical competitive-ratio bounds used by the paper.

These closed-form expressions are used by the analysis module and the
benchmark reports to annotate empirical ratios with the corresponding
theoretical guarantees:

* randomized marking is ``2·H_k``-competitive for ``(k, k)``-paging;
* Young's resource-augmented bound: ``~2·ln(b/(b-a+1))`` for ``(b, a)``-paging;
* the randomized lower bound is ``H_k`` (resp. ``ln(b/(b-a+1))`` asymptotically);
* Corollary 3 of the paper multiplies the paging ratio by
  ``O(γ) = O(1 + ℓ_max/α)``.
"""

from __future__ import annotations

import math

__all__ = [
    "harmonic_number",
    "marking_competitive_ratio",
    "resource_augmented_ratio",
    "randomized_paging_lower_bound",
    "rbma_upper_bound",
    "rbma_lower_bound",
    "gamma_factor",
]


def harmonic_number(k: int) -> float:
    """The k-th harmonic number ``H_k = 1 + 1/2 + ... + 1/k``."""
    if k < 0:
        raise ValueError(f"harmonic number undefined for negative k={k}")
    return sum(1.0 / i for i in range(1, k + 1))


def marking_competitive_ratio(k: int) -> float:
    """Upper bound ``2·H_k`` on the marking algorithm's competitive ratio."""
    if k < 1:
        raise ValueError(f"cache size must be >= 1, got {k}")
    return 2.0 * harmonic_number(k)


def resource_augmented_ratio(b: int, a: int) -> float:
    """Young's bound ``2·ln(b/(b-a+1)) + O(1)`` for (b, a)-paging.

    Returned as ``2·ln(b/(b-a+1)) + 2`` (the additive constant makes the
    expression a valid upper bound also for small arguments, e.g. ``a = 1``).
    """
    if not (1 <= a <= b):
        raise ValueError(f"need 1 <= a <= b, got a={a}, b={b}")
    return 2.0 * math.log(b / (b - a + 1)) + 2.0


def randomized_paging_lower_bound(b: int, a: int | None = None) -> float:
    """Lower bound ``ln(b/(b-a+1))`` (``H_b`` when a == b) for randomized paging."""
    if a is None:
        a = b
    if not (1 <= a <= b):
        raise ValueError(f"need 1 <= a <= b, got a={a}, b={b}")
    if a == b:
        return harmonic_number(b)
    return math.log(b / (b - a + 1))


def gamma_factor(l_max: float, alpha: float) -> float:
    """``γ = 1 + ℓ_max / α`` — the distance/reconfiguration-cost factor."""
    if l_max < 1 or alpha < 1:
        raise ValueError(f"need l_max >= 1 and alpha >= 1, got {l_max}, {alpha}")
    return 1.0 + l_max / alpha


def rbma_upper_bound(b: int, a: int, l_max: float, alpha: float) -> float:
    """Corollary 3 upper bound: ``4·γ · O(paging ratio)`` for R-BMA.

    This is the concrete constant-carrying version used in reports:
    ``4 · γ · 4 · (2·ln(b/(b-a+1)) + 2)`` — the factor 4 from Theorem 1, the
    factor 4 from Theorem 2 and Young's paging bound.
    """
    return 4.0 * gamma_factor(l_max, alpha) * 4.0 * resource_augmented_ratio(b, a)


def rbma_lower_bound(b: int, a: int | None = None) -> float:
    """Theorem 4 lower bound ``Ω(log(b/(b-a+1)))`` (constant 1/4 from Lemma 1)."""
    return randomized_paging_lower_bound(b, a) / 4.0
