"""Randomized marking algorithm (Fiat, Karp, Luby, McGeoch, Sleator, Young).

The algorithm proceeds in phases.  Every cached page is either *marked* or
*unmarked*; a phase ends when a miss occurs while all cached pages are
marked, at which point all marks are cleared.  On a hit the page is marked;
on a miss a uniformly random *unmarked* cached page is evicted, the new page
is fetched and marked.

Against an adversary with the same cache size ``k`` the algorithm is
``2·H_k``-competitive; against an adversary with a smaller cache ``h ≤ k``
(the resource-augmented ``(b, a)``-paging setting used by the paper) its
ratio improves to ``O(log(k/(k-h+1)))`` [Young 1991], which is exactly the
bound plugged into Corollary 3 of the paper.
"""

from __future__ import annotations

from typing import Hashable, Optional

import numpy as np

from .base import PagingAlgorithm, coerce_paging_rng

__all__ = ["RandomizedMarking"]


class RandomizedMarking(PagingAlgorithm):
    """Randomized marking paging algorithm.

    Parameters
    ----------
    capacity:
        Cache size ``k`` (the matching degree bound ``b`` in the reduction).
    rng:
        ``None``, an int seed, a numpy generator (stateful mode), or a
        :class:`~repro.core.rng.CounterRNG` (counter mode: every eviction
        draw is a pure function of its draw index, so replay needs no
        generator-state bookkeeping).  Anything else raises
        :class:`~repro.errors.ConfigurationError`.
    """

    def __init__(self, capacity: int, rng: Optional[np.random.Generator | int] = None):
        super().__init__(capacity)
        self._rng, self._crng = coerce_paging_rng(rng)
        self._draw_index = 0
        self._marked: set[Hashable] = set()
        self._phase_count = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def marked_pages(self) -> frozenset:
        """Pages currently marked."""
        return frozenset(self._marked)

    @property
    def phase_count(self) -> int:
        """Number of completed phases (phase boundaries encountered)."""
        return self._phase_count

    def is_marked(self, page: Hashable) -> bool:
        """Whether ``page`` is currently marked."""
        return page in self._marked

    # ------------------------------------------------------------------ #
    # Policy hooks
    # ------------------------------------------------------------------ #
    def _evict_victim(self) -> Hashable:
        unmarked = [p for p in self._cache if p not in self._marked]
        if not unmarked:
            # All cached pages are marked: the current phase ends and a new
            # one begins with all pages unmarked.
            self._marked.clear()
            self._phase_count += 1
            unmarked = list(self._cache)
        # Pages are small hashable values (node-pair tuples), so set iteration
        # order is deterministic for a given request history; a uniform index
        # into that order keeps runs reproducible without sorting.
        if self._crng is not None:
            idx = self._crng.integers(len(unmarked), self._draw_index)
            self._draw_index += 1
        else:
            idx = int(self._rng.integers(len(unmarked)))
        return unmarked[idx]

    def _on_hit(self, page: Hashable) -> None:
        self._marked.add(page)

    def _on_fetch(self, page: Hashable) -> None:
        self._marked.add(page)

    def _on_evict(self, page: Hashable) -> None:
        self._marked.discard(page)

    def _on_reset(self) -> None:
        self._marked.clear()
        self._phase_count = 0
        self._draw_index = 0
