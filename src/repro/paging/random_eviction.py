"""Uniform random eviction paging.

Evicts a uniformly random cached page on every miss with a full cache.  It is
``k``-competitive (no better than deterministic policies) and serves as the
"naive randomization" control against the marking algorithm in ablations: the
power of randomization in the paper comes from marking's phase structure, not
from randomness alone.
"""

from __future__ import annotations

from typing import Hashable, Optional

import numpy as np

from .base import PagingAlgorithm, coerce_paging_rng

__all__ = ["RandomEvictionPaging"]


class RandomEvictionPaging(PagingAlgorithm):
    """Evict a uniformly random cached page.

    ``rng`` follows the same contract as
    :class:`~repro.paging.marking.RandomizedMarking`: ``None``/int seed/
    numpy generator for stateful mode, a
    :class:`~repro.core.rng.CounterRNG` for counter mode; anything else
    raises :class:`~repro.errors.ConfigurationError`.
    """

    def __init__(self, capacity: int, rng: Optional[np.random.Generator | int] = None):
        super().__init__(capacity)
        self._rng, self._crng = coerce_paging_rng(rng)
        self._draw_index = 0

    def _evict_victim(self) -> Hashable:
        candidates = sorted(self._cache, key=repr)
        if self._crng is not None:
            idx = self._crng.integers(len(candidates), self._draw_index)
            self._draw_index += 1
        else:
            idx = int(self._rng.integers(len(candidates)))
        return candidates[idx]

    def _on_reset(self) -> None:
        self._draw_index = 0
