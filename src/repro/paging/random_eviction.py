"""Uniform random eviction paging.

Evicts a uniformly random cached page on every miss with a full cache.  It is
``k``-competitive (no better than deterministic policies) and serves as the
"naive randomization" control against the marking algorithm in ablations: the
power of randomization in the paper comes from marking's phase structure, not
from randomness alone.
"""

from __future__ import annotations

from typing import Hashable, Optional

import numpy as np

from .base import PagingAlgorithm

__all__ = ["RandomEvictionPaging"]


class RandomEvictionPaging(PagingAlgorithm):
    """Evict a uniformly random cached page."""

    def __init__(self, capacity: int, rng: Optional[np.random.Generator | int] = None):
        super().__init__(capacity)
        self._rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)

    def _evict_victim(self) -> Hashable:
        candidates = sorted(self._cache, key=repr)
        idx = int(self._rng.integers(len(candidates)))
        return candidates[idx]
