"""Least-recently-used paging.

Classic deterministic ``k``-competitive policy.  Used in the ablation that
replaces the randomized marking algorithm inside R-BMA with deterministic
policies, and as a general-purpose baseline in tests.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

from .base import PagingAlgorithm

__all__ = ["LRUPaging"]


class LRUPaging(PagingAlgorithm):
    """Evict the page whose most recent request is furthest in the past."""

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._order: OrderedDict[Hashable, None] = OrderedDict()

    def _evict_victim(self) -> Hashable:
        # The first key in the ordered dict is the least recently used page.
        victim = next(iter(self._order))
        return victim

    def _on_hit(self, page: Hashable) -> None:
        self._order.move_to_end(page)

    def _on_fetch(self, page: Hashable) -> None:
        self._order[page] = None
        self._order.move_to_end(page)

    def _on_evict(self, page: Hashable) -> None:
        self._order.pop(page, None)

    def _on_reset(self) -> None:
        self._order.clear()
