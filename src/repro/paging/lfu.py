"""Least-frequently-used paging.

Evicts the cached page with the smallest request count (ties broken by least
recent use).  LFU is not competitive in the worst case but performs well on
heavily skewed workloads, which makes it an informative ablation policy for
R-BMA on the Microsoft-style traces.
"""

from __future__ import annotations

from typing import Hashable

from .base import PagingAlgorithm

__all__ = ["LFUPaging"]


class LFUPaging(PagingAlgorithm):
    """Evict the cached page with the fewest requests since it was fetched."""

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._counts: dict[Hashable, int] = {}
        self._last_use: dict[Hashable, int] = {}
        self._clock = 0

    def _evict_victim(self) -> Hashable:
        # Smallest (count, last-use) wins; last-use breaks frequency ties in
        # favour of evicting the staler page.
        return min(self._cache, key=lambda p: (self._counts.get(p, 0), self._last_use.get(p, 0)))

    def _touch(self, page: Hashable) -> None:
        self._clock += 1
        self._counts[page] = self._counts.get(page, 0) + 1
        self._last_use[page] = self._clock

    def _on_hit(self, page: Hashable) -> None:
        self._touch(page)

    def _on_fetch(self, page: Hashable) -> None:
        self._touch(page)

    def _on_evict(self, page: Hashable) -> None:
        self._counts.pop(page, None)
        self._last_use.pop(page, None)

    def _on_reset(self) -> None:
        self._counts.clear()
        self._last_use.clear()
        self._clock = 0
