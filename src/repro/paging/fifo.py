"""First-in-first-out paging.

Deterministic ``k``-competitive policy that evicts the page fetched earliest,
independently of how often it was requested since.  Included as an ablation
policy for R-BMA and as a baseline for paging tests.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable

from .base import PagingAlgorithm

__all__ = ["FIFOPaging"]


class FIFOPaging(PagingAlgorithm):
    """Evict the page that has been in the cache the longest."""

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._queue: deque[Hashable] = deque()

    def _evict_victim(self) -> Hashable:
        # Skip queue entries that were force-dropped and are no longer cached.
        while self._queue and self._queue[0] not in self._cache:
            self._queue.popleft()
        return self._queue[0]

    def _on_fetch(self, page: Hashable) -> None:
        self._queue.append(page)

    def _on_evict(self, page: Hashable) -> None:
        try:
            self._queue.remove(page)
        except ValueError:
            pass

    def _on_reset(self) -> None:
        self._queue.clear()
