"""Phase partition of a paging request sequence.

The analysis of the marking algorithm (and of most randomized paging bounds)
decomposes a request sequence into *k-phases*: maximal intervals containing
requests to at most ``k`` distinct pages.  The number of phases lower-bounds
the optimal cost (``Opt >= phases - 1`` for a cache of size ``k``), which the
tests use to sanity-check empirical competitive ratios without running an
exact offline solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Sequence

from ..errors import PagingError

__all__ = ["PhasePartition", "partition_into_phases"]


@dataclass(frozen=True)
class PhasePartition:
    """Result of a k-phase decomposition.

    Attributes
    ----------
    k:
        Phase width (cache size used for the decomposition).
    boundaries:
        Start indices of each phase; ``boundaries[0] == 0``.
    distinct_per_phase:
        Number of distinct pages requested in each phase.
    new_pages_per_phase:
        For every phase after the first, the number of pages requested in it
        that were *not* requested in the previous phase — the quantity that
        drives the marking algorithm's expected cost.
    """

    k: int
    boundaries: List[int]
    distinct_per_phase: List[int]
    new_pages_per_phase: List[int]

    @property
    def n_phases(self) -> int:
        """Number of phases in the partition."""
        return len(self.boundaries)

    def opt_lower_bound(self) -> int:
        """A lower bound on the optimal offline cost with cache size ``k``.

        Every phase except possibly the first forces the optimum to fault at
        least once (a standard argument: phase ``i`` plus the first request
        of phase ``i+1`` touches ``k+1`` distinct pages).
        """
        return max(0, self.n_phases - 1)


def partition_into_phases(sequence: Sequence[Hashable], k: int) -> PhasePartition:
    """Decompose ``sequence`` into maximal phases of at most ``k`` distinct pages."""
    if k < 1:
        raise PagingError(f"phase width k must be >= 1, got {k}")
    boundaries: list[int] = []
    distinct_per_phase: list[int] = []
    phases_pages: list[set[Hashable]] = []

    current: set[Hashable] = set()
    for i, page in enumerate(sequence):
        if not boundaries:
            boundaries.append(0)
        if page in current:
            continue
        if len(current) == k:
            # Start a new phase at position i.
            phases_pages.append(current)
            distinct_per_phase.append(len(current))
            boundaries.append(i)
            current = set()
        current.add(page)
    if boundaries:
        phases_pages.append(current)
        distinct_per_phase.append(len(current))

    new_pages: list[int] = []
    for prev, cur in zip(phases_pages, phases_pages[1:]):
        new_pages.append(len(cur - prev))
    return PhasePartition(
        k=k,
        boundaries=boundaries,
        distinct_per_phase=distinct_per_phase,
        new_pages_per_phase=new_pages,
    )
