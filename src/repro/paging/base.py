"""Paging algorithm interface.

The model follows the classic formulation (Sleator & Tarjan): an algorithm
manages a cache of at most ``capacity`` pages.  On a request to page ``p``:

* if ``p`` is cached, the request is a *hit* and costs nothing;
* otherwise it is a *miss* (fault): the algorithm must fetch ``p`` into the
  cache (bypassing is not allowed), evicting pages as needed, and pays 1.

The matching reduction (Theorem 2 of the paper) additionally needs to know
*which* pages were evicted on each request so that the corresponding matching
edges can be dropped; :class:`PagingResult` reports that.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError, PagingError

__all__ = ["PagingResult", "PagingAlgorithm", "EvictionCallback", "coerce_paging_rng"]

#: Callback invoked with every evicted page (used by R-BMA for lazy removal).
EvictionCallback = Callable[[Hashable], None]


def coerce_paging_rng(rng):
    """Validate a paging ``rng=`` argument into its mode-specific form.

    Returns ``(generator, counter)`` where exactly one is non-``None``:

    * a :class:`~repro.core.rng.CounterRNG` selects counter mode — draws are
      pure functions of a per-draw index, no carried state;
    * a :class:`numpy.random.Generator` selects stateful mode as-is;
    * ``None`` or an integer seed builds a stateful ``default_rng(seed)``
      (the legacy behaviour).

    Anything else — a float, a string, a foreign RNG object — raises
    :class:`~repro.errors.ConfigurationError` instead of being silently fed
    to ``default_rng`` (where e.g. a bool would "work" and quietly change
    the stream).
    """
    from ..core.rng import CounterRNG  # local import: core imports paging

    if isinstance(rng, CounterRNG):
        return None, rng
    if isinstance(rng, np.random.Generator):
        return rng, None
    if rng is None or (isinstance(rng, (int, np.integer)) and not isinstance(rng, bool)):
        return np.random.default_rng(rng), None
    raise ConfigurationError(
        f"paging rng must be None, an int seed, a numpy Generator, or a "
        f"CounterRNG; got {type(rng).__name__}: {rng!r}"
    )


@dataclass(frozen=True, slots=True)
class PagingResult:
    """Outcome of a single paging request.

    Attributes
    ----------
    page:
        The requested page.
    hit:
        Whether the page was already cached.
    evicted:
        Pages removed from the cache while serving this request (empty on a
        hit).
    """

    page: Hashable
    hit: bool
    evicted: Tuple[Hashable, ...] = ()

    @property
    def miss(self) -> bool:
        """Convenience negation of :attr:`hit`."""
        return not self.hit


@dataclass
class PagingStats:
    """Running counters kept by every paging algorithm."""

    requests: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def hit_ratio(self) -> float:
        """Fraction of requests that were hits (0 if no requests yet)."""
        return self.hits / self.requests if self.requests else 0.0


class PagingAlgorithm(ABC):
    """Abstract online paging algorithm with a fixed cache capacity.

    Subclasses implement :meth:`_evict_victim` (choose a page to evict on a
    miss with a full cache) and may override :meth:`_on_hit` /
    :meth:`_on_fetch` to maintain their bookkeeping.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise PagingError(f"cache capacity must be >= 1, got {capacity}")
        self._capacity = int(capacity)
        self._cache: set[Hashable] = set()
        self.stats = PagingStats()

    # ------------------------------------------------------------------ #
    # Public interface
    # ------------------------------------------------------------------ #
    @property
    def capacity(self) -> int:
        """Maximum number of cached pages."""
        return self._capacity

    @property
    def cache(self) -> frozenset:
        """Snapshot of the current cache contents."""
        return frozenset(self._cache)

    def __contains__(self, page: Hashable) -> bool:
        return page in self._cache

    def __len__(self) -> int:
        return len(self._cache)

    def request(self, page: Hashable) -> PagingResult:
        """Serve a request to ``page`` and return what happened.

        On a miss the page is always fetched (no bypassing), evicting a
        victim chosen by the concrete policy if the cache is full.
        """
        self.stats.requests += 1
        if page in self._cache:
            self.stats.hits += 1
            self._on_hit(page)
            return PagingResult(page=page, hit=True)

        self.stats.misses += 1
        evicted: list[Hashable] = []
        while len(self._cache) >= self._capacity:
            victim = self._evict_victim()
            if victim not in self._cache:
                raise PagingError(
                    f"{type(self).__name__} chose eviction victim {victim!r} not in cache"
                )
            self._cache.remove(victim)
            self._on_evict(victim)
            self.stats.evictions += 1
            evicted.append(victim)
        self._cache.add(page)
        self._on_fetch(page)
        return PagingResult(page=page, hit=False, evicted=tuple(evicted))

    def serve_sequence(self, pages: Iterable[Hashable]) -> int:
        """Serve a whole sequence and return the number of misses incurred."""
        misses = 0
        for page in pages:
            if self.request(page).miss:
                misses += 1
        return misses

    def reset(self) -> None:
        """Empty the cache and reset statistics and policy state."""
        self._cache.clear()
        self.stats = PagingStats()
        self._on_reset()

    def drop(self, page: Hashable) -> bool:
        """Forcibly remove ``page`` from the cache (used by tests/ablations).

        Returns whether the page was present.  Policy bookkeeping is updated
        via :meth:`_on_evict`.
        """
        if page in self._cache:
            self._cache.remove(page)
            self._on_evict(page)
            return True
        return False

    # ------------------------------------------------------------------ #
    # Policy hooks
    # ------------------------------------------------------------------ #
    @abstractmethod
    def _evict_victim(self) -> Hashable:
        """Return the page to evict; called only when the cache is full."""

    def _on_hit(self, page: Hashable) -> None:
        """Hook invoked on a cache hit."""

    def _on_fetch(self, page: Hashable) -> None:
        """Hook invoked after a page is inserted into the cache."""

    def _on_evict(self, page: Hashable) -> None:
        """Hook invoked after a page is removed from the cache."""

    def _on_reset(self) -> None:
        """Hook invoked by :meth:`reset` to clear policy state."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} capacity={self._capacity} cached={len(self._cache)}>"
