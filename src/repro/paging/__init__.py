"""Paging (caching) algorithms.

The paper's randomized online b-matching algorithm R-BMA is built on top of
paging: every rack runs its own paging instance whose "pages" are the node
pairs incident to that rack and whose cache size is ``b`` (Theorem 2).  This
subpackage provides the paging algorithms used there — most importantly the
randomized marking algorithm, which gives the ``O(log b)`` competitive ratio —
plus deterministic policies used as ablations and Belady's offline optimum
used by the analysis and tests.
"""

from .base import EvictionCallback, PagingAlgorithm, PagingResult
from .marking import RandomizedMarking
from .lru import LRUPaging
from .fifo import FIFOPaging
from .lfu import LFUPaging
from .random_eviction import RandomEvictionPaging
from .belady import BeladyPaging, offline_paging_cost
from .phases import PhasePartition, partition_into_phases
from .bounds import (
    harmonic_number,
    marking_competitive_ratio,
    randomized_paging_lower_bound,
    resource_augmented_ratio,
)
from .registry import available_paging_policies, make_paging_factory

__all__ = [
    "PagingAlgorithm",
    "PagingResult",
    "EvictionCallback",
    "RandomizedMarking",
    "LRUPaging",
    "FIFOPaging",
    "LFUPaging",
    "RandomEvictionPaging",
    "BeladyPaging",
    "offline_paging_cost",
    "PhasePartition",
    "partition_into_phases",
    "harmonic_number",
    "marking_competitive_ratio",
    "randomized_paging_lower_bound",
    "resource_augmented_ratio",
    "available_paging_policies",
    "make_paging_factory",
]
