"""Traffic traces and workload generators.

The paper evaluates on proprietary Facebook cluster traces (database,
web service, Hadoop) and on a Microsoft (ProjecToR) rack-to-rack probability
matrix.  Those artifacts are not redistributable, so this subpackage provides
*synthetic equivalents* that reproduce the structural properties the paper
itself highlights — spatial skew and (for the Facebook traces) temporal
burstiness — with explicit, documented parameters.  See ``DESIGN.md`` §2 for
the substitution rationale.
"""

from .base import Trace, TraceMetadata
from .matrix import TrafficMatrix
from .temporal import TemporalModel, interleave_bursts
from .synthetic import (
    hotspot_trace,
    permutation_trace,
    uniform_random_trace,
    zipf_pair_trace,
)
from .facebook import database_trace, hadoop_trace, web_service_trace
from .flows import Flow, flows_to_trace, generate_flows
from .microsoft import microsoft_trace, projector_style_matrix
from .stats import TraceStatistics, compute_trace_statistics
from .io import load_trace_csv, load_trace_jsonl, save_trace_csv, save_trace_jsonl
from .registry import available_workloads, make_workload

__all__ = [
    "Trace",
    "TraceMetadata",
    "TrafficMatrix",
    "TemporalModel",
    "interleave_bursts",
    "uniform_random_trace",
    "zipf_pair_trace",
    "hotspot_trace",
    "permutation_trace",
    "database_trace",
    "web_service_trace",
    "hadoop_trace",
    "Flow",
    "generate_flows",
    "flows_to_trace",
    "microsoft_trace",
    "projector_style_matrix",
    "TraceStatistics",
    "compute_trace_statistics",
    "save_trace_csv",
    "load_trace_csv",
    "save_trace_jsonl",
    "load_trace_jsonl",
    "available_workloads",
    "make_workload",
]
