"""Traffic traces and workload generators.

The paper evaluates on proprietary Facebook cluster traces (database,
web service, Hadoop) and on a Microsoft (ProjecToR) rack-to-rack probability
matrix.  Those artifacts are not redistributable, so this subpackage provides
*synthetic equivalents* that reproduce the structural properties the paper
itself highlights — spatial skew and (for the Facebook traces) temporal
burstiness — with explicit, documented parameters.  See ``DESIGN.md`` §2 for
the substitution rationale.
"""

from .base import Trace, TraceMetadata
from .matrix import TrafficMatrix
from .stream import DEFAULT_CHUNK_SIZE, TraceStream, fork_generator
from .temporal import TemporalModel, interleave_bursts
from .synthetic import (
    hotspot_stream,
    hotspot_trace,
    permutation_stream,
    permutation_trace,
    uniform_random_stream,
    uniform_random_trace,
    zipf_pair_stream,
    zipf_pair_trace,
)
from .facebook import (
    database_stream,
    database_trace,
    hadoop_trace,
    web_service_stream,
    web_service_trace,
)
from .flows import Flow, flows_to_trace, generate_flows
from .microsoft import microsoft_stream, microsoft_trace, projector_style_matrix
from .stats import TraceStatistics, TraceStatisticsAccumulator, compute_trace_statistics
from .io import (
    load_trace_csv,
    load_trace_jsonl,
    save_trace_csv,
    save_trace_jsonl,
    stream_trace_csv,
    stream_trace_jsonl,
)
from .registry import available_workloads, make_workload, make_workload_stream

__all__ = [
    "Trace",
    "TraceMetadata",
    "TraceStream",
    "DEFAULT_CHUNK_SIZE",
    "fork_generator",
    "TrafficMatrix",
    "TemporalModel",
    "interleave_bursts",
    "uniform_random_trace",
    "uniform_random_stream",
    "zipf_pair_trace",
    "zipf_pair_stream",
    "hotspot_trace",
    "hotspot_stream",
    "permutation_trace",
    "permutation_stream",
    "database_trace",
    "database_stream",
    "web_service_trace",
    "web_service_stream",
    "hadoop_trace",
    "Flow",
    "generate_flows",
    "flows_to_trace",
    "microsoft_trace",
    "microsoft_stream",
    "projector_style_matrix",
    "TraceStatistics",
    "TraceStatisticsAccumulator",
    "compute_trace_statistics",
    "save_trace_csv",
    "load_trace_csv",
    "stream_trace_csv",
    "save_trace_jsonl",
    "load_trace_jsonl",
    "stream_trace_jsonl",
    "available_workloads",
    "make_workload",
    "make_workload_stream",
]
