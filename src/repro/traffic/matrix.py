"""Rack-to-rack traffic matrices.

A :class:`TrafficMatrix` is a symmetric, zero-diagonal matrix of sampling
probabilities over rack pairs.  It is the spatial component of every
generator in this package: the Microsoft workload samples from it i.i.d.
(exactly the paper's description of that dataset), while the Facebook-style
generators modulate it with a temporal model.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

import numpy as np

from ..errors import TrafficError
from ..types import NodePair

__all__ = ["TrafficMatrix"]


class TrafficMatrix:
    """Symmetric probability matrix over rack pairs."""

    def __init__(self, matrix: np.ndarray):
        m = np.asarray(matrix, dtype=np.float64)
        if m.ndim != 2 or m.shape[0] != m.shape[1]:
            raise TrafficError(f"traffic matrix must be square, got shape {m.shape}")
        if m.shape[0] < 2:
            raise TrafficError("traffic matrix needs at least 2 racks")
        if np.any(m < 0):
            raise TrafficError("traffic matrix entries must be non-negative")
        # Symmetrise and clear the diagonal; requests are unordered pairs.
        m = (m + m.T) / 2.0
        np.fill_diagonal(m, 0.0)
        total = m.sum()
        if total <= 0:
            raise TrafficError("traffic matrix must contain positive demand")
        self._matrix = m / total
        n = m.shape[0]
        iu = np.triu_indices(n, k=1)
        self._pair_index = np.stack(iu, axis=1)
        probs = self._matrix[iu] * 2.0  # each unordered pair appears twice in the matrix
        self._pair_probs = probs / probs.sum()

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_pair_weights(cls, weights: Mapping[NodePair, float], n_nodes: int) -> "TrafficMatrix":
        """Build a matrix from per-pair weights (e.g. request counts)."""
        m = np.zeros((n_nodes, n_nodes), dtype=np.float64)
        for (u, v), w in weights.items():
            if w < 0:
                raise TrafficError(f"negative weight for pair {(u, v)}")
            m[u, v] += w
            m[v, u] += w
        return cls(m)

    @classmethod
    def uniform(cls, n_nodes: int) -> "TrafficMatrix":
        """Uniform demand over all rack pairs."""
        m = np.ones((n_nodes, n_nodes), dtype=np.float64)
        return cls(m)

    @classmethod
    def from_node_popularity(
        cls, popularity: np.ndarray, locality: Optional[np.ndarray] = None
    ) -> "TrafficMatrix":
        """Gravity-model matrix: ``p_{uv} ∝ pop_u · pop_v``, optionally scaled by a locality mask."""
        pop = np.asarray(popularity, dtype=np.float64)
        if np.any(pop < 0) or pop.sum() <= 0:
            raise TrafficError("popularity must be non-negative with positive sum")
        m = np.outer(pop, pop)
        if locality is not None:
            loc = np.asarray(locality, dtype=np.float64)
            if loc.shape != m.shape:
                raise TrafficError(
                    f"locality mask shape {loc.shape} does not match matrix {m.shape}"
                )
            m = m * loc
        return cls(m)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def n_nodes(self) -> int:
        """Number of racks."""
        return self._matrix.shape[0]

    @property
    def matrix(self) -> np.ndarray:
        """Normalised symmetric probability matrix (sums to 1, zero diagonal)."""
        return self._matrix

    def pair_probability(self, u: int, v: int) -> float:
        """Probability mass of the unordered pair ``{u, v}``."""
        if u == v:
            return 0.0
        return float(self._matrix[u, v] * 2.0)

    # ------------------------------------------------------------------ #
    # Sampling and statistics
    # ------------------------------------------------------------------ #
    def sample_pairs(self, n_samples: int, rng: np.random.Generator) -> np.ndarray:
        """Sample ``n_samples`` unordered pairs i.i.d.; returns an ``(n, 2)`` array."""
        if n_samples < 0:
            raise TrafficError(f"n_samples must be non-negative, got {n_samples}")
        if n_samples == 0:
            return np.zeros((0, 2), dtype=np.int32)
        idx = rng.choice(len(self._pair_probs), size=n_samples, p=self._pair_probs)
        return self._pair_index[idx].astype(np.int32)

    def top_pairs(self, k: int) -> list[tuple[NodePair, float]]:
        """The ``k`` heaviest pairs with their probability mass."""
        order = np.argsort(-self._pair_probs)[:k]
        return [
            ((int(self._pair_index[i, 0]), int(self._pair_index[i, 1])), float(self._pair_probs[i]))
            for i in order
        ]

    def skew_top_share(self, fraction: float = 0.01) -> float:
        """Fraction of total demand carried by the heaviest ``fraction`` of pairs.

        A standard spatial-skew summary: the paper's Microsoft matrix is
        "significantly skewed", i.e. this share is large.
        """
        if not (0 < fraction <= 1):
            raise TrafficError(f"fraction must be in (0, 1], got {fraction}")
        k = max(1, int(round(fraction * len(self._pair_probs))))
        top = np.sort(self._pair_probs)[::-1][:k]
        return float(top.sum())

    def entropy(self) -> float:
        """Shannon entropy (bits) of the pair distribution; lower = more skewed."""
        p = self._pair_probs[self._pair_probs > 0]
        return float(-(p * np.log2(p)).sum())

    def max_entropy(self) -> float:
        """Entropy of the uniform distribution over the same number of pairs."""
        return float(np.log2(len(self._pair_probs)))
