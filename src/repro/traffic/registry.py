"""Name-based registry of workload generators.

The benchmark harness and the sweep runner describe workloads by name
(``"facebook-database"``, ``"microsoft"``, ...), so a single declarative
configuration can drive all of the paper's figures.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from ..errors import ConfigurationError
from .base import Trace
from .facebook import database_trace, hadoop_trace, web_service_trace
from .microsoft import microsoft_trace
from .synthetic import hotspot_trace, permutation_trace, uniform_random_trace, zipf_pair_trace

__all__ = ["available_workloads", "make_workload", "register_workload"]

WorkloadFactory = Callable[..., Trace]

_REGISTRY: Dict[str, WorkloadFactory] = {}


def register_workload(name: str, factory: WorkloadFactory) -> None:
    """Register a workload generator under ``name`` (lower-cased)."""
    key = name.lower()
    if key in _REGISTRY:
        raise ConfigurationError(f"workload {name!r} is already registered")
    _REGISTRY[key] = factory


def available_workloads() -> list[str]:
    """Names of the registered workloads, sorted."""
    return sorted(_REGISTRY)


def make_workload(name: str, **kwargs: Any) -> Trace:
    """Generate a workload by registered name.

    Examples
    --------
    >>> trace = make_workload("uniform", n_nodes=8, n_requests=100, seed=0)
    >>> len(trace)
    100
    """
    key = name.lower()
    if key not in _REGISTRY:
        raise ConfigurationError(
            f"unknown workload {name!r}; available: {', '.join(available_workloads())}"
        )
    return _REGISTRY[key](**kwargs)


register_workload("uniform", uniform_random_trace)
register_workload("zipf", zipf_pair_trace)
register_workload("hotspot", hotspot_trace)
register_workload("permutation", permutation_trace)
register_workload("facebook-database", database_trace)
register_workload("facebook-web", web_service_trace)
register_workload("facebook-hadoop", hadoop_trace)
register_workload("microsoft", microsoft_trace)
