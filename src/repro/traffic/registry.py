"""Name-based registry of workload generators.

The benchmark harness and the sweep runner describe workloads by name
(``"facebook-database"``, ``"microsoft"``, ...), so a single declarative
configuration can drive all of the paper's figures.  The registry is an
instance of the generic :class:`repro.experiments.Registry`; the module-level
functions are back-compat shims over it.
"""

from __future__ import annotations

from typing import Any, Callable

from ..experiments.registry import Registry
from .base import Trace
from .facebook import database_trace, hadoop_trace, web_service_trace
from .microsoft import microsoft_trace
from .synthetic import hotspot_trace, permutation_trace, uniform_random_trace, zipf_pair_trace

__all__ = ["WORKLOADS", "available_workloads", "make_workload", "register_workload"]

WorkloadFactory = Callable[..., Trace]

#: The workload registry — the single source of truth for workload names.
WORKLOADS: Registry[Trace] = Registry("workload")


def register_workload(name: str, factory: WorkloadFactory) -> None:
    """Register a workload generator under ``name`` (lower-cased)."""
    WORKLOADS.register(name, factory)


def available_workloads() -> list[str]:
    """Names of the registered workloads, sorted."""
    return WORKLOADS.names()


def make_workload(name: str, **kwargs: Any) -> Trace:
    """Generate a workload by registered name.

    Examples
    --------
    >>> trace = make_workload("uniform", n_nodes=8, n_requests=100, seed=0)
    >>> len(trace)
    100
    """
    return WORKLOADS.build(name, **kwargs)


WORKLOADS.register("uniform", uniform_random_trace)
WORKLOADS.register("zipf", zipf_pair_trace)
WORKLOADS.register("hotspot", hotspot_trace)
WORKLOADS.register("permutation", permutation_trace)
WORKLOADS.register("facebook-database", database_trace)
WORKLOADS.register("facebook-web", web_service_trace)
WORKLOADS.register("facebook-hadoop", hadoop_trace)
WORKLOADS.register("microsoft", microsoft_trace)
