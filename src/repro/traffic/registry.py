"""Name-based registry of workload generators.

The benchmark harness and the sweep runner describe workloads by name
(``"facebook-database"``, ``"microsoft"``, ...), so a single declarative
configuration can drive all of the paper's figures.  The registry is an
instance of the generic :class:`repro.experiments.Registry`; the module-level
functions are back-compat shims over it.
"""

from __future__ import annotations

from typing import Any, Callable

from ..experiments.registry import Registry
from .base import Trace
from .facebook import (
    database_stream,
    database_trace,
    hadoop_trace,
    web_service_stream,
    web_service_trace,
)
from .microsoft import microsoft_stream, microsoft_trace
from .stream import TraceStream, validate_chunk_size
from .synthetic import (
    hotspot_stream,
    hotspot_trace,
    permutation_stream,
    permutation_trace,
    uniform_random_stream,
    uniform_random_trace,
    zipf_pair_stream,
    zipf_pair_trace,
)

__all__ = [
    "WORKLOADS",
    "WORKLOAD_STREAMS",
    "available_workloads",
    "make_workload",
    "make_workload_stream",
    "register_workload",
    "register_workload_stream",
]

WorkloadFactory = Callable[..., Trace]
WorkloadStreamFactory = Callable[..., TraceStream]

#: The workload registry — the single source of truth for workload names.
WORKLOADS: Registry[Trace] = Registry("workload")

#: Chunked generators for workloads that can stream without materializing.
#: Workloads absent here (facebook-hadoop: its background interleave is a
#: global argsort over the full trace) fall back to materialize-then-slice
#: in :func:`make_workload_stream`.
WORKLOAD_STREAMS: Registry[TraceStream] = Registry("workload stream")


def register_workload(name: str, factory: WorkloadFactory) -> None:
    """Register a workload generator under ``name`` (lower-cased)."""
    WORKLOADS.register(name, factory)


def available_workloads() -> list[str]:
    """Names of the registered workloads, sorted."""
    return WORKLOADS.names()


def make_workload(name: str, **kwargs: Any) -> Trace:
    """Generate a workload by registered name.

    Examples
    --------
    >>> trace = make_workload("uniform", n_nodes=8, n_requests=100, seed=0)
    >>> len(trace)
    100
    """
    return WORKLOADS.build(name, **kwargs)


def register_workload_stream(name: str, factory: WorkloadStreamFactory) -> None:
    """Register a chunked stream generator under ``name`` (lower-cased)."""
    WORKLOAD_STREAMS.register(name, factory)


def make_workload_stream(
    name: str, chunk_size: Any = None, **kwargs: Any
) -> TraceStream:
    """Build a workload as a lazy :class:`~repro.traffic.stream.TraceStream`.

    Workloads with a registered chunked generator produce each segment from
    a counter-advanced RNG, bit-identical to :func:`make_workload` with the
    same arguments for any chunk size.  Workloads without one (currently
    ``facebook-hadoop``) are materialized once and sliced — the same stream
    protocol without the memory bound.
    """
    size = validate_chunk_size(chunk_size)
    key = name.lower()
    if key in WORKLOAD_STREAMS:
        return WORKLOAD_STREAMS.build(key, chunk_size=size, **kwargs)
    return TraceStream.from_trace(make_workload(name, **kwargs), chunk_size=size)


WORKLOADS.register("uniform", uniform_random_trace)
WORKLOADS.register("zipf", zipf_pair_trace)
WORKLOADS.register("hotspot", hotspot_trace)
WORKLOADS.register("permutation", permutation_trace)
WORKLOADS.register("facebook-database", database_trace)
WORKLOADS.register("facebook-web", web_service_trace)
WORKLOADS.register("facebook-hadoop", hadoop_trace)
WORKLOADS.register("microsoft", microsoft_trace)

WORKLOAD_STREAMS.register("uniform", uniform_random_stream)
WORKLOAD_STREAMS.register("zipf", zipf_pair_stream)
WORKLOAD_STREAMS.register("hotspot", hotspot_stream)
WORKLOAD_STREAMS.register("permutation", permutation_stream)
WORKLOAD_STREAMS.register("facebook-database", database_stream)
WORKLOAD_STREAMS.register("facebook-web", web_service_stream)
WORKLOAD_STREAMS.register("microsoft", microsoft_stream)
