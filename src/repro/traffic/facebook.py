"""Facebook-cluster-style synthetic workloads.

The paper uses traces from three Facebook production clusters (Roy et al.,
"Inside the social network's (datacenter) network", SIGCOMM 2015): a database
cluster serving SQL, a web-service cluster, and a Hadoop batch-processing
cluster.  The traces themselves are not redistributable; these generators
synthesise workloads with the structural properties that study (and the
paper's own discussion) attribute to each cluster:

* **Database** — traffic is heavily skewed towards a small set of partner
  racks and strongly bursty in time (cache/DB request-response patterns).
  Modelled as a gravity matrix from Zipf-distributed rack popularity with a
  rack-locality boost, run through a high-repetition temporal model with slow
  working-set drift.
* **Web service** — traffic is spread much more widely (web servers talk to
  many cache followers), with milder skew and weaker temporal structure.
  Modelled as a flatter Zipf gravity matrix with lower repetition.
* **Hadoop** — traffic is job-structured: a job touches a small set of racks
  and produces an intense all-to-all shuffle among them for a while, then the
  working set changes.  Modelled as a sequence of jobs, each generating a
  burst of intra-job traffic, mixed with light background traffic.

All generators take an explicit request count and seed so experiments are
reproducible; the default parameters are chosen so the relative behaviour of
the algorithms matches the paper's figures (see ``EXPERIMENTS.md``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import TrafficError
from .base import Trace, TraceMetadata
from .matrix import TrafficMatrix
from .stream import TraceStream, validate_chunk_size
from .temporal import TemporalModel, interleave_bursts

__all__ = [
    "database_trace",
    "database_stream",
    "web_service_trace",
    "web_service_stream",
    "hadoop_trace",
]


def _zipf_popularity(n_nodes: int, exponent: float, rng: np.random.Generator) -> np.ndarray:
    """Zipf popularity over racks with randomly assigned ranks."""
    ranks = rng.permutation(n_nodes) + 1
    return ranks.astype(np.float64) ** (-exponent)


def _locality_mask(n_nodes: int, group_size: int, boost: float) -> np.ndarray:
    """Multiplicative boost for pairs inside the same rack group."""
    groups = np.arange(n_nodes) // max(group_size, 1)
    same = (groups[:, None] == groups[None, :]).astype(np.float64)
    return 1.0 + (boost - 1.0) * same


def database_trace(
    n_nodes: int = 100,
    n_requests: int = 350_000,
    seed: Optional[int] = None,
    popularity_exponent: float = 1.1,
    group_size: int = 10,
    locality_boost: float = 6.0,
    repeat_probability: float = 0.75,
    memory: int = 48,
    drift_interval: Optional[int] = None,
) -> Trace:
    """Synthetic Facebook-database-cluster-like workload.

    Strong spatial skew (Zipf rack popularity + rack-group locality) and
    strong temporal burstiness (high repetition probability with periodic
    working-set drift).  ``drift_interval`` defaults to ``n_requests // 14``
    so the number of working-set changes over the trace does not depend on
    the simulated trace length.
    """
    if drift_interval is None:
        drift_interval = max(500, n_requests // 14)
    rng = np.random.default_rng(seed)
    popularity = _zipf_popularity(n_nodes, popularity_exponent, rng)
    matrix = TrafficMatrix.from_node_popularity(
        popularity, _locality_mask(n_nodes, group_size, locality_boost)
    )
    model = TemporalModel(
        repeat_probability=repeat_probability, memory=memory, drift_interval=drift_interval
    )
    pairs = model.generate(matrix, n_requests, rng)
    meta = TraceMetadata(
        name="facebook-database",
        n_nodes=n_nodes,
        seed=seed,
        params={
            "n_requests": n_requests,
            "popularity_exponent": popularity_exponent,
            "group_size": group_size,
            "locality_boost": locality_boost,
            "repeat_probability": repeat_probability,
            "memory": memory,
            "drift_interval": drift_interval,
        },
    )
    return Trace(pairs[:, 0], pairs[:, 1], meta)


def database_stream(
    n_nodes: int = 100,
    n_requests: int = 350_000,
    seed: Optional[int] = None,
    popularity_exponent: float = 1.1,
    group_size: int = 10,
    locality_boost: float = 6.0,
    repeat_probability: float = 0.75,
    memory: int = 48,
    drift_interval: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> TraceStream:
    """Chunked :func:`database_trace` — bit-identical for any chunk size.

    The popularity/locality matrix is a prefix draw replayed at stream
    start; the temporal model streams via counter-advanced RNG forks.
    """
    if drift_interval is None:
        drift_interval = max(500, n_requests // 14)
    size = validate_chunk_size(chunk_size)
    meta = TraceMetadata(
        name="facebook-database",
        n_nodes=n_nodes,
        seed=seed,
        params={
            "n_requests": n_requests,
            "popularity_exponent": popularity_exponent,
            "group_size": group_size,
            "locality_boost": locality_boost,
            "repeat_probability": repeat_probability,
            "memory": memory,
            "drift_interval": drift_interval,
        },
    )

    def factory():
        rng = np.random.default_rng(seed)
        popularity = _zipf_popularity(n_nodes, popularity_exponent, rng)
        matrix = TrafficMatrix.from_node_popularity(
            popularity, _locality_mask(n_nodes, group_size, locality_boost)
        )
        model = TemporalModel(
            repeat_probability=repeat_probability, memory=memory,
            drift_interval=drift_interval,
        )
        for pairs in model.stream(matrix, n_requests, rng, size):
            yield Trace(pairs[:, 0], pairs[:, 1], meta)

    return TraceStream(factory, meta, n_requests=n_requests, chunk_size=size)


def web_service_trace(
    n_nodes: int = 100,
    n_requests: int = 400_000,
    seed: Optional[int] = None,
    popularity_exponent: float = 0.8,
    repeat_probability: float = 0.55,
    memory: int = 96,
    drift_interval: Optional[int] = None,
) -> Trace:
    """Synthetic Facebook-web-service-cluster-like workload.

    Traffic is spread more widely across racks than in the database cluster
    (flatter popularity), with moderate temporal re-reference — the cluster
    where the paper observes R-BMA, BMA and SO-BMA ending up close together.
    ``drift_interval`` defaults to ``n_requests // 10``.
    """
    if drift_interval is None:
        drift_interval = max(500, n_requests // 10)
    rng = np.random.default_rng(seed)
    popularity = _zipf_popularity(n_nodes, popularity_exponent, rng)
    matrix = TrafficMatrix.from_node_popularity(popularity)
    model = TemporalModel(
        repeat_probability=repeat_probability, memory=memory, drift_interval=drift_interval
    )
    pairs = model.generate(matrix, n_requests, rng)
    meta = TraceMetadata(
        name="facebook-web",
        n_nodes=n_nodes,
        seed=seed,
        params={
            "n_requests": n_requests,
            "popularity_exponent": popularity_exponent,
            "repeat_probability": repeat_probability,
            "memory": memory,
            "drift_interval": drift_interval,
        },
    )
    return Trace(pairs[:, 0], pairs[:, 1], meta)


def web_service_stream(
    n_nodes: int = 100,
    n_requests: int = 400_000,
    seed: Optional[int] = None,
    popularity_exponent: float = 0.8,
    repeat_probability: float = 0.55,
    memory: int = 96,
    drift_interval: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> TraceStream:
    """Chunked :func:`web_service_trace` — bit-identical for any chunk size."""
    if drift_interval is None:
        drift_interval = max(500, n_requests // 10)
    size = validate_chunk_size(chunk_size)
    meta = TraceMetadata(
        name="facebook-web",
        n_nodes=n_nodes,
        seed=seed,
        params={
            "n_requests": n_requests,
            "popularity_exponent": popularity_exponent,
            "repeat_probability": repeat_probability,
            "memory": memory,
            "drift_interval": drift_interval,
        },
    )

    def factory():
        rng = np.random.default_rng(seed)
        popularity = _zipf_popularity(n_nodes, popularity_exponent, rng)
        matrix = TrafficMatrix.from_node_popularity(popularity)
        model = TemporalModel(
            repeat_probability=repeat_probability, memory=memory,
            drift_interval=drift_interval,
        )
        for pairs in model.stream(matrix, n_requests, rng, size):
            yield Trace(pairs[:, 0], pairs[:, 1], meta)

    return TraceStream(factory, meta, n_requests=n_requests, chunk_size=size)


def hadoop_trace(
    n_nodes: int = 100,
    n_requests: int = 185_000,
    seed: Optional[int] = None,
    job_racks: int = 8,
    mean_job_length: Optional[int] = None,
    background_fraction: float = 0.15,
    intra_job_exponent: float = 0.8,
) -> Trace:
    """Synthetic Facebook-Hadoop-cluster-like workload.

    A sequence of batch jobs; each job picks ``job_racks`` racks and produces
    a geometric-length burst of shuffle traffic among them, skewed towards a
    few mapper/reducer pairs.  A light uniform background is mixed in.
    ``mean_job_length`` defaults to ``n_requests // 40`` so the number of
    jobs in the trace does not depend on the simulated trace length.
    """
    if mean_job_length is None:
        mean_job_length = max(50, n_requests // 40)
    if job_racks < 2 or job_racks > n_nodes:
        raise TrafficError(f"job_racks must be in [2, n_nodes], got {job_racks}")
    if not (0.0 <= background_fraction < 1.0):
        raise TrafficError(
            f"background_fraction must be in [0, 1), got {background_fraction}"
        )
    rng = np.random.default_rng(seed)

    job_request_target = int(round(n_requests * (1.0 - background_fraction)))
    bursts: list[np.ndarray] = []
    generated = 0
    while generated < job_request_target:
        length = 1 + int(rng.geometric(1.0 / max(mean_job_length, 1)))
        length = min(length, job_request_target - generated)
        racks = rng.choice(n_nodes, size=job_racks, replace=False)
        # Skewed pair weights inside the job: a few mapper/reducer pairs dominate.
        iu = np.triu_indices(job_racks, k=1)
        n_job_pairs = len(iu[0])
        ranks = rng.permutation(n_job_pairs) + 1
        weights = ranks.astype(np.float64) ** (-intra_job_exponent)
        weights /= weights.sum()
        picks = rng.choice(n_job_pairs, size=length, p=weights)
        burst = np.stack(
            [racks[iu[0][picks]], racks[iu[1][picks]]], axis=1
        ).astype(np.int32)
        bursts.append(burst)
        generated += length
    job_pairs = interleave_bursts(bursts)  # keep job order; intra-job order is the burstiness

    n_background = n_requests - len(job_pairs)
    background = TrafficMatrix.uniform(n_nodes).sample_pairs(n_background, rng)

    # Interleave background uniformly at random positions among job traffic.
    all_pairs = np.concatenate([job_pairs, background], axis=0)
    positions = np.argsort(
        np.concatenate(
            [np.arange(len(job_pairs), dtype=np.float64),
             rng.uniform(0, len(job_pairs), size=n_background)]
        ),
        kind="stable",
    )
    all_pairs = all_pairs[positions]

    meta = TraceMetadata(
        name="facebook-hadoop",
        n_nodes=n_nodes,
        seed=seed,
        params={
            "n_requests": n_requests,
            "job_racks": job_racks,
            "mean_job_length": mean_job_length,
            "background_fraction": background_fraction,
            "intra_job_exponent": intra_job_exponent,
        },
    )
    return Trace(all_pairs[:, 0], all_pairs[:, 1], meta)
