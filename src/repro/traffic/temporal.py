"""Temporal structure models.

Datacenter traces differ not only in *which* pairs communicate (spatial
structure) but also in *when*: requests to the same pair arrive in bursts and
the working set of hot pairs drifts slowly (Avin et al., SIGMETRICS 2020).
The paper relies on this distinction — the Microsoft trace is i.i.d. by
construction ("does not contain any temporal structure"), while the Facebook
traces are bursty — and it is exactly what makes online algorithms
competitive with the static offline matching on the Facebook workloads.

:class:`TemporalModel` converts a spatial :class:`~repro.traffic.matrix.TrafficMatrix`
into a request sequence with tunable burstiness: with probability
``repeat_probability`` the next request repeats a pair drawn from a bounded
recent-history window, otherwise it is a fresh i.i.d. sample from the matrix.
``repeat_probability = 0`` recovers the i.i.d. model.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, Iterator, List, Optional

import numpy as np

from ..errors import TrafficError
from .matrix import TrafficMatrix
from .stream import fork_generator

__all__ = ["TemporalModel", "interleave_bursts"]


class TemporalModel:
    """Burst/repetition model layered over a spatial traffic matrix.

    Parameters
    ----------
    repeat_probability:
        Probability that a request re-references a recently used pair instead
        of being drawn fresh from the matrix.
    memory:
        Size of the recent-history window from which repeated pairs are drawn.
    drift_interval:
        If positive, every ``drift_interval`` requests the recent-history
        window is cleared, modelling working-set changes (e.g. a new job).
    """

    def __init__(
        self,
        repeat_probability: float = 0.0,
        memory: int = 64,
        drift_interval: int = 0,
    ):
        if not (0.0 <= repeat_probability < 1.0):
            raise TrafficError(
                f"repeat_probability must be in [0, 1), got {repeat_probability}"
            )
        if memory < 1:
            raise TrafficError(f"memory must be >= 1, got {memory}")
        if drift_interval < 0:
            raise TrafficError(f"drift_interval must be >= 0, got {drift_interval}")
        self.repeat_probability = float(repeat_probability)
        self.memory = int(memory)
        self.drift_interval = int(drift_interval)

    def generate(
        self, matrix: TrafficMatrix, n_requests: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Generate an ``(n_requests, 2)`` array of rack pairs."""
        if n_requests < 0:
            raise TrafficError(f"n_requests must be non-negative, got {n_requests}")
        if n_requests == 0:
            return np.zeros((0, 2), dtype=np.int32)

        # Pre-draw all i.i.d. samples and repeat decisions in bulk (the guides'
        # "vectorise what you can" rule); only the history bookkeeping is a
        # Python loop.
        fresh = matrix.sample_pairs(n_requests, rng)
        repeat_flags = rng.random(n_requests) < self.repeat_probability
        repeat_picks = rng.integers(0, self.memory, size=n_requests)

        out = np.empty((n_requests, 2), dtype=np.int32)
        history: Deque[tuple[int, int]] = deque(maxlen=self.memory)
        for i in range(n_requests):
            if self.drift_interval and i > 0 and i % self.drift_interval == 0:
                history.clear()
            if repeat_flags[i] and history:
                pick = repeat_picks[i] % len(history)
                pair = history[pick]
            else:
                pair = (int(fresh[i, 0]), int(fresh[i, 1]))
            out[i, 0], out[i, 1] = pair
            history.append(pair)
        return out

    def stream(
        self,
        matrix: TrafficMatrix,
        n_requests: int,
        rng: np.random.Generator,
        chunk_size: int,
    ) -> "Iterator[np.ndarray]":
        """Yield ``(k, 2)`` pair-array chunks bit-identical to :meth:`generate`.

        :meth:`generate` draws its three bulk phases back to back from one
        generator — ``n_requests`` doubles for the fresh samples, then
        ``n_requests`` doubles for the repeat flags, then the repeat picks.
        Streaming splits those phases onto three counter-advanced forks of
        ``rng`` (:func:`~repro.traffic.stream.fork_generator` at offsets 0,
        ``n``, ``2n``), so each chunk draws the exact values the bulk path
        would have, for any chunk size.  ``rng`` itself is left untouched;
        only the history deque and the global request index carry state
        across chunks.
        """
        if n_requests < 0:
            raise TrafficError(f"n_requests must be non-negative, got {n_requests}")
        if chunk_size < 1:
            raise TrafficError(f"chunk_size must be >= 1, got {chunk_size}")
        if n_requests == 0:
            return
        fresh_rng = fork_generator(rng, 0)
        flags_rng = fork_generator(rng, n_requests)
        picks_rng = fork_generator(rng, 2 * n_requests)
        history: Deque[tuple[int, int]] = deque(maxlen=self.memory)
        for start in range(0, n_requests, chunk_size):
            stop = min(start + chunk_size, n_requests)
            k = stop - start
            fresh = matrix.sample_pairs(k, fresh_rng)
            repeat_flags = flags_rng.random(k) < self.repeat_probability
            repeat_picks = picks_rng.integers(0, self.memory, size=k)
            out = np.empty((k, 2), dtype=np.int32)
            for j in range(k):
                i = start + j
                if self.drift_interval and i > 0 and i % self.drift_interval == 0:
                    history.clear()
                if repeat_flags[j] and history:
                    pick = repeat_picks[j] % len(history)
                    pair = history[pick]
                else:
                    pair = (int(fresh[j, 0]), int(fresh[j, 1]))
                out[j, 0], out[j, 1] = pair
                history.append(pair)
            yield out


def interleave_bursts(
    bursts: Iterable[np.ndarray], rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Concatenate per-burst pair arrays, optionally shuffling burst order.

    Used by the Hadoop-style generator: each job produces a burst of requests
    among its racks; bursts keep their internal order (that is the temporal
    structure) but the job order can be shuffled.
    """
    burst_list: List[np.ndarray] = [np.asarray(b, dtype=np.int32) for b in bursts if len(b)]
    if not burst_list:
        return np.zeros((0, 2), dtype=np.int32)
    for b in burst_list:
        if b.ndim != 2 or b.shape[1] != 2:
            raise TrafficError(f"each burst must be an (k, 2) array, got shape {b.shape}")
    if rng is not None:
        order = rng.permutation(len(burst_list))
        burst_list = [burst_list[i] for i in order]
    return np.concatenate(burst_list, axis=0)
