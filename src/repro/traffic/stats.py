"""Trace structure statistics.

Quantifies the two properties the paper argues drive algorithm behaviour:
*spatial skew* (a few rack pairs carry most traffic) and *temporal locality*
(requests to the same pair arrive close together).  The statistics follow the
"trace complexity" methodology of Avin et al. (SIGMETRICS 2020) in spirit:
entropy-based skew measures plus a re-reference measure for burstiness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union

import numpy as np

from ..errors import TrafficError
from ..types import NodePair
from .base import Trace
from .stream import TraceStream

__all__ = ["TraceStatistics", "TraceStatisticsAccumulator", "compute_trace_statistics"]


@dataclass(frozen=True)
class TraceStatistics:
    """Summary statistics of a trace.

    Attributes
    ----------
    n_requests, n_nodes:
        Trace dimensions.
    n_distinct_pairs:
        Number of distinct rack pairs that appear at all.
    top1pct_share, top10pct_share:
        Fraction of requests carried by the heaviest 1 % / 10 % of the
        *appearing* pairs — the spatial-skew summaries.
    pair_entropy_bits, normalized_entropy:
        Shannon entropy of the empirical pair distribution and its ratio to
        the maximum possible entropy over the appearing pairs (1 = uniform,
        close to 0 = extremely skewed).
    rereference_rate:
        Fraction of requests whose pair already occurred within the previous
        ``window`` requests — the temporal-locality summary (i.i.d. traces
        score close to the skew-induced baseline, bursty traces score high).
    mean_rereference_distance:
        Average gap (in requests) to the previous occurrence of the same
        pair, over requests whose pair occurred before.
    """

    n_requests: int
    n_nodes: int
    n_distinct_pairs: int
    top1pct_share: float
    top10pct_share: float
    pair_entropy_bits: float
    normalized_entropy: float
    rereference_rate: float
    mean_rereference_distance: float

    def to_dict(self) -> Dict[str, float]:
        """Plain-dict form for serialisation and reports."""
        return {
            "n_requests": self.n_requests,
            "n_nodes": self.n_nodes,
            "n_distinct_pairs": self.n_distinct_pairs,
            "top1pct_share": self.top1pct_share,
            "top10pct_share": self.top10pct_share,
            "pair_entropy_bits": self.pair_entropy_bits,
            "normalized_entropy": self.normalized_entropy,
            "rereference_rate": self.rereference_rate,
            "mean_rereference_distance": self.mean_rereference_distance,
        }


def _share_of_top(counts: np.ndarray, fraction: float) -> float:
    k = max(1, int(round(fraction * counts.size)))
    top = np.sort(counts)[::-1][:k]
    return float(top.sum() / counts.sum())


class TraceStatisticsAccumulator:
    """Incremental :class:`TraceStatistics` over streamed trace segments.

    Feed contiguous segments in order via :meth:`update`;
    :meth:`finalize` then returns statistics **bit-identical** to
    :func:`compute_trace_statistics` on the materialized trace: the pair
    counts are re-laid-out in the sorted-key order ``np.unique`` would have
    produced, so the entropy and top-share reductions run over byte-identical
    arrays, and the integer re-reference tallies stay exact (all partial sums
    are far below 2^53, where float64 arithmetic is lossless).

    Peak memory is O(distinct pairs), not O(requests).
    """

    def __init__(self, n_nodes: int, window: int = 64):
        if n_nodes < 2:
            raise TrafficError(f"need at least 2 racks, got {n_nodes}")
        if window < 1:
            raise TrafficError(f"window must be >= 1, got {window}")
        self.n_nodes = int(n_nodes)
        self.window = int(window)
        self._counts: Dict[int, int] = {}
        self._last_seen: Dict[int, int] = {}
        self._n = 0
        self._within_window = 0
        self._distance_sum = 0
        self._seen_before = 0

    @property
    def n_requests(self) -> int:
        """Requests accumulated so far."""
        return self._n

    def update(self, segment: Trace) -> None:
        """Fold one trace segment (the next contiguous requests) in."""
        if segment.n_nodes != self.n_nodes:
            raise TrafficError(
                f"segment addresses {segment.n_nodes} racks, accumulator "
                f"was built for {self.n_nodes}"
            )
        n = self.n_nodes
        lo = np.minimum(segment.sources, segment.destinations).astype(np.int64)
        hi = np.maximum(segment.sources, segment.destinations).astype(np.int64)
        keys = (lo * n + hi).tolist()
        counts = self._counts
        last_seen = self._last_seen
        window = self.window
        i = self._n
        for key in keys:
            prev = last_seen.get(key)
            if prev is not None:
                distance = i - prev
                self._seen_before += 1
                self._distance_sum += distance
                if distance <= window:
                    self._within_window += 1
            last_seen[key] = i
            counts[key] = counts.get(key, 0) + 1
            i += 1
        self._n = i

    def finalize(self) -> TraceStatistics:
        """The statistics of everything accumulated so far."""
        if self._n == 0:
            raise TrafficError("cannot compute statistics of an empty trace")
        # Sorted-key layout reproduces np.unique's output order, so the
        # float reductions below see the exact arrays the bulk path builds.
        counts = np.array(
            [self._counts[k] for k in sorted(self._counts)], dtype=np.int64
        )
        probs = counts / counts.sum()
        entropy = float(-(probs * np.log2(probs)).sum())
        max_entropy = float(np.log2(len(counts))) if len(counts) > 1 else 1.0
        return TraceStatistics(
            n_requests=self._n,
            n_nodes=self.n_nodes,
            n_distinct_pairs=int(len(counts)),
            top1pct_share=_share_of_top(counts, 0.01),
            top10pct_share=_share_of_top(counts, 0.10),
            pair_entropy_bits=entropy,
            normalized_entropy=entropy / max_entropy if max_entropy > 0 else 1.0,
            rereference_rate=self._within_window / self._n,
            mean_rereference_distance=(
                self._distance_sum / self._seen_before
                if self._seen_before
                else float("inf")
            ),
        )


def compute_trace_statistics(
    trace: Union[Trace, TraceStream], window: int = 64
) -> TraceStatistics:
    """Compute :class:`TraceStatistics` for a trace or a trace stream.

    Parameters
    ----------
    trace:
        The trace to analyse; a :class:`~repro.traffic.stream.TraceStream`
        is consumed segment by segment through
        :class:`TraceStatisticsAccumulator` (bounded memory, bit-identical
        result).
    window:
        Look-back window (in requests) for the re-reference rate.
    """
    if isinstance(trace, TraceStream):
        acc = TraceStatisticsAccumulator(trace.n_nodes, window=window)
        for segment in trace:
            acc.update(segment)
        return acc.finalize()
    if len(trace) == 0:
        raise TrafficError("cannot compute statistics of an empty trace")
    if window < 1:
        raise TrafficError(f"window must be >= 1, got {window}")

    n = trace.n_nodes
    lo = np.minimum(trace.sources, trace.destinations).astype(np.int64)
    hi = np.maximum(trace.sources, trace.destinations).astype(np.int64)
    keys = lo * n + hi

    unique, counts = np.unique(keys, return_counts=True)
    probs = counts / counts.sum()
    entropy = float(-(probs * np.log2(probs)).sum())
    max_entropy = float(np.log2(len(unique))) if len(unique) > 1 else 1.0

    # Temporal locality: distance to the previous occurrence of each pair.
    last_seen: Dict[int, int] = {}
    distances = np.full(len(keys), -1, dtype=np.int64)
    for i, key in enumerate(keys):
        prev = last_seen.get(int(key))
        if prev is not None:
            distances[i] = i - prev
        last_seen[int(key)] = i
    seen_before = distances >= 0
    within_window = (distances >= 1) & (distances <= window)

    return TraceStatistics(
        n_requests=len(trace),
        n_nodes=n,
        n_distinct_pairs=int(len(unique)),
        top1pct_share=_share_of_top(counts, 0.01),
        top10pct_share=_share_of_top(counts, 0.10),
        pair_entropy_bits=entropy,
        normalized_entropy=entropy / max_entropy if max_entropy > 0 else 1.0,
        rereference_rate=float(within_window.sum() / len(keys)),
        mean_rereference_distance=(
            float(distances[seen_before].mean()) if seen_before.any() else float("inf")
        ),
    )
