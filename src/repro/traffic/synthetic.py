"""Generic synthetic workloads.

These generators are not tied to a specific cluster in the paper; they are
the controlled workloads used by tests and ablations (uniform = no structure
at all, Zipf = pure spatial skew, hotspot = extreme skew, permutation =
best case for a matching).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import TrafficError
from .base import Trace, TraceMetadata
from .matrix import TrafficMatrix
from .stream import TraceStream, chunk_bounds, validate_chunk_size
from .temporal import TemporalModel

__all__ = [
    "uniform_random_trace",
    "uniform_random_stream",
    "zipf_pair_trace",
    "zipf_pair_stream",
    "hotspot_trace",
    "hotspot_stream",
    "permutation_trace",
    "permutation_stream",
]


def _finalise(
    pairs: np.ndarray, n_nodes: int, name: str, seed: Optional[int], **params: object
) -> Trace:
    meta = TraceMetadata(name=name, n_nodes=n_nodes, seed=seed, params=dict(params))
    return Trace(pairs[:, 0], pairs[:, 1], meta)


def uniform_random_trace(
    n_nodes: int, n_requests: int, seed: Optional[int] = None
) -> Trace:
    """Every request picks a uniformly random rack pair — no structure at all."""
    rng = np.random.default_rng(seed)
    matrix = TrafficMatrix.uniform(n_nodes)
    pairs = matrix.sample_pairs(n_requests, rng)
    return _finalise(pairs, n_nodes, "uniform", seed, n_requests=n_requests)


def uniform_random_stream(
    n_nodes: int, n_requests: int, seed: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> TraceStream:
    """Chunked :func:`uniform_random_trace` — bit-identical for any chunk size.

    A single persistent generator samples each chunk in sequence, which is
    exactly how the bulk path consumes the bitstream.
    """
    size = validate_chunk_size(chunk_size)
    meta = TraceMetadata(
        name="uniform", n_nodes=n_nodes, seed=seed, params={"n_requests": n_requests}
    )

    def factory():
        rng = np.random.default_rng(seed)
        matrix = TrafficMatrix.uniform(n_nodes)
        for start, stop in chunk_bounds(n_requests, size):
            pairs = matrix.sample_pairs(stop - start, rng)
            yield Trace(pairs[:, 0], pairs[:, 1], meta)

    return TraceStream(factory, meta, n_requests=n_requests, chunk_size=size)


def zipf_pair_trace(
    n_nodes: int,
    n_requests: int,
    exponent: float = 1.2,
    repeat_probability: float = 0.0,
    seed: Optional[int] = None,
) -> Trace:
    """Zipf-skewed pair popularity with optional temporal repetition.

    Pair ranks are assigned randomly; the probability of the rank-``r`` pair
    is proportional to ``r^{-exponent}``.
    """
    if exponent <= 0:
        raise TrafficError(f"zipf exponent must be positive, got {exponent}")
    rng = np.random.default_rng(seed)
    n_pairs = n_nodes * (n_nodes - 1) // 2
    ranks = rng.permutation(n_pairs) + 1
    weights = ranks.astype(np.float64) ** (-exponent)
    iu = np.triu_indices(n_nodes, k=1)
    m = np.zeros((n_nodes, n_nodes))
    m[iu] = weights
    matrix = TrafficMatrix(m)
    model = TemporalModel(repeat_probability=repeat_probability, memory=32)
    pairs = model.generate(matrix, n_requests, rng)
    return _finalise(
        pairs, n_nodes, "zipf", seed,
        n_requests=n_requests, exponent=exponent, repeat_probability=repeat_probability,
    )


def zipf_pair_stream(
    n_nodes: int,
    n_requests: int,
    exponent: float = 1.2,
    repeat_probability: float = 0.0,
    seed: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> TraceStream:
    """Chunked :func:`zipf_pair_trace` — bit-identical for any chunk size.

    The rank permutation is a prefix draw replayed at stream start; the
    temporal model then streams via counter-advanced RNG forks
    (:meth:`~repro.traffic.temporal.TemporalModel.stream`).
    """
    if exponent <= 0:
        raise TrafficError(f"zipf exponent must be positive, got {exponent}")
    size = validate_chunk_size(chunk_size)
    meta = TraceMetadata(
        name="zipf", n_nodes=n_nodes, seed=seed,
        params={
            "n_requests": n_requests, "exponent": exponent,
            "repeat_probability": repeat_probability,
        },
    )

    def factory():
        rng = np.random.default_rng(seed)
        n_pairs = n_nodes * (n_nodes - 1) // 2
        ranks = rng.permutation(n_pairs) + 1
        weights = ranks.astype(np.float64) ** (-exponent)
        iu = np.triu_indices(n_nodes, k=1)
        m = np.zeros((n_nodes, n_nodes))
        m[iu] = weights
        matrix = TrafficMatrix(m)
        model = TemporalModel(repeat_probability=repeat_probability, memory=32)
        for pairs in model.stream(matrix, n_requests, rng, size):
            yield Trace(pairs[:, 0], pairs[:, 1], meta)

    return TraceStream(factory, meta, n_requests=n_requests, chunk_size=size)


def hotspot_trace(
    n_nodes: int,
    n_requests: int,
    n_hot_pairs: int = 8,
    hot_fraction: float = 0.9,
    seed: Optional[int] = None,
) -> Trace:
    """A few hot pairs carry ``hot_fraction`` of the traffic, the rest is uniform.

    The extreme-skew control: with ``n_hot_pairs`` at most ``b·n/2`` a good
    matching algorithm should serve almost all traffic over matching edges.
    """
    if not (0.0 < hot_fraction < 1.0):
        raise TrafficError(f"hot_fraction must be in (0, 1), got {hot_fraction}")
    max_pairs = n_nodes * (n_nodes - 1) // 2
    if not (1 <= n_hot_pairs <= max_pairs):
        raise TrafficError(f"n_hot_pairs must be in [1, {max_pairs}], got {n_hot_pairs}")
    rng = np.random.default_rng(seed)
    iu = np.triu_indices(n_nodes, k=1)
    n_pairs = len(iu[0])
    hot_idx = rng.choice(n_pairs, size=n_hot_pairs, replace=False)
    weights = np.full(n_pairs, (1.0 - hot_fraction) / (n_pairs - n_hot_pairs) if n_pairs > n_hot_pairs else 0.0)
    weights[hot_idx] = hot_fraction / n_hot_pairs
    m = np.zeros((n_nodes, n_nodes))
    m[iu] = weights
    matrix = TrafficMatrix(m)
    pairs = matrix.sample_pairs(n_requests, rng)
    return _finalise(
        pairs, n_nodes, "hotspot", seed,
        n_requests=n_requests, n_hot_pairs=n_hot_pairs, hot_fraction=hot_fraction,
    )


def hotspot_stream(
    n_nodes: int,
    n_requests: int,
    n_hot_pairs: int = 8,
    hot_fraction: float = 0.9,
    seed: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> TraceStream:
    """Chunked :func:`hotspot_trace` — bit-identical for any chunk size."""
    if not (0.0 < hot_fraction < 1.0):
        raise TrafficError(f"hot_fraction must be in (0, 1), got {hot_fraction}")
    max_pairs = n_nodes * (n_nodes - 1) // 2
    if not (1 <= n_hot_pairs <= max_pairs):
        raise TrafficError(f"n_hot_pairs must be in [1, {max_pairs}], got {n_hot_pairs}")
    size = validate_chunk_size(chunk_size)
    meta = TraceMetadata(
        name="hotspot", n_nodes=n_nodes, seed=seed,
        params={
            "n_requests": n_requests, "n_hot_pairs": n_hot_pairs,
            "hot_fraction": hot_fraction,
        },
    )

    def factory():
        rng = np.random.default_rng(seed)
        iu = np.triu_indices(n_nodes, k=1)
        n_pairs = len(iu[0])
        hot_idx = rng.choice(n_pairs, size=n_hot_pairs, replace=False)
        weights = np.full(
            n_pairs,
            (1.0 - hot_fraction) / (n_pairs - n_hot_pairs) if n_pairs > n_hot_pairs else 0.0,
        )
        weights[hot_idx] = hot_fraction / n_hot_pairs
        m = np.zeros((n_nodes, n_nodes))
        m[iu] = weights
        matrix = TrafficMatrix(m)
        for start, stop in chunk_bounds(n_requests, size):
            pairs = matrix.sample_pairs(stop - start, rng)
            yield Trace(pairs[:, 0], pairs[:, 1], meta)

    return TraceStream(factory, meta, n_requests=n_requests, chunk_size=size)


def permutation_trace(
    n_nodes: int,
    n_requests: int,
    seed: Optional[int] = None,
) -> Trace:
    """Traffic concentrated on a random perfect matching of the racks.

    Every rack talks to exactly one partner, so with ``b >= 1`` the entire
    workload fits into the reconfigurable matching — the best case for any
    demand-aware algorithm and a useful sanity check (routing cost should
    approach 1 per request).
    """
    rng = np.random.default_rng(seed)
    if n_nodes < 2:
        raise TrafficError(f"need at least 2 racks, got {n_nodes}")
    perm = rng.permutation(n_nodes)
    partners = [(int(perm[i]), int(perm[i + 1])) for i in range(0, n_nodes - 1, 2)]
    idx = rng.integers(0, len(partners), size=n_requests)
    pairs = np.array([partners[i] for i in idx], dtype=np.int32)
    return _finalise(pairs, n_nodes, "permutation", seed, n_requests=n_requests)


def permutation_stream(
    n_nodes: int,
    n_requests: int,
    seed: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> TraceStream:
    """Chunked :func:`permutation_trace` — bit-identical for any chunk size."""
    if n_nodes < 2:
        raise TrafficError(f"need at least 2 racks, got {n_nodes}")
    size = validate_chunk_size(chunk_size)
    meta = TraceMetadata(
        name="permutation", n_nodes=n_nodes, seed=seed,
        params={"n_requests": n_requests},
    )

    def factory():
        rng = np.random.default_rng(seed)
        perm = rng.permutation(n_nodes)
        partners = [(int(perm[i]), int(perm[i + 1])) for i in range(0, n_nodes - 1, 2)]
        for start, stop in chunk_bounds(n_requests, size):
            idx = rng.integers(0, len(partners), size=stop - start)
            pairs = np.array([partners[i] for i in idx], dtype=np.int32)
            yield Trace(pairs[:, 0], pairs[:, 1], meta)

    return TraceStream(factory, meta, n_requests=n_requests, chunk_size=size)
