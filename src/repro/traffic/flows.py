"""Flow-level workload generation.

The paper models demand as a sequence of unit requests ("a request could
either be an individual packet or a certain amount of bytes transferred").
Real datacenter traffic arrives as *flows* whose sizes are heavy-tailed: most
flows are mice, a few elephants carry most of the bytes.  This module
generates flow-level workloads and expands them into the request-sequence
model the algorithms consume, so experiments can study how flow-size skew
(on top of pair skew) affects the benefit of reconfiguration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import TrafficError
from ..types import NodePair
from .base import Trace, TraceMetadata
from .matrix import TrafficMatrix

__all__ = ["Flow", "generate_flows", "flows_to_trace"]


@dataclass(frozen=True, slots=True)
class Flow:
    """A flow between two racks.

    Attributes
    ----------
    src, dst:
        Rack endpoints.
    size:
        Flow size in request units (each unit becomes one request).
    start:
        Logical start position used when interleaving flows.
    """

    src: int
    dst: int
    size: int
    start: float

    def pair(self) -> NodePair:
        """Canonical rack pair of the flow."""
        return (self.src, self.dst) if self.src < self.dst else (self.dst, self.src)


def generate_flows(
    matrix: TrafficMatrix,
    n_flows: int,
    mean_flow_size: float = 20.0,
    elephant_fraction: float = 0.05,
    elephant_multiplier: float = 20.0,
    seed: Optional[int] = None,
) -> List[Flow]:
    """Sample flows from a spatial traffic matrix with a heavy-tailed size mix.

    Parameters
    ----------
    matrix:
        Spatial distribution of flow endpoints.
    n_flows:
        Number of flows to generate.
    mean_flow_size:
        Mean size (in requests) of a mouse flow; sizes are geometric.
    elephant_fraction:
        Fraction of flows that are elephants.
    elephant_multiplier:
        Factor by which an elephant's mean size exceeds a mouse's.
    """
    if n_flows < 0:
        raise TrafficError(f"n_flows must be non-negative, got {n_flows}")
    if not (0.0 <= elephant_fraction <= 1.0):
        raise TrafficError(f"elephant_fraction must be in [0, 1], got {elephant_fraction}")
    if mean_flow_size < 1:
        raise TrafficError(f"mean_flow_size must be >= 1, got {mean_flow_size}")
    rng = np.random.default_rng(seed)
    endpoints = matrix.sample_pairs(n_flows, rng)
    is_elephant = rng.random(n_flows) < elephant_fraction
    mouse_sizes = rng.geometric(1.0 / mean_flow_size, size=n_flows)
    elephant_sizes = rng.geometric(1.0 / (mean_flow_size * elephant_multiplier), size=n_flows)
    sizes = np.where(is_elephant, elephant_sizes, mouse_sizes).astype(int)
    starts = np.sort(rng.uniform(0.0, float(max(n_flows, 1)), size=n_flows))
    return [
        Flow(int(endpoints[i, 0]), int(endpoints[i, 1]), int(max(1, sizes[i])), float(starts[i]))
        for i in range(n_flows)
    ]


def flows_to_trace(
    flows: Sequence[Flow],
    n_nodes: int,
    name: str = "flows",
    seed: Optional[int] = None,
    interleave: bool = True,
    concurrency: int = 32,
) -> Trace:
    """Expand flows into a request trace.

    With ``interleave=True`` (default) up to ``concurrency`` flows are active
    at a time (admitted in start order) and each request is drawn from a
    uniformly random active flow, modelling packets of overlapping flows
    sharing the fabric; with ``interleave=False`` each flow's requests are
    emitted back-to-back (maximal burstiness).
    """
    if not flows:
        raise TrafficError("cannot build a trace from zero flows")
    if concurrency < 1:
        raise TrafficError(f"concurrency must be >= 1, got {concurrency}")
    rng = np.random.default_rng(seed)
    pairs: list[tuple[int, int]] = []
    ordered = sorted(flows, key=lambda f: f.start)
    if not interleave:
        for flow in ordered:
            pairs.extend([(flow.src, flow.dst)] * flow.size)
    else:
        active: list[list] = []  # [flow, remaining]
        next_flow = 0
        while next_flow < len(ordered) or active:
            while next_flow < len(ordered) and len(active) < concurrency:
                active.append([ordered[next_flow], ordered[next_flow].size])
                next_flow += 1
            idx = int(rng.integers(len(active)))
            flow, remaining = active[idx]
            pairs.append((flow.src, flow.dst))
            if remaining == 1:
                active.pop(idx)
            else:
                active[idx][1] = remaining - 1
    meta = TraceMetadata(
        name=name,
        n_nodes=n_nodes,
        seed=seed,
        params={"n_flows": len(flows), "interleave": interleave},
    )
    return Trace([p[0] for p in pairs], [p[1] for p in pairs], meta)
