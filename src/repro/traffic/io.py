"""Trace serialisation.

Traces can be saved to and loaded from CSV (``src,dst`` per line, with a
commented header carrying metadata) and JSONL (one JSON object per request
plus a metadata header line).  This lets expensive generated workloads be
reused across benchmark runs and lets users plug in their own datacenter
traces.

Both formats also have chunked readers (:func:`stream_trace_csv`,
:func:`stream_trace_jsonl`) that yield the file as a
:class:`~repro.traffic.stream.TraceStream` of bounded-size segments, so
multi-GB trace files never fully load.

Malformed inputs raise :class:`~repro.errors.TrafficError` naming the
offending line; metadata headers are funnelled through the canonical spec
path (:func:`repro.experiments.specs.canonical_data`), so numpy scalars in
``seed``/``params`` serialise cleanly instead of crashing ``json.dumps``.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterator, Optional, Union

import numpy as np

from ..errors import ConfigurationError, TrafficError
from .base import Trace, TraceMetadata
from .stream import TraceStream, validate_chunk_size

__all__ = [
    "save_trace_csv",
    "load_trace_csv",
    "stream_trace_csv",
    "save_trace_jsonl",
    "load_trace_jsonl",
    "stream_trace_jsonl",
]

PathLike = Union[str, Path]


def _header_dict(metadata: TraceMetadata) -> dict:
    """Metadata as a JSON-serialisable header dict.

    Generator params routinely carry numpy scalars (``np.int64`` request
    counts, ``np.float64`` exponents); the canonical spec path converts them
    to plain Python values, and rejects anything genuinely unserialisable
    with the offending path instead of a raw ``TypeError`` from
    ``json.dumps``.
    """
    from ..experiments.specs import canonical_data

    header = {
        "name": metadata.name,
        "n_nodes": metadata.n_nodes,
        "seed": metadata.seed,
        "params": dict(metadata.params),
    }
    try:
        return canonical_data(header, _path="trace metadata")
    except ConfigurationError as exc:
        raise TrafficError(f"trace metadata is not serialisable: {exc}") from exc


def _metadata_from_header(header: dict, path: Path) -> TraceMetadata:
    try:
        return TraceMetadata(
            name=header["name"],
            n_nodes=int(header["n_nodes"]),
            seed=header.get("seed"),
            params=header.get("params", {}),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise TrafficError(f"{path} has an invalid metadata header: {exc}") from exc


def _parse_pair(row_src: object, row_dst: object) -> tuple[int, int]:
    """Strictly parse one (src, dst) pair; floats and junk are rejected."""
    out = []
    for value in (row_src, row_dst):
        if isinstance(value, bool):
            raise ValueError(f"rack id must be an integer, got {value!r}")
        if isinstance(value, float):
            if not value.is_integer():
                raise ValueError(f"rack id must be an integer, got {value!r}")
            value = int(value)
        out.append(int(value))
    return out[0], out[1]


# --------------------------------------------------------------------------- #
# CSV
# --------------------------------------------------------------------------- #
def save_trace_csv(trace: Trace, path: PathLike) -> None:
    """Write a trace as CSV with a ``#``-prefixed JSON metadata header."""
    path = Path(path)
    header = _header_dict(trace.metadata)
    with path.open("w", newline="") as fh:
        fh.write("# " + json.dumps(header) + "\n")
        writer = csv.writer(fh)
        writer.writerow(["src", "dst"])
        for s, d in zip(trace.sources.tolist(), trace.destinations.tolist()):
            writer.writerow([s, d])


def _open_csv(path: PathLike):
    """Open a saved CSV trace; returns ``(file, metadata, reader)`` past the headers."""
    path = Path(path)
    if not path.exists():
        raise TrafficError(f"trace file {path} does not exist")
    fh = path.open("r", newline="")
    try:
        first = fh.readline()
        if not first.startswith("#"):
            raise TrafficError(f"{path} is missing the metadata header line")
        try:
            header = json.loads(first[1:].strip())
        except json.JSONDecodeError as exc:
            raise TrafficError(f"{path} line 1: invalid metadata JSON: {exc}") from exc
        meta = _metadata_from_header(header, path)
        reader = csv.reader(fh)
        column_row = next(reader, None)
        if column_row != ["src", "dst"]:
            raise TrafficError(f"{path} has unexpected column header {column_row}")
        return fh, meta, reader
    except Exception:
        fh.close()
        raise


def _csv_rows(path: Path, reader) -> Iterator[tuple[int, int]]:
    """Yield parsed ``(src, dst)`` rows, mapping parse failures to line numbers."""
    # line_num counts lines the reader consumed, which excludes the metadata
    # line readline() took before the reader was built — +1 gives the 1-based
    # physical file line an editor would jump to.
    for row in reader:
        if not row:
            continue
        try:
            if len(row) != 2:
                raise ValueError(f"expected 2 columns, got {len(row)}")
            yield _parse_pair(row[0], row[1])
        except (IndexError, ValueError) as exc:
            raise TrafficError(
                f"{path} line {reader.line_num + 1}: malformed request row "
                f"{row!r}: {exc}"
            ) from None


def load_trace_csv(path: PathLike) -> Trace:
    """Load a trace written by :func:`save_trace_csv`.

    Ragged or non-integer rows raise :class:`TrafficError` naming the line.
    """
    path = Path(path)
    fh, meta, reader = _open_csv(path)
    with fh:
        src: list[int] = []
        dst: list[int] = []
        for s, d in _csv_rows(path, reader):
            src.append(s)
            dst.append(d)
    return Trace(np.array(src, dtype=np.int32), np.array(dst, dtype=np.int32), meta)


def stream_trace_csv(path: PathLike, chunk_size: Optional[int] = None) -> TraceStream:
    """Read a saved CSV trace lazily as a :class:`TraceStream`.

    The metadata header is parsed eagerly (so bad files fail at call time);
    request rows are read in ``chunk_size`` segments on iteration, keeping
    peak memory bounded by the chunk size.  The total length is discovered
    at exhaustion (``n_requests`` is ``None``).
    """
    path = Path(path)
    size = validate_chunk_size(chunk_size)
    fh, meta, reader = _open_csv(path)
    fh.close()

    def factory() -> Iterator[Trace]:
        fh, _, reader = _open_csv(path)
        with fh:
            src: list[int] = []
            dst: list[int] = []
            for s, d in _csv_rows(path, reader):
                src.append(s)
                dst.append(d)
                if len(src) >= size:
                    yield Trace(np.array(src, dtype=np.int32),
                                np.array(dst, dtype=np.int32), meta)
                    src, dst = [], []
            if src:
                yield Trace(np.array(src, dtype=np.int32),
                            np.array(dst, dtype=np.int32), meta)

    return TraceStream(factory, meta, n_requests=None, chunk_size=size)


# --------------------------------------------------------------------------- #
# JSONL
# --------------------------------------------------------------------------- #
def save_trace_jsonl(trace: Trace, path: PathLike) -> None:
    """Write a trace as JSONL: a metadata object followed by one object per request."""
    path = Path(path)
    header = _header_dict(trace.metadata)
    header = {"type": "metadata", **header}
    with path.open("w") as fh:
        fh.write(json.dumps(header) + "\n")
        for i, (s, d) in enumerate(zip(trace.sources.tolist(), trace.destinations.tolist())):
            fh.write(json.dumps({"i": i, "src": s, "dst": d}) + "\n")


def _jsonl_records(path: Path) -> Iterator[tuple[int, dict]]:
    """Yield ``(line_number, object)`` for each non-empty JSONL line."""
    with path.open("r") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TrafficError(f"{path} line {lineno}: invalid JSON: {exc}") from None
            if not isinstance(obj, dict):
                raise TrafficError(
                    f"{path} line {lineno}: expected a JSON object, got {type(obj).__name__}"
                )
            yield lineno, obj


def _jsonl_pair(path: Path, lineno: int, obj: dict) -> tuple[int, int]:
    try:
        return _parse_pair(obj["src"], obj["dst"])
    except (KeyError, ValueError, TypeError) as exc:
        raise TrafficError(
            f"{path} line {lineno}: malformed request record {obj!r}: {exc}"
        ) from None


def load_trace_jsonl(path: PathLike) -> Trace:
    """Load a trace written by :func:`save_trace_jsonl`.

    Malformed records raise :class:`TrafficError` naming the line.
    """
    path = Path(path)
    if not path.exists():
        raise TrafficError(f"trace file {path} does not exist")
    src: list[int] = []
    dst: list[int] = []
    meta_obj: dict | None = None
    for lineno, obj in _jsonl_records(path):
        if obj.get("type") == "metadata":
            meta_obj = obj
        else:
            s, d = _jsonl_pair(path, lineno, obj)
            src.append(s)
            dst.append(d)
    if meta_obj is None:
        raise TrafficError(f"{path} is missing the metadata line")
    meta = _metadata_from_header(meta_obj, path)
    return Trace(np.array(src, dtype=np.int32), np.array(dst, dtype=np.int32), meta)


def stream_trace_jsonl(path: PathLike, chunk_size: Optional[int] = None) -> TraceStream:
    """Read a saved JSONL trace lazily as a :class:`TraceStream`.

    Like :func:`stream_trace_csv`: metadata parsed eagerly, request records
    read in bounded-size segments, total length discovered at exhaustion.
    The metadata line must precede the first request record (the writer
    always puts it first).
    """
    path = Path(path)
    size = validate_chunk_size(chunk_size)
    if not path.exists():
        raise TrafficError(f"trace file {path} does not exist")
    meta: TraceMetadata | None = None
    for lineno, obj in _jsonl_records(path):
        if obj.get("type") == "metadata":
            meta = _metadata_from_header(obj, path)
        break
    if meta is None:
        raise TrafficError(f"{path} must start with the metadata line to be streamed")

    def factory() -> Iterator[Trace]:
        src: list[int] = []
        dst: list[int] = []
        for lineno, obj in _jsonl_records(path):
            if obj.get("type") == "metadata":
                continue
            s, d = _jsonl_pair(path, lineno, obj)
            src.append(s)
            dst.append(d)
            if len(src) >= size:
                yield Trace(np.array(src, dtype=np.int32),
                            np.array(dst, dtype=np.int32), meta)
                src, dst = [], []
        if src:
            yield Trace(np.array(src, dtype=np.int32),
                        np.array(dst, dtype=np.int32), meta)

    return TraceStream(factory, meta, n_requests=None, chunk_size=size)
