"""Trace serialisation.

Traces can be saved to and loaded from CSV (``src,dst`` per line, with a
commented header carrying metadata) and JSONL (one JSON object per request
plus a metadata header line).  This lets expensive generated workloads be
reused across benchmark runs and lets users plug in their own datacenter
traces.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

import numpy as np

from ..errors import TrafficError
from .base import Trace, TraceMetadata

__all__ = ["save_trace_csv", "load_trace_csv", "save_trace_jsonl", "load_trace_jsonl"]

PathLike = Union[str, Path]


def save_trace_csv(trace: Trace, path: PathLike) -> None:
    """Write a trace as CSV with a ``#``-prefixed JSON metadata header."""
    path = Path(path)
    header = {
        "name": trace.metadata.name,
        "n_nodes": trace.metadata.n_nodes,
        "seed": trace.metadata.seed,
        "params": dict(trace.metadata.params),
    }
    with path.open("w", newline="") as fh:
        fh.write("# " + json.dumps(header) + "\n")
        writer = csv.writer(fh)
        writer.writerow(["src", "dst"])
        for s, d in zip(trace.sources.tolist(), trace.destinations.tolist()):
            writer.writerow([s, d])


def load_trace_csv(path: PathLike) -> Trace:
    """Load a trace written by :func:`save_trace_csv`."""
    path = Path(path)
    if not path.exists():
        raise TrafficError(f"trace file {path} does not exist")
    with path.open("r", newline="") as fh:
        first = fh.readline()
        if not first.startswith("#"):
            raise TrafficError(f"{path} is missing the metadata header line")
        header = json.loads(first[1:].strip())
        reader = csv.reader(fh)
        column_row = next(reader, None)
        if column_row != ["src", "dst"]:
            raise TrafficError(f"{path} has unexpected column header {column_row}")
        src: list[int] = []
        dst: list[int] = []
        for row in reader:
            if not row:
                continue
            src.append(int(row[0]))
            dst.append(int(row[1]))
    meta = TraceMetadata(
        name=header["name"],
        n_nodes=int(header["n_nodes"]),
        seed=header.get("seed"),
        params=header.get("params", {}),
    )
    return Trace(np.array(src, dtype=np.int32), np.array(dst, dtype=np.int32), meta)


def save_trace_jsonl(trace: Trace, path: PathLike) -> None:
    """Write a trace as JSONL: a metadata object followed by one object per request."""
    path = Path(path)
    with path.open("w") as fh:
        fh.write(json.dumps({
            "type": "metadata",
            "name": trace.metadata.name,
            "n_nodes": trace.metadata.n_nodes,
            "seed": trace.metadata.seed,
            "params": dict(trace.metadata.params),
        }) + "\n")
        for i, (s, d) in enumerate(zip(trace.sources.tolist(), trace.destinations.tolist())):
            fh.write(json.dumps({"i": i, "src": s, "dst": d}) + "\n")


def load_trace_jsonl(path: PathLike) -> Trace:
    """Load a trace written by :func:`save_trace_jsonl`."""
    path = Path(path)
    if not path.exists():
        raise TrafficError(f"trace file {path} does not exist")
    src: list[int] = []
    dst: list[int] = []
    meta_obj: dict | None = None
    with path.open("r") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            if obj.get("type") == "metadata":
                meta_obj = obj
            else:
                src.append(int(obj["src"]))
                dst.append(int(obj["dst"]))
    if meta_obj is None:
        raise TrafficError(f"{path} is missing the metadata line")
    meta = TraceMetadata(
        name=meta_obj["name"],
        n_nodes=int(meta_obj["n_nodes"]),
        seed=meta_obj.get("seed"),
        params=meta_obj.get("params", {}),
    )
    return Trace(np.array(src, dtype=np.int32), np.array(dst, dtype=np.int32), meta)
