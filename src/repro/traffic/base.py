"""Trace container.

A :class:`Trace` stores a request sequence as two parallel numpy integer
arrays (sources and destinations) plus metadata describing how it was
generated.  Arrays keep memory overhead low for million-request traces while
:meth:`Trace.requests` still yields :class:`~repro.types.Request` objects for
code that prefers the object interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..errors import TrafficError
from ..types import NodePair, Request, canonical_pair

__all__ = ["TraceMetadata", "Trace"]


@dataclass(frozen=True)
class TraceMetadata:
    """Descriptive metadata attached to a trace.

    Attributes
    ----------
    name:
        Workload name (e.g. ``"facebook-database"``).
    n_nodes:
        Number of racks the trace addresses.
    seed:
        Seed used by the generator (``None`` for loaded/external traces).
    params:
        Generator-specific parameters, for reproducibility records.
    """

    name: str
    n_nodes: int
    seed: int | None = None
    params: Mapping[str, Any] = field(default_factory=dict)


class Trace:
    """A finite sequence of communication requests between racks.

    ``offset`` is the global index of the trace's first request: ``0`` for a
    full trace, and the slice start for segments produced by slicing or by a
    :class:`~repro.traffic.stream.TraceStream`.  Request timestamps are
    always *global* (``offset + local index``), so a batched or streamed
    segment sees the same timestamps the reference per-request path does.
    """

    def __init__(
        self,
        sources: Sequence[int] | np.ndarray,
        destinations: Sequence[int] | np.ndarray,
        metadata: TraceMetadata,
        offset: int = 0,
    ):
        if offset < 0:
            raise TrafficError(f"trace offset must be non-negative, got {offset}")
        src = np.asarray(sources, dtype=np.int32)
        dst = np.asarray(destinations, dtype=np.int32)
        if src.shape != dst.shape or src.ndim != 1:
            raise TrafficError(
                f"sources and destinations must be equal-length 1-D arrays, "
                f"got shapes {src.shape} and {dst.shape}"
            )
        if src.size and (src.min() < 0 or dst.min() < 0):
            raise TrafficError("negative rack id in trace")
        n = metadata.n_nodes
        if src.size and (src.max() >= n or dst.max() >= n):
            raise TrafficError(f"rack id out of range for n_nodes={n}")
        if np.any(src == dst):
            raise TrafficError("trace contains self-loop requests")
        self._src = src
        self._dst = dst
        self._offset = int(offset)
        self.metadata = metadata

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_pairs(
        cls, pairs: Iterable[tuple[int, int]], n_nodes: int, name: str = "custom",
        seed: int | None = None, params: Mapping[str, Any] | None = None,
    ) -> "Trace":
        """Build a trace from an iterable of ``(src, dst)`` tuples."""
        pair_list = list(pairs)
        src = np.array([p[0] for p in pair_list], dtype=np.int32)
        dst = np.array([p[1] for p in pair_list], dtype=np.int32)
        return cls(src, dst, TraceMetadata(name=name, n_nodes=n_nodes, seed=seed,
                                           params=dict(params or {})))

    @classmethod
    def from_requests(cls, requests: Iterable[Request], n_nodes: int, name: str = "custom") -> "Trace":
        """Build a trace from :class:`~repro.types.Request` objects."""
        return cls.from_pairs(((r.src, r.dst) for r in requests), n_nodes, name=name)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Workload name from the metadata."""
        return self.metadata.name

    @property
    def n_nodes(self) -> int:
        """Number of racks addressed by the trace."""
        return self.metadata.n_nodes

    @property
    def sources(self) -> np.ndarray:
        """Source rack ids (read-only view)."""
        return self._src

    @property
    def destinations(self) -> np.ndarray:
        """Destination rack ids (read-only view)."""
        return self._dst

    @property
    def offset(self) -> int:
        """Global index of this trace's first request (0 for a full trace)."""
        return self._offset

    def with_offset(self, offset: int) -> "Trace":
        """The same requests rebased to start at global index ``offset``.

        Shares the underlying arrays; used by :class:`~repro.traffic.stream.TraceStream`
        to assign global positions to generator-produced segments.
        """
        if offset == self._offset:
            return self
        clone = object.__new__(Trace)
        clone._src = self._src
        clone._dst = self._dst
        clone._offset = int(offset)
        clone.metadata = self.metadata
        if clone._offset < 0:
            raise TrafficError(f"trace offset must be non-negative, got {offset}")
        return clone

    def __len__(self) -> int:
        return int(self._src.size)

    def __iter__(self) -> Iterator[Request]:
        return self.requests()

    def __getitem__(self, index: int | slice) -> "Request | Trace":
        if isinstance(index, slice):
            meta = TraceMetadata(
                name=self.metadata.name,
                n_nodes=self.metadata.n_nodes,
                seed=self.metadata.seed,
                params=dict(self.metadata.params),
            )
            # Segments keep *global* timestamps: the slice start is folded
            # into the segment's offset so batched/streamed replay sees the
            # same request timestamps as the reference per-request path.
            start = index.indices(len(self))[0]
            return Trace(self._src[index], self._dst[index], meta,
                         offset=self._offset + start)
        if index < 0:
            index += len(self)
        return Request(int(self._src[index]), int(self._dst[index]),
                       timestamp=float(self._offset + index))

    def requests(self) -> Iterator[Request]:
        """Yield the trace as :class:`~repro.types.Request` objects in order."""
        for i in range(len(self)):
            yield Request(int(self._src[i]), int(self._dst[i]),
                          timestamp=float(self._offset + i))

    def pairs(self) -> Iterator[NodePair]:
        """Yield the canonical node pair of every request in order."""
        for i in range(len(self)):
            yield canonical_pair(int(self._src[i]), int(self._dst[i]))

    def pair_counts(self) -> dict[NodePair, int]:
        """Number of requests per canonical pair (used by SO-BMA and analysis)."""
        lo = np.minimum(self._src, self._dst).astype(np.int64)
        hi = np.maximum(self._src, self._dst).astype(np.int64)
        keys = lo * self.n_nodes + hi
        unique, counts = np.unique(keys, return_counts=True)
        return {
            (int(k // self.n_nodes), int(k % self.n_nodes)): int(c)
            for k, c in zip(unique, counts)
        }

    def prefix(self, n_requests: int) -> "Trace":
        """The first ``n_requests`` requests as a new trace."""
        if n_requests < 0:
            raise TrafficError(f"prefix length must be non-negative, got {n_requests}")
        return self[: n_requests]  # type: ignore[return-value]

    def concatenate(self, other: "Trace") -> "Trace":
        """Concatenate two traces over the same rack set."""
        if other.n_nodes != self.n_nodes:
            raise TrafficError(
                f"cannot concatenate traces over different rack counts "
                f"({self.n_nodes} vs {other.n_nodes})"
            )
        meta = TraceMetadata(
            name=f"{self.name}+{other.name}",
            n_nodes=self.n_nodes,
            seed=self.metadata.seed,
            params={"left": dict(self.metadata.params), "right": dict(other.metadata.params)},
        )
        return Trace(
            np.concatenate([self._src, other._src]),
            np.concatenate([self._dst, other._dst]),
            meta,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Trace {self.name!r} requests={len(self)} nodes={self.n_nodes}>"
