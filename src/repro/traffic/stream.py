"""Streaming trace protocol.

A :class:`TraceStream` is a lazy sequence of :class:`~repro.traffic.base.Trace`
*segments* sharing one :class:`~repro.traffic.base.TraceMetadata`.  It is the
streaming counterpart of a materialized trace: the engine consumes segments
as they arrive, so peak memory is bounded by the segment (chunk) size rather
than the trace length, while replay stays **bit-identical** to materialized
replay (certified by the streaming differential harness in
``tests/test_streaming_engine.py``).

Protocol
--------
* Iterating a stream yields ``Trace`` segments whose ``offset`` is the global
  index of their first request, assigned by the stream itself — segment
  request timestamps are therefore global, exactly as in the reference
  per-request path.
* ``n_requests`` is either declared up front (synthetic generators know it)
  or ``None``, in which case the total length is discovered at exhaustion
  (the engine then plans checkpoints with a tail-flush strategy).
* Streams built from a segment *factory* (a zero-argument callable returning
  a fresh iterator) are re-iterable; each iteration regenerates the same
  segments deterministically.  Streams built from a plain iterable can be
  consumed once.

Construction
------------
* :meth:`TraceStream.from_trace` slices an existing materialized trace into
  chunks (the universal fallback — no memory win, same protocol).
* The workload registry exposes truly chunked generators for the synthetic
  and temporal families via
  :func:`repro.traffic.registry.make_workload_stream`; those produce each
  chunk from a counter-advanced RNG (:func:`fork_generator`) so the streamed
  requests are bit-identical to the bulk-generated trace for *any* chunk
  size.
* :func:`repro.traffic.io.stream_trace_csv` / ``stream_trace_jsonl`` read
  saved trace files in bounded-memory chunks.

Fan-out
-------
:meth:`TraceStream.tee` splits one stream into several consumers with a
bounded lookahead buffer — the runner uses it to replay one shared stream
through multiple algorithms in lockstep
(:meth:`repro.simulation.runner.ExperimentRunner.compare_on_shared_trace`).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Iterable, Iterator, List, Optional, Union

import numpy as np

from ..errors import TrafficError
from .base import Trace, TraceMetadata

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "TraceStream",
    "chunk_bounds",
    "fork_generator",
    "validate_chunk_size",
]

#: Default segment size for chunked generation and IO (requests per segment).
DEFAULT_CHUNK_SIZE = 8_192

SegmentSource = Union[Iterable[Trace], Callable[[], Iterator[Trace]]]


def fork_generator(rng: np.random.Generator, offset: int) -> np.random.Generator:
    """A new generator at ``rng``'s current state advanced by ``offset`` draws.

    The chunked temporal generators split one bulk RNG stream into phase
    streams (fresh samples / repeat flags / repeat picks) by advancing forked
    copies of the underlying PCG64 counter — each 53-bit double consumed by
    ``Generator.random`` advances the counter by exactly one step, so
    ``fork_generator(rng, n)`` starts where phase one ends after ``n`` draws.
    The source generator is left untouched.

    PCG64 state also carries a buffered half-draw: bounded ``integers`` with
    a small range consume 32-bit halves of each 64-bit output and stash the
    unused half (``has_uint32``/``uinteger``).  Double draws never touch that
    buffer, but ``PCG64.advance`` silently discards it — so it is re-attached
    after advancing, keeping a fork's integer stream bit-identical to the
    source generator reaching the same counter by consuming doubles.
    """
    bitgen = rng.bit_generator
    if not isinstance(bitgen, np.random.PCG64):
        raise TrafficError(
            "chunked generation requires a PCG64-backed generator (numpy's "
            f"default_rng), got {type(bitgen).__name__}"
        )
    state = bitgen.state
    clone = np.random.PCG64()
    clone.state = state
    if offset:
        clone.advance(offset)
        advanced = clone.state
        advanced["has_uint32"] = state["has_uint32"]
        advanced["uinteger"] = state["uinteger"]
        clone.state = advanced
    return np.random.Generator(clone)


class TraceStream:
    """A lazy stream of :class:`Trace` segments over one rack set.

    Parameters
    ----------
    segments:
        Either an iterable of ``Trace`` segments or a zero-argument callable
        returning a fresh segment iterator (making the stream re-iterable).
        Segment offsets are (re)assigned by the stream: the first segment
        starts at global index 0, each subsequent one where the previous
        ended.
    metadata:
        The shared trace metadata (name, rack count, seed, params).
    n_requests:
        Declared total length, or ``None`` to discover it at exhaustion.
    chunk_size:
        Advisory segment size the stream was built with (introspection only).
    """

    def __init__(
        self,
        segments: SegmentSource,
        metadata: TraceMetadata,
        n_requests: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ):
        if n_requests is not None and n_requests < 0:
            raise TrafficError(f"n_requests must be non-negative, got {n_requests}")
        if callable(segments):
            self._factory: Optional[Callable[[], Iterator[Trace]]] = segments
            self._iterable: Optional[Iterable[Trace]] = None
        else:
            self._factory = None
            self._iterable = segments
        self._consumed = False
        self.metadata = metadata
        self.n_requests = None if n_requests is None else int(n_requests)
        self.chunk_size = chunk_size

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_trace(cls, trace: Trace, chunk_size: int = DEFAULT_CHUNK_SIZE) -> "TraceStream":
        """Slice a materialized trace into a (re-iterable) chunk stream."""
        chunk_size = validate_chunk_size(chunk_size)

        def factory() -> Iterator[Trace]:
            for start in range(0, len(trace), chunk_size):
                yield trace[start : start + chunk_size]
            if len(trace) == 0:
                return

        return cls(factory, trace.metadata, n_requests=len(trace), chunk_size=chunk_size)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Workload name from the metadata."""
        return self.metadata.name

    @property
    def n_nodes(self) -> int:
        """Number of racks addressed by the stream."""
        return self.metadata.n_nodes

    # ------------------------------------------------------------------ #
    # Iteration
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[Trace]:
        if self._factory is not None:
            source = self._factory()
        else:
            if self._consumed:
                raise TrafficError(
                    f"stream {self.name!r} was built from a plain iterable and "
                    "has already been consumed (construct it from a factory "
                    "callable to make it re-iterable)"
                )
            self._consumed = True
            source = iter(self._iterable)  # type: ignore[arg-type]
        position = 0
        for segment in source:
            if not isinstance(segment, Trace):
                raise TrafficError(
                    f"stream {self.name!r} produced a {type(segment).__name__}, "
                    "expected a Trace segment"
                )
            if segment.n_nodes != self.n_nodes:
                raise TrafficError(
                    f"stream {self.name!r} produced a segment over "
                    f"{segment.n_nodes} racks, expected {self.n_nodes}"
                )
            if len(segment) == 0:
                continue
            yield segment.with_offset(position)
            position += len(segment)
        if self.n_requests is not None and position != self.n_requests:
            raise TrafficError(
                f"stream {self.name!r} declared {self.n_requests} requests "
                f"but produced {position}"
            )

    def materialize(self) -> Trace:
        """Concatenate every segment into one materialized :class:`Trace`.

        Convenience for offline algorithms and tests; defeats the memory
        bound by definition.
        """
        sources: List[np.ndarray] = []
        destinations: List[np.ndarray] = []
        for segment in self:
            sources.append(segment.sources)
            destinations.append(segment.destinations)
        if not sources:
            sources = [np.zeros(0, dtype=np.int32)]
            destinations = [np.zeros(0, dtype=np.int32)]
        return Trace(
            np.concatenate(sources), np.concatenate(destinations), self.metadata
        )

    # ------------------------------------------------------------------ #
    # Fan-out
    # ------------------------------------------------------------------ #
    def tee(self, n: int, max_lookahead: int = 4) -> List["TraceStream"]:
        """Split this stream into ``n`` consumers with bounded buffering.

        Each returned stream yields exactly the segments of the source, in
        order.  Segments are pulled from the source on demand and buffered
        until every consumer has seen them; a consumer that runs more than
        ``max_lookahead`` segments ahead of the slowest raises
        :class:`TrafficError` instead of buffering without bound.  Lockstep
        consumption (round-robin over the children, as the runner's shared
        stream fan-out does) keeps at most one segment buffered.
        """
        if n < 1:
            raise TrafficError(f"tee needs n >= 1 consumers, got {n}")
        if max_lookahead < 1:
            raise TrafficError(f"max_lookahead must be >= 1, got {max_lookahead}")
        source = iter(self)
        buffers: List[Deque[Trace]] = [deque() for _ in range(n)]
        exhausted = [False]

        def pull(me: int) -> None:
            if exhausted[0]:
                return
            if max(len(b) for b in buffers) >= max_lookahead:
                raise TrafficError(
                    f"tee consumer {me} ran more than {max_lookahead} segments "
                    "ahead of the slowest consumer; consume the children in "
                    "lockstep or raise max_lookahead"
                )
            try:
                segment = next(source)
            except StopIteration:
                exhausted[0] = True
                return
            for buffer in buffers:
                buffer.append(segment)

        def child(i: int) -> Iterator[Trace]:
            while True:
                if not buffers[i]:
                    pull(i)
                    if not buffers[i]:
                        return
                yield buffers[i].popleft()

        return [
            TraceStream(
                child(i), self.metadata,
                n_requests=self.n_requests, chunk_size=self.chunk_size,
            )
            for i in range(n)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        length = "?" if self.n_requests is None else f"{self.n_requests}"
        return f"<TraceStream {self.name!r} requests={length} nodes={self.n_nodes}>"


def chunk_bounds(n_requests: int, chunk_size: int) -> Iterator[tuple[int, int]]:
    """Yield ``(start, stop)`` index pairs covering ``n_requests`` in chunks."""
    for start in range(0, n_requests, chunk_size):
        yield start, min(start + chunk_size, n_requests)


def validate_chunk_size(chunk_size: Optional[int]) -> int:
    """Normalise a chunk-size argument (``None`` means the default)."""
    if chunk_size is None:
        return DEFAULT_CHUNK_SIZE
    size = int(chunk_size)
    if size != chunk_size or size < 1:
        raise TrafficError(f"chunk_size must be a positive integer, got {chunk_size!r}")
    return size
