"""Observer protocol for the simulation engine.

:func:`repro.simulation.engine.run_simulation` accepts any number of
observers and notifies them at four points:

``on_start(context)``
    Once, before the first request is served.
``on_request_batch(context, start, stop)``
    After serving requests ``start .. stop-1`` (0-based trace indices).  By
    default batches span the gap between two checkpoints; an observer that
    needs finer granularity sets :attr:`SimulationObserver.batch_interval`
    (``1`` means after every request).
``on_checkpoint(context, event)``
    At each recorded checkpoint, with the cumulative metrics so far.
``on_end(context, result)``
    Once, with the finished :class:`~repro.simulation.results.RunResult`.

Progress reporting, live invariant validation and cost tracing — previously
hard-coded engine flags — are the bundled observers below; anything else can
be plugged in without touching the engine.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional, TextIO

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..config import SimulationConfig
    from ..core.base import OnlineBMatchingAlgorithm
    from ..simulation.results import RunResult
    from ..traffic.base import Trace

__all__ = [
    "RunContext",
    "CheckpointEvent",
    "SimulationObserver",
    "ObserverList",
    "ProgressObserver",
    "ValidationObserver",
    "CostTraceObserver",
]


@dataclass(frozen=True)
class RunContext:
    """What the engine is running: passed to every observer hook.

    ``trace`` is the materialized :class:`~repro.traffic.base.Trace` or, on
    the streaming path, the :class:`~repro.traffic.stream.TraceStream` being
    consumed (both expose ``.name``/``.n_nodes``).  ``n_requests`` is ``None``
    while streaming a trace whose length is only discovered at exhaustion.
    """

    algorithm: "OnlineBMatchingAlgorithm"
    trace: Any
    config: "SimulationConfig"
    n_requests: Optional[int]


@dataclass(frozen=True)
class CheckpointEvent:
    """Cumulative metrics at one recorded checkpoint."""

    index: int
    requests_served: int
    routing_cost: float
    reconfiguration_cost: float
    elapsed_seconds: float
    matched_fraction: float

    @property
    def total_cost(self) -> float:
        """Routing plus reconfiguration cost so far."""
        return self.routing_cost + self.reconfiguration_cost


class SimulationObserver:
    """Base class (and protocol) for engine observers.

    Subclasses override any subset of the hooks; all default to no-ops, so an
    observer only pays for what it watches.
    """

    #: Maximum number of requests per ``on_request_batch`` notification; the
    #: engine also flushes a batch at every checkpoint.  ``None`` means
    #: checkpoint-sized batches are fine.
    batch_interval: Optional[int] = None

    def on_start(self, context: RunContext) -> None:
        """Called once before the first request is served."""

    def on_request_batch(self, context: RunContext, start: int, stop: int) -> None:
        """Called after requests ``start .. stop-1`` have been served."""

    def on_checkpoint(self, context: RunContext, event: CheckpointEvent) -> None:
        """Called at each recorded checkpoint."""

    def on_end(self, context: RunContext, result: "RunResult") -> None:
        """Called once with the finished result."""


class ObserverList(SimulationObserver):
    """Fans every hook out to a list of observers (used by the engine)."""

    def __init__(self, observers: Iterable[SimulationObserver] = ()):
        self.observers: List[SimulationObserver] = list(observers)
        for obs in self.observers:
            if not isinstance(obs, SimulationObserver):
                raise SimulationError(
                    f"observers must derive from SimulationObserver, got {type(obs).__name__}"
                )

    def __bool__(self) -> bool:
        return bool(self.observers)

    @property
    def batch_interval(self) -> Optional[int]:  # type: ignore[override]
        intervals = [o.batch_interval for o in self.observers if o.batch_interval is not None]
        return min(intervals) if intervals else None

    def on_start(self, context: RunContext) -> None:
        for obs in self.observers:
            obs.on_start(context)

    def on_request_batch(self, context: RunContext, start: int, stop: int) -> None:
        for obs in self.observers:
            obs.on_request_batch(context, start, stop)

    def on_checkpoint(self, context: RunContext, event: CheckpointEvent) -> None:
        for obs in self.observers:
            obs.on_checkpoint(context, event)

    def on_end(self, context: RunContext, result: "RunResult") -> None:
        for obs in self.observers:
            obs.on_end(context, result)


class ProgressObserver(SimulationObserver):
    """Prints a one-line progress update at every checkpoint.

    Replaces ad-hoc ``print`` sprinkling in scripts; the CLI's ``--progress``
    flag attaches one of these.
    """

    def __init__(self, stream: Optional[TextIO] = None, label: Optional[str] = None):
        self.stream = stream if stream is not None else sys.stderr
        self.label = label
        self._started_at = 0.0

    def on_start(self, context: RunContext) -> None:
        self._started_at = time.perf_counter()
        label = self.label or f"{context.algorithm.name} on {context.trace.name}"
        total = "?" if context.n_requests is None else f"{context.n_requests:,}"
        print(f"[repro] {label}: {total} requests", file=self.stream)

    def on_checkpoint(self, context: RunContext, event: CheckpointEvent) -> None:
        if context.n_requests is None:
            progress = "     ?%"
        else:
            pct = 100.0 * event.requests_served / max(1, context.n_requests)
            progress = f"{pct:5.1f}%"
        wall = time.perf_counter() - self._started_at
        print(
            f"[repro]   {event.requests_served:>9,} ({progress.strip():>6})  "
            f"routing={event.routing_cost:,.0f}  reconf={event.reconfiguration_cost:,.0f}  "
            f"wall={wall:.1f}s",
            file=self.stream,
        )

    def on_end(self, context: RunContext, result: "RunResult") -> None:
        wall = time.perf_counter() - self._started_at
        print(
            f"[repro] done: total_cost={result.total_cost:,.0f} in {wall:.1f}s",
            file=self.stream,
        )


class ValidationObserver(SimulationObserver):
    """Checks the b-matching invariants as the simulation runs.

    With ``every_request=True`` (the default, equivalent to the engine's old
    ``validate=True`` flag) the degree bounds are checked after every single
    request; otherwise only at checkpoints.
    """

    def __init__(self, every_request: bool = True):
        self.every_request = every_request
        self.batch_interval = 1 if every_request else None
        self.checks = 0

    def _check(self, context: RunContext) -> None:
        from ..matching.validation import check_b_matching

        algorithm = context.algorithm
        check_b_matching(
            algorithm.matching.edges, algorithm.topology.n_racks, algorithm.config.b
        )
        self.checks += 1

    def on_request_batch(self, context: RunContext, start: int, stop: int) -> None:
        if self.every_request:
            self._check(context)

    def on_checkpoint(self, context: RunContext, event: CheckpointEvent) -> None:
        if not self.every_request:
            self._check(context)


class CostTraceObserver(SimulationObserver):
    """Records every checkpoint event (and optionally calls back on each).

    Useful for live dashboards or cost-anomaly detection during long sweeps;
    after the run, :attr:`events` holds the full checkpoint history.
    """

    def __init__(self, callback: Optional[Callable[[CheckpointEvent], Any]] = None):
        self.callback = callback
        self.events: List[CheckpointEvent] = []
        self.result: Optional["RunResult"] = None

    def on_checkpoint(self, context: RunContext, event: CheckpointEvent) -> None:
        self.events.append(event)
        if self.callback is not None:
            self.callback(event)

    def on_end(self, context: RunContext, result: "RunResult") -> None:
        self.result = result
