"""Declarative experiment descriptions and the machinery around them.

This subpackage is the package's configuration layer:

* :class:`~repro.experiments.registry.Registry` — the one generic
  name → factory registry behind algorithms, topologies, workloads and
  paging policies.
* :class:`~repro.experiments.specs.ExperimentSpec` (with
  :class:`~repro.experiments.specs.TopologySpec`,
  :class:`~repro.experiments.specs.TrafficSpec`,
  :class:`~repro.experiments.specs.AlgorithmSpec`) — a run described purely
  as data: JSON round-trippable, eagerly validated against the registries,
  and expandable into cartesian sweep grids.
* :class:`~repro.experiments.observers.SimulationObserver` — the engine's
  hook protocol (``on_start`` / ``on_request_batch`` / ``on_checkpoint`` /
  ``on_end``) that makes progress reporting, live validation and cost
  tracing pluggable.

Only :mod:`~repro.experiments.registry` is imported eagerly; everything else
loads on first attribute access so the domain subpackages (which create their
registries at import time) can import :class:`Registry` without cycles.
"""

from __future__ import annotations

from .registry import Registry

_LAZY = {
    # specs
    "AlgorithmSpec": "specs",
    "ExperimentSpec": "specs",
    "TopologySpec": "specs",
    "TrafficSpec": "specs",
    "canonical_data": "specs",
    "expand_grid": "specs",
    "spawn_seeds": "specs",
    # observers
    "SimulationObserver": "observers",
    "ObserverList": "observers",
    "RunContext": "observers",
    "CheckpointEvent": "observers",
    "ProgressObserver": "observers",
    "ValidationObserver": "observers",
    "CostTraceObserver": "observers",
}

__all__ = ["Registry", *sorted(_LAZY)]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    module = import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
