"""A single generic name → factory registry.

Four copies of the same registry pattern used to live in
:mod:`repro.core.registry`, :mod:`repro.topology.registry`,
:mod:`repro.traffic.registry` and :mod:`repro.paging.registry`.  They are now
all instances of :class:`Registry`, which adds the ergonomics the duplicated
modules lacked: alias tracking, decorator registration, overwrite control,
and — most visibly — "did you mean ...?" suggestions (via
:func:`difflib.get_close_matches`) when a name is misspelled.

The class is deliberately dependency-free (only :mod:`repro.errors`) so any
subpackage can instantiate it without import cycles.
"""

from __future__ import annotations

import difflib
from typing import Callable, Dict, Generic, Iterator, List, Optional, TypeVar

from ..errors import ConfigurationError

__all__ = ["Registry"]

T = TypeVar("T")


class Registry(Generic[T]):
    """A case-insensitive mapping from names to factories of ``T``.

    Parameters
    ----------
    kind:
        Human-readable noun used in error messages (``"algorithm"``,
        ``"topology"``, ...).

    Examples
    --------
    >>> from repro.errors import ConfigurationError
    >>> registry = Registry("widget")
    >>> registry.register("gadget", dict)
    >>> registry.build("gadget", colour="red")
    {'colour': 'red'}
    >>> try:
    ...     registry.resolve("gadet")
    ... except ConfigurationError as exc:
    ...     "did you mean" in str(exc)
    True
    """

    def __init__(self, kind: str):
        self.kind = kind
        self._factories: Dict[str, Callable[..., T]] = {}
        self._canonical: Dict[str, str] = {}  # name -> canonical name

    # -- registration ---------------------------------------------------

    def register(
        self,
        name: str,
        factory: Optional[Callable[..., T]] = None,
        *,
        aliases: tuple[str, ...] = (),
        overwrite: bool = False,
    ):
        """Register ``factory`` under ``name`` (lower-cased) and ``aliases``.

        Can be used directly (``registry.register("x", make_x)``) or as a
        decorator (``@registry.register("x")``).  Re-registering a taken name
        raises :class:`~repro.errors.ConfigurationError` unless
        ``overwrite=True``.
        """
        if factory is None:

            def _decorator(fn: Callable[..., T]) -> Callable[..., T]:
                self.register(name, fn, aliases=aliases, overwrite=overwrite)
                return fn

            return _decorator

        canonical = name.lower()
        keys = (canonical, *[alias.lower() for alias in aliases])
        if not overwrite:
            # Check every key up front so a conflict never leaves a partial
            # registration behind.
            for key in keys:
                if key in self._factories:
                    raise ConfigurationError(f"{self.kind} {key!r} is already registered")
        for key in keys:
            self._factories[key] = factory
            self._canonical[key] = canonical
        return factory

    def unregister(self, name: str) -> None:
        """Remove ``name`` (and nothing else — aliases stay registered)."""
        key = name.lower()
        if key not in self._factories:
            raise ConfigurationError(f"{self.kind} {key!r} is not registered")
        del self._factories[key]
        del self._canonical[key]

    # -- lookup ---------------------------------------------------------

    def resolve(self, name: str) -> Callable[..., T]:
        """The factory registered under ``name``, or a helpful error.

        Unknown names raise :class:`~repro.errors.ConfigurationError` listing
        the close matches first (``did you mean 'fat-tree'?``) and the full
        inventory after.
        """
        key = name.lower() if isinstance(name, str) else name
        try:
            return self._factories[key]
        except (KeyError, TypeError):
            raise ConfigurationError(self._unknown_message(name)) from None

    def build(self, name: str, *args, **kwargs) -> T:
        """Resolve ``name`` and call the factory with the given arguments."""
        return self.resolve(name)(*args, **kwargs)

    def suggest(self, name: str, n: int = 3) -> List[str]:
        """Registered names most similar to ``name`` (possibly empty)."""
        if not isinstance(name, str):
            return []
        return difflib.get_close_matches(name.lower(), sorted(self._factories), n=n)

    def canonical(self, name: str) -> str:
        """The canonical (non-alias) spelling for ``name``."""
        key = name.lower() if isinstance(name, str) else name
        if key not in self._canonical:
            raise ConfigurationError(self._unknown_message(name))
        return self._canonical[key]

    def names(self) -> List[str]:
        """All registered names (canonical and aliases), sorted."""
        return sorted(self._factories)

    def _unknown_message(self, name: object) -> str:
        message = f"unknown {self.kind} {name!r}"
        close = self.suggest(name)  # type: ignore[arg-type]
        if close:
            message += "; did you mean " + " or ".join(repr(c) for c in close) + "?"
        message += f" (available: {', '.join(self.names())})"
        return message

    # -- container protocol ---------------------------------------------

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name.lower() in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._factories)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, {len(self)} entries)"
