"""Experiments as data: the :class:`ExperimentSpec` tree.

An :class:`ExperimentSpec` fully describes one experiment — topology, traffic,
algorithm, simulation parameters, and the repeat/seed policy — using only
names and plain values.  Specs therefore

* validate eagerly against the registries (an unknown algorithm name fails at
  construction, with a "did you mean ...?" hint, not deep inside a sweep);
* round-trip losslessly through ``to_dict`` / ``from_dict`` and JSON, so an
  experiment can live in a file, travel to a worker process, or be replayed
  from a saved :class:`~repro.simulation.results.RunResult`;
* build live objects on demand (``build_trace`` / ``build_topology`` /
  ``build_algorithm``);
* expand into cartesian sweep grids via :func:`expand_grid`.

Seeding follows NumPy's recommended practice: the spec's base ``seed`` is fed
to :class:`numpy.random.SeedSequence`, repetitions use *spawned* children
(:func:`spawn_seeds`) rather than hand-incremented offsets, and each
repetition spawns one sub-seed for trace generation and one for algorithm
randomness so the two streams stay decoupled but reproducible.
"""

from __future__ import annotations

import itertools
import json
from collections import OrderedDict
from dataclasses import dataclass, field, fields, is_dataclass, replace
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..config import MatchingConfig, SimulationConfig
from ..errors import ConfigurationError

__all__ = [
    "TopologySpec",
    "TrafficSpec",
    "AlgorithmSpec",
    "ExperimentSpec",
    "canonical_data",
    "expand_grid",
    "spawn_seeds",
]

PathLike = Union[str, Path]

#: Topologies whose constructors are not sized by ``n_racks`` (so the
#: trace-derived default must not be injected).
_SELF_SIZED_TOPOLOGIES = frozenset({"torus", "hypercube"})


# The registries live in the domain subpackages, which import
# ``repro.experiments.registry`` at import time; resolving them lazily here
# keeps the dependency one-directional at import time.
def _algorithm_registry():
    from ..core.registry import ALGORITHMS

    return ALGORITHMS


def _topology_registry():
    from ..topology.registry import TOPOLOGIES

    return TOPOLOGIES


def _workload_registry():
    from ..traffic.registry import WORKLOADS

    return WORKLOADS


def spawn_seeds(base_seed: int, n: int) -> List[int]:
    """``n`` distinct, deterministic child seeds derived from ``base_seed``.

    Uses :meth:`numpy.random.SeedSequence.spawn`, which guarantees
    statistically independent streams — unlike ``base_seed + 1000 * i``
    style arithmetic, which can collide across configurations.

    Examples
    --------
    >>> spawn_seeds(0, 3) == spawn_seeds(0, 3)
    True
    >>> len(set(spawn_seeds(0, 100)))
    100
    """
    if n < 1:
        raise ConfigurationError(f"cannot spawn {n} seeds; need n >= 1")
    root = np.random.SeedSequence(base_seed)
    return [int(child.generate_state(1)[0]) for child in root.spawn(n)]


def canonical_data(value: Any, _path: str = "spec") -> Any:
    """Reduce plain spec data to a canonical JSON-stable form.

    Two spec dicts that describe the same experiment must canonicalise to
    the same value, regardless of how they were produced:

    * mappings become dicts with **sorted** string keys (insertion order is
      an accident of construction, not part of the experiment);
    * tuples become lists (JSON has only arrays);
    * **integral floats become ints** (JSON round-trips may deliver ``10``
      as ``10.0``; ``alpha=15`` and ``alpha=15.0`` are the same experiment);
    * numpy scalars become their Python equivalents (a stray
      ``np.float64`` must not change the serialised text);
    * non-finite floats and non-JSON types are rejected eagerly with the
      offending path, instead of failing later inside ``json.dumps`` or —
      worse — fingerprinting as ``NaN != NaN``.

    This is the normal form behind :meth:`ExperimentSpec.canonical_dict`
    and the run-store fingerprint (:func:`repro.store.fingerprint_spec`).
    """
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        if not np.isfinite(value):
            raise ConfigurationError(
                f"non-finite value {value!r} at {_path} cannot be canonicalised"
            )
        if value.is_integer():
            return int(value)
        return value
    if isinstance(value, Mapping):
        for key in value:
            if not isinstance(key, str):
                raise ConfigurationError(
                    f"non-string key {key!r} at {_path} cannot be canonicalised"
                )
        return {
            key: canonical_data(value[key], f"{_path}.{key}") for key in sorted(value)
        }
    if isinstance(value, (list, tuple)):
        return [
            canonical_data(item, f"{_path}[{i}]") for i, item in enumerate(value)
        ]
    raise ConfigurationError(
        f"value of type {type(value).__name__} at {_path} is not JSON-stable "
        "(use plain ints, floats, strings, lists, and dicts in spec params)"
    )


def _check_keys(data: Mapping[str, Any], allowed: frozenset, what: str) -> None:
    unknown = set(data) - set(allowed)
    if unknown:
        raise ConfigurationError(
            f"unknown {what} keys: {', '.join(sorted(unknown))} "
            f"(allowed: {', '.join(sorted(allowed))})"
        )


#: LRU cache of built topologies keyed by (name, sorted constructor kwargs).
#: Topologies are immutable by convention and their distance matrices are the
#: expensive part (a vectorised BFS per construction); sweeps and figure
#: panels re-request the same topology for every algorithm/backend
#: combination, so the matrix is computed once and shared.  Bounded so that
#: long-lived processes sweeping many distinct sizes cannot accumulate dense
#: O(n^2) matrices forever.
_TOPOLOGY_CACHE: "OrderedDict[tuple, Any]" = OrderedDict()
_TOPOLOGY_CACHE_MAX = 32


@dataclass(frozen=True)
class TopologySpec:
    """The fixed network, by registered name plus constructor parameters."""

    name: str = "fat-tree"
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", dict(self.params))

    def validate(self) -> "TopologySpec":
        """Resolve the name against the topology registry (raises early)."""
        _topology_registry().resolve(self.name)
        return self

    def build(self, default_n_racks: Optional[int] = None):
        """Construct the topology; rack-sized families default to the trace size.

        Built topologies (and thus their cached distance matrices) are shared
        across calls with identical name and parameters; callers must treat
        them as read-only, which every algorithm in :mod:`repro.core` does.
        """
        kwargs = dict(self.params)
        if (
            default_n_racks is not None
            and "n_racks" not in kwargs
            and self.name.lower() not in _SELF_SIZED_TOPOLOGIES
        ):
            kwargs["n_racks"] = default_n_racks
        cache_key = (self.name.lower(), tuple(sorted(kwargs.items())))
        try:
            topology = _TOPOLOGY_CACHE.get(cache_key)
        except TypeError:  # unhashable constructor params: build uncached
            return _topology_registry().build(self.name, **kwargs)
        if topology is None:
            topology = _topology_registry().build(self.name, **kwargs)
            _TOPOLOGY_CACHE[cache_key] = topology
        else:
            _TOPOLOGY_CACHE.move_to_end(cache_key)
        while len(_TOPOLOGY_CACHE) > _TOPOLOGY_CACHE_MAX:
            _TOPOLOGY_CACHE.popitem(last=False)
        return topology

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Union[str, Mapping[str, Any]]) -> "TopologySpec":
        if isinstance(data, str):
            return cls(name=data)
        _check_keys(data, frozenset({"name", "params"}), "TopologySpec")
        return cls(name=data.get("name", "fat-tree"), params=dict(data.get("params", {})))


@dataclass(frozen=True)
class TrafficSpec:
    """The workload, by registered name plus generator parameters.

    ``streaming`` asks executors to replay the workload as a lazy
    :class:`~repro.traffic.stream.TraceStream` of ``chunk_size``-request
    segments instead of materializing it.  Streaming is an *execution* knob,
    not part of the experiment identity: results are bit-identical either
    way, so the canonical form (and thus the run-store fingerprint) excludes
    both fields.
    """

    name: str
    params: Mapping[str, Any] = field(default_factory=dict)
    streaming: bool = False
    chunk_size: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", dict(self.params))
        if self.chunk_size is not None:
            size = int(self.chunk_size)
            if size != self.chunk_size or size < 1:
                raise ConfigurationError(
                    f"chunk_size must be a positive integer, got {self.chunk_size!r}"
                )
            object.__setattr__(self, "chunk_size", size)

    def validate(self) -> "TrafficSpec":
        """Resolve the name against the workload registry (raises early)."""
        _workload_registry().resolve(self.name)
        return self

    def build(self, seed: Optional[int] = None):
        """Generate the trace; ``seed`` fills in unless ``params`` pins one."""
        kwargs = dict(self.params)
        kwargs.setdefault("seed", seed)
        return _workload_registry().build(self.name, **kwargs)

    def build_stream(self, seed: Optional[int] = None):
        """The workload as a lazy :class:`~repro.traffic.stream.TraceStream`.

        Bit-identical to :meth:`build` with the same seed, for any chunk
        size; workloads without a chunked generator are materialized once
        and sliced.
        """
        from ..traffic.registry import make_workload_stream

        kwargs = dict(self.params)
        kwargs.setdefault("seed", seed)
        return make_workload_stream(self.name, chunk_size=self.chunk_size, **kwargs)

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"name": self.name, "params": dict(self.params)}
        # Emitted only when non-default so pre-streaming spec JSON (and the
        # specs' round-trip tests) are byte-for-byte unchanged.
        if self.streaming:
            data["streaming"] = True
        if self.chunk_size is not None:
            data["chunk_size"] = self.chunk_size
        return data

    @classmethod
    def from_dict(cls, data: Union[str, Mapping[str, Any]]) -> "TrafficSpec":
        if isinstance(data, str):
            return cls(name=data)
        _check_keys(
            data, frozenset({"name", "params", "streaming", "chunk_size"}), "TrafficSpec"
        )
        if "name" not in data:
            raise ConfigurationError("TrafficSpec requires a workload 'name'")
        return cls(
            name=data["name"],
            params=dict(data.get("params", {})),
            streaming=bool(data.get("streaming", False)),
            chunk_size=data.get("chunk_size"),
        )


@dataclass(frozen=True)
class AlgorithmSpec:
    """The online algorithm, by registered name plus matching parameters.

    ``solver_backend`` selects the static blossom kernel for algorithms that
    run an offline solve (SO-BMA); ``None`` means the library default.  It
    round-trips through spec JSON and is validated against
    :data:`repro.matching.SOLVER_BACKENDS` (typos get suggestions).

    ``rng_mode`` pins how randomized algorithms draw (``"counter"`` /
    ``"stateful"``); ``None`` means the library default.  It is validated
    against :data:`repro.core.rng.RNG_MODES` and emitted into spec JSON only
    when pinned, so pre-existing spec files (and the fingerprints of
    deterministic algorithms) are unchanged.
    """

    name: str
    b: int = 12
    alpha: float = 1.0
    a: Optional[int] = None
    solver_backend: Optional[str] = None
    rng_mode: Optional[str] = None
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", dict(self.params))

    def matching_config(self) -> MatchingConfig:
        """The (validating) :class:`~repro.config.MatchingConfig` this spec encodes."""
        return MatchingConfig(
            b=self.b,
            alpha=self.alpha,
            a=self.a,
            solver_backend=self.solver_backend,
            rng_mode=self.rng_mode,
        )

    def validate(self) -> "AlgorithmSpec":
        """Resolve the name and validate the matching parameters (raises early)."""
        _algorithm_registry().resolve(self.name)
        self.matching_config()
        return self

    def build(self, topology, rng: Optional[Union[int, np.random.Generator]] = None):
        """Instantiate the algorithm on ``topology``."""
        return _algorithm_registry().build(
            self.name, topology, self.matching_config(), rng, **dict(self.params)
        )

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "name": self.name,
            "b": self.b,
            "alpha": self.alpha,
            "a": self.a,
            "solver_backend": self.solver_backend,
            "params": dict(self.params),
        }
        # Emitted only when pinned (mirroring TrafficSpec.streaming) so
        # existing spec JSON stays byte-for-byte unchanged and deterministic
        # algorithms keep their pre-rng_mode fingerprints.
        if self.rng_mode is not None:
            data["rng_mode"] = self.rng_mode
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AlgorithmSpec":
        _check_keys(
            data,
            frozenset({"name", "b", "alpha", "a", "solver_backend", "rng_mode", "params"}),
            "AlgorithmSpec",
        )
        if "name" not in data:
            raise ConfigurationError("AlgorithmSpec requires an algorithm 'name'")
        return cls(
            name=data["name"],
            b=int(data.get("b", 12)),
            alpha=float(data.get("alpha", 1.0)),
            a=None if data.get("a") is None else int(data["a"]),
            solver_backend=data.get("solver_backend"),
            rng_mode=data.get("rng_mode"),
            params=dict(data.get("params", {})),
        )


@dataclass(frozen=True)
class ExperimentSpec:
    """A complete experiment as plain data.

    Attributes
    ----------
    algorithm, traffic, topology:
        The sub-specs (plain dicts and name strings are coerced).
    simulation:
        Engine parameters (checkpoints, matching-history collection).
    repeats:
        Number of independent repetitions; seeds are spawned from ``seed``.
    seed:
        Base seed of the whole experiment.  ``None`` means fresh entropy
        (irreproducible) — allowed but discouraged.
    name:
        Optional human label, used as the result label when set.

    Examples
    --------
    >>> spec = ExperimentSpec(
    ...     algorithm={"name": "rbma", "b": 2, "alpha": 4},
    ...     traffic={"name": "zipf", "params": {"n_nodes": 8, "n_requests": 50}},
    ... )
    >>> ExperimentSpec.from_dict(spec.to_dict()) == spec
    True
    """

    algorithm: AlgorithmSpec
    traffic: TrafficSpec
    topology: TopologySpec = field(default_factory=TopologySpec)
    simulation: SimulationConfig = field(default_factory=SimulationConfig)
    repeats: int = 1
    seed: Optional[int] = 0
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if isinstance(self.algorithm, Mapping):
            object.__setattr__(self, "algorithm", AlgorithmSpec.from_dict(self.algorithm))
        elif isinstance(self.algorithm, str):
            object.__setattr__(self, "algorithm", AlgorithmSpec(name=self.algorithm))
        if isinstance(self.traffic, (Mapping, str)):
            object.__setattr__(self, "traffic", TrafficSpec.from_dict(self.traffic))
        if isinstance(self.topology, (Mapping, str)):
            object.__setattr__(self, "topology", TopologySpec.from_dict(self.topology))
        if isinstance(self.simulation, Mapping):
            object.__setattr__(self, "simulation", SimulationConfig.from_dict(self.simulation))
        if self.simulation.repetitions != 1 or self.simulation.seed is not None:
            raise ConfigurationError(
                "the repeat/seed policy lives on the spec itself: set "
                "ExperimentSpec 'repeats' and 'seed', not "
                "SimulationConfig.repetitions/seed (which would be ignored)"
            )
        if self.repeats < 1:
            raise ConfigurationError(f"repeats must be >= 1, got {self.repeats}")

    # -- validation ------------------------------------------------------

    def validate(self) -> "ExperimentSpec":
        """Eagerly check every name and parameter against the registries."""
        self.algorithm.validate()
        self.traffic.validate()
        self.topology.validate()
        return self

    @property
    def label(self) -> str:
        """Human label: the explicit ``name``, else ``"<algorithm> (b: <b>)"``."""
        return self.name or f"{self.algorithm.name} (b: {self.algorithm.b})"

    # -- seeding ---------------------------------------------------------

    def repetition_seeds(self) -> List[Optional[int]]:
        """The per-repetition seeds (all ``None`` if ``seed`` is).

        A single repetition runs under the base seed itself, so
        :meth:`run` with ``repeats=1`` and :meth:`execute` produce the same
        result; multiple repetitions use distinct children spawned from the
        base seed via :class:`numpy.random.SeedSequence`.
        """
        if self.seed is None:
            return [None] * self.repeats
        if self.repeats == 1:
            return [self.seed]
        return spawn_seeds(self.seed, self.repeats)

    def run_seeds(self) -> Tuple[Optional[int], Optional[int]]:
        """The (trace, algorithm) seed pair for a single run of this spec."""
        if self.seed is None:
            return None, None
        trace_seed, algo_seed = spawn_seeds(self.seed, 2)
        return trace_seed, algo_seed

    def with_seed(self, seed: Optional[int], repeats: int = 1) -> "ExperimentSpec":
        """The same experiment re-seeded (used to expand repetitions)."""
        return replace(self, seed=seed, repeats=repeats)

    # -- building --------------------------------------------------------

    def build_trace(self, trace_seed: Optional[int] = None):
        """Generate this experiment's workload (seed defaults to the spawned one)."""
        if trace_seed is None and self.seed is not None:
            trace_seed = self.run_seeds()[0]
        return self.traffic.build(seed=trace_seed)

    def build_stream(self, trace_seed: Optional[int] = None):
        """This experiment's workload as a lazy trace stream (same seeding)."""
        if trace_seed is None and self.seed is not None:
            trace_seed = self.run_seeds()[0]
        return self.traffic.build_stream(seed=trace_seed)

    def with_streaming(
        self, streaming: bool = True, chunk_size: Optional[int] = None
    ) -> "ExperimentSpec":
        """The same experiment with the streaming execution knob flipped.

        Streaming does not change the result (replay is bit-identical) nor
        the run-store fingerprint — see :meth:`canonical_dict`.
        """
        return replace(
            self,
            traffic=replace(self.traffic, streaming=streaming, chunk_size=chunk_size),
        )

    def build_topology(self, trace):
        """Construct the topology, sized to the trace unless pinned."""
        return self.topology.build(default_n_racks=trace.n_nodes)

    def build_algorithm(self, topology, algo_seed: Optional[int] = None):
        """Instantiate the algorithm (seed defaults to the spawned one)."""
        if algo_seed is None and self.seed is not None:
            algo_seed = self.run_seeds()[1]
        return self.algorithm.build(topology, rng=algo_seed)

    # -- execution (delegates to repro.simulation) -----------------------

    def execute(self, trace=None, observers=(), validate: bool = False):
        """Run a single repetition; returns a :class:`~repro.simulation.results.RunResult`."""
        from ..simulation.runner import execute_experiment_spec

        return execute_experiment_spec(self, trace=trace, observers=observers, validate=validate)

    def run(self, n_workers: int = 1, observers=()):
        """Run all ``repeats`` repetitions and aggregate; returns an
        :class:`~repro.simulation.results.AggregateResult`."""
        from ..simulation.sweep import run_experiments

        return run_experiments([self], n_workers=n_workers, observers=observers)[0]

    # -- serialisation ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable representation (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "algorithm": self.algorithm.to_dict(),
            "traffic": self.traffic.to_dict(),
            "topology": self.topology.to_dict(),
            # repetitions/seed are spec-level policy, not engine parameters.
            "simulation": {
                "checkpoints": self.simulation.checkpoints,
                "matching_backend": self.simulation.matching_backend,
                "collect_matching_history": self.simulation.collect_matching_history,
                "checkpoint_positions": (
                    None
                    if self.simulation.checkpoint_positions is None
                    else list(self.simulation.checkpoint_positions)
                ),
            },
            "repeats": self.repeats,
            "seed": self.seed,
        }

    def canonical_dict(self) -> Dict[str, Any]:
        """The spec as canonical plain data (see :func:`canonical_data`).

        Unlike :meth:`to_dict` — which preserves construction order and
        float-ness for readable JSON files — the canonical form is a pure
        function of the experiment itself: keys are sorted at every level,
        integral floats are ints, and numpy scalars are unwrapped.  Two
        specs describing the same experiment (however their dicts were
        keyed or their numbers typed) canonicalise identically, which is
        what the run-store fingerprint hashes.

        The traffic ``streaming``/``chunk_size`` execution knobs are
        stripped: streamed replay is bit-identical to materialized replay,
        so both must hash to the same store cell.
        """
        data = self.to_dict()
        traffic = dict(data["traffic"])
        traffic.pop("streaming", None)
        traffic.pop("chunk_size", None)
        data["traffic"] = traffic
        return canonical_data(data)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], validate: bool = True) -> "ExperimentSpec":
        """Build a spec from its plain-dict form, validating eagerly by default."""
        _check_keys(
            data,
            frozenset(
                {"name", "algorithm", "traffic", "topology", "simulation", "repeats", "seed"}
            ),
            "ExperimentSpec",
        )
        for required in ("algorithm", "traffic"):
            if required not in data:
                raise ConfigurationError(f"ExperimentSpec requires {required!r}")
        simulation = data.get("simulation", {})
        if isinstance(simulation, Mapping):
            simulation = SimulationConfig.from_dict(simulation)
        spec = cls(
            algorithm=AlgorithmSpec.from_dict(data["algorithm"]),
            traffic=TrafficSpec.from_dict(data["traffic"]),
            topology=TopologySpec.from_dict(data.get("topology", {})),
            simulation=simulation,
            repeats=int(data.get("repeats", 1)),
            seed=None if data.get("seed") is None else int(data["seed"]),
            name=data.get("name"),
        )
        return spec.validate() if validate else spec

    def to_json(self, indent: int = 2) -> str:
        """The spec as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str, validate: bool = True) -> "ExperimentSpec":
        """Inverse of :meth:`to_json`."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"spec is not valid JSON: {exc}") from exc
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"spec JSON must be an object, got {type(data).__name__}"
            )
        return cls.from_dict(data, validate=validate)

    def save_json(self, path: PathLike) -> None:
        """Write the spec to a JSON file (loadable by ``repro run``)."""
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load_json(cls, path: PathLike, validate: bool = True) -> "ExperimentSpec":
        """Load a spec written by :meth:`save_json`."""
        return cls.from_json(Path(path).read_text(), validate=validate)

    # -- sweep expansion -------------------------------------------------

    def expand(self, grid: Mapping[str, Sequence[Any]]) -> List["ExperimentSpec"]:
        """Cartesian expansion over dotted spec fields (see :func:`expand_grid`)."""
        return expand_grid(self, grid)


def _assign(obj: Any, dotted: str, value: Any) -> Any:
    """Return a copy of ``obj`` with the dotted field replaced by ``value``."""
    head, _, rest = dotted.partition(".")
    if is_dataclass(obj) and not isinstance(obj, type):
        valid = {f.name for f in fields(obj)}
        if head not in valid:
            raise ConfigurationError(
                f"unknown spec field {head!r} in grid key {dotted!r} "
                f"(valid: {', '.join(sorted(valid))})"
            )
        if not rest:
            return replace(obj, **{head: value})
        return replace(obj, **{head: _assign(getattr(obj, head), rest, value)})
    if isinstance(obj, Mapping):
        updated = dict(obj)
        if not rest:
            updated[head] = value
        else:
            updated[head] = _assign(updated.get(head, {}), rest, value)
        return updated
    raise ConfigurationError(f"cannot descend into {type(obj).__name__} at {dotted!r}")


def expand_grid(
    base: ExperimentSpec, grid: Mapping[str, Sequence[Any]]
) -> List[ExperimentSpec]:
    """Expand ``base`` over the cartesian product of ``grid``.

    Keys are dotted paths into the spec tree (``"algorithm.b"``,
    ``"traffic.name"``, ``"topology.params.n_racks"``, ``"seed"``, ...); each
    maps to the sequence of values to sweep.  Later keys vary fastest, so
    ``{"algorithm.name": [...], "algorithm.b": [...]}`` reproduces the
    classic per-algorithm-then-per-b sweep order.  A custom ``name`` on the
    base spec is dropped from the expanded specs (their labels derive from
    the swept fields) unless the grid assigns ``"name"`` explicitly.

    Examples
    --------
    >>> base = ExperimentSpec(algorithm={"name": "rbma", "b": 2},
    ...                       traffic={"name": "zipf"})
    >>> specs = expand_grid(base, {"algorithm.b": [2, 4, 8]})
    >>> [s.algorithm.b for s in specs]
    [2, 4, 8]
    """
    if not grid:
        return [base]
    keys = list(grid)
    if "name" not in keys and base.name is not None:
        base = replace(base, name=None)
    for key, values in grid.items():
        if isinstance(values, (str, bytes)) or not isinstance(values, Sequence):
            raise ConfigurationError(
                f"grid values for {key!r} must be a sequence, got {type(values).__name__}"
            )
        if len(values) == 0:
            raise ConfigurationError(f"grid values for {key!r} must be non-empty")
    specs: List[ExperimentSpec] = []
    for combination in itertools.product(*(grid[key] for key in keys)):
        spec = base
        for key, value in zip(keys, combination):
            spec = _assign(spec, key, value)
        specs.append(spec.validate())
    return specs
