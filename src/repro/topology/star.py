"""Star topology.

A single hub connects all racks; every rack pair is two hops apart.  The star
is the graph used in the paper's lower-bound construction (Lemma 1): requests
to pairs ``{v0, vi}`` on a star emulate paging with bypassing.  For that
construction the *hub itself* is a rack, so pairs involving the hub have
length 1 — :class:`StarTopology` supports both variants through
``hub_is_rack``.
"""

from __future__ import annotations

import networkx as nx

from ..errors import TopologyError
from .base import Topology

__all__ = ["StarTopology"]


class StarTopology(Topology):
    """Star fixed network.

    Parameters
    ----------
    n_racks:
        Number of racks (excluding the hub unless ``hub_is_rack``).
    hub_is_rack:
        If true, the hub is rack 0 and the leaves are racks ``1..n_racks``;
        this is the lower-bound construction of Lemma 1 where the leaf-hub
        distance is 1.  If false (default), the hub is an internal switch
        and every rack pair has distance 2.
    """

    def __init__(self, n_racks: int, hub_is_rack: bool = False):
        if n_racks < 2:
            raise TopologyError(f"need at least 2 racks, got {n_racks}")
        g = nx.Graph()
        hub = "hub"
        leaves = [f"rack-{i}" for i in range(n_racks)]
        g.add_node(hub, layer="hub")
        g.add_nodes_from(leaves, layer="rack")
        for leaf in leaves:
            g.add_edge(hub, leaf)
        if hub_is_rack:
            racks = [hub] + leaves
            name = f"star(hub+leaves={n_racks})"
        else:
            racks = leaves
            name = f"star(racks={n_racks})"
        self._hub_is_rack = hub_is_rack
        super().__init__(g, racks, name=name)

    @property
    def hub_is_rack(self) -> bool:
        """Whether the hub participates as rack 0."""
        return self._hub_is_rack
