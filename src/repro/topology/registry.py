"""Name-based topology registry.

Experiment specs and the benchmark harness refer to topologies by name
(e.g. ``"fat-tree"``); the registry maps those names to constructors so
sweeps can be described declaratively.  It is an instance of the generic
:class:`repro.experiments.Registry`; the module-level functions are
back-compat shims over it.
"""

from __future__ import annotations

from typing import Any, Callable

from ..experiments.registry import Registry
from .base import Topology
from .expander import ExpanderTopology
from .fattree import FatTreeTopology
from .hypercube import HypercubeTopology
from .leafspine import LeafSpineTopology
from .ring import RingTopology
from .star import StarTopology
from .torus import TorusTopology

__all__ = ["TOPOLOGIES", "register_topology", "make_topology", "available_topologies"]

#: The topology registry — the single source of truth for topology names.
TOPOLOGIES: Registry[Topology] = Registry("topology")


def register_topology(name: str, factory: Callable[..., Topology]) -> None:
    """Register a topology constructor under ``name`` (lower-cased)."""
    TOPOLOGIES.register(name, factory)


def available_topologies() -> list[str]:
    """Names of all registered topologies, sorted."""
    return TOPOLOGIES.names()


def make_topology(name: str, **kwargs: Any) -> Topology:
    """Instantiate a registered topology by name.

    Examples
    --------
    >>> topo = make_topology("leaf-spine", n_racks=8)
    >>> topo.n_racks
    8
    """
    return TOPOLOGIES.build(name, **kwargs)


TOPOLOGIES.register("fat-tree", FatTreeTopology, aliases=("fattree",))
TOPOLOGIES.register("leaf-spine", LeafSpineTopology, aliases=("leafspine",))
TOPOLOGIES.register("star", StarTopology)
TOPOLOGIES.register("ring", RingTopology)
TOPOLOGIES.register("torus", TorusTopology)
TOPOLOGIES.register("hypercube", HypercubeTopology)
TOPOLOGIES.register("expander", ExpanderTopology)
