"""Name-based topology registry.

Experiment configuration files and the benchmark harness refer to topologies
by name (e.g. ``"fat-tree"``); the registry maps those names to constructors
so sweeps can be described declaratively.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from ..errors import ConfigurationError
from .base import Topology
from .expander import ExpanderTopology
from .fattree import FatTreeTopology
from .hypercube import HypercubeTopology
from .leafspine import LeafSpineTopology
from .ring import RingTopology
from .star import StarTopology
from .torus import TorusTopology

__all__ = ["register_topology", "make_topology", "available_topologies"]

_REGISTRY: Dict[str, Callable[..., Topology]] = {}


def register_topology(name: str, factory: Callable[..., Topology]) -> None:
    """Register a topology constructor under ``name`` (lower-cased)."""
    key = name.lower()
    if key in _REGISTRY:
        raise ConfigurationError(f"topology {name!r} is already registered")
    _REGISTRY[key] = factory


def available_topologies() -> list[str]:
    """Names of all registered topologies, sorted."""
    return sorted(_REGISTRY)


def make_topology(name: str, **kwargs: Any) -> Topology:
    """Instantiate a registered topology by name.

    Examples
    --------
    >>> topo = make_topology("leaf-spine", n_racks=8)
    >>> topo.n_racks
    8
    """
    key = name.lower()
    if key not in _REGISTRY:
        raise ConfigurationError(
            f"unknown topology {name!r}; available: {', '.join(available_topologies())}"
        )
    return _REGISTRY[key](**kwargs)


register_topology("fat-tree", FatTreeTopology)
register_topology("fattree", FatTreeTopology)
register_topology("leaf-spine", LeafSpineTopology)
register_topology("leafspine", LeafSpineTopology)
register_topology("star", StarTopology)
register_topology("ring", RingTopology)
register_topology("torus", TorusTopology)
register_topology("hypercube", HypercubeTopology)
register_topology("expander", ExpanderTopology)
