"""Hypercube topology.

Racks are the vertices of a ``d``-dimensional boolean hypercube (as in BCube /
MDCube-style server-centric designs referenced in the paper's related work).
Distances are Hamming distances, giving a moderate diameter ``d = log2(n)``.
"""

from __future__ import annotations

import networkx as nx

from ..errors import TopologyError
from .base import Topology

__all__ = ["HypercubeTopology"]


class HypercubeTopology(Topology):
    """``d``-dimensional hypercube with ``2**d`` racks."""

    def __init__(self, dimension: int):
        if dimension < 1:
            raise TopologyError(f"hypercube dimension must be >= 1, got {dimension}")
        if dimension > 16:
            raise TopologyError(f"hypercube dimension {dimension} is unreasonably large")
        g = nx.hypercube_graph(dimension)
        nodes = sorted(g.nodes())
        self._dimension = dimension
        super().__init__(g, nodes, name=f"hypercube(d={dimension})")

    @property
    def dimension(self) -> int:
        """Number of hypercube dimensions."""
        return self._dimension
