"""2-D torus topology.

Racks are arranged on a ``rows x cols`` grid with wrap-around links, as in
several HPC interconnects.  Distances are Manhattan distances with
wrap-around.  Included as an alternative fixed network for ablations on
distance heterogeneity.
"""

from __future__ import annotations

import networkx as nx

from ..errors import TopologyError
from .base import Topology

__all__ = ["TorusTopology"]


class TorusTopology(Topology):
    """2-D torus of ``rows * cols`` racks.

    Parameters
    ----------
    rows, cols:
        Grid dimensions; both must be at least 2 (otherwise wrap-around
        links would duplicate grid links).
    """

    def __init__(self, rows: int, cols: int):
        if rows < 2 or cols < 2:
            raise TopologyError(f"torus dimensions must be >= 2, got {rows}x{cols}")
        g = nx.Graph()
        nodes = [(r, c) for r in range(rows) for c in range(cols)]
        g.add_nodes_from(nodes)
        for r in range(rows):
            for c in range(cols):
                g.add_edge((r, c), ((r + 1) % rows, c))
                g.add_edge((r, c), (r, (c + 1) % cols))
        self._rows = rows
        self._cols = cols
        super().__init__(g, nodes, name=f"torus({rows}x{cols})")

    @property
    def rows(self) -> int:
        """Number of grid rows."""
        return self._rows

    @property
    def cols(self) -> int:
        """Number of grid columns."""
        return self._cols

    def coordinates(self, rack: int) -> tuple[int, int]:
        """Grid coordinates of a rack id."""
        return self.rack_nodes[rack]
