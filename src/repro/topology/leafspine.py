"""Two-tier leaf-spine (folded Clos) topology.

Every leaf (ToR) switch connects to every spine switch, so any two racks are
exactly two hops apart.  This is the simplest "typical" datacenter fabric and
a useful control: with a constant ``ℓ_e = 2`` the benefit of a matching edge
is the same for every pair, isolating the temporal-structure effects of the
online algorithms from distance heterogeneity.
"""

from __future__ import annotations

import networkx as nx

from ..errors import TopologyError
from .base import Topology

__all__ = ["LeafSpineTopology"]


class LeafSpineTopology(Topology):
    """Leaf-spine fixed network.

    Parameters
    ----------
    n_racks:
        Number of leaf (ToR) switches, i.e. traffic endpoints.
    n_spines:
        Number of spine switches (default 4).  The value does not change
        rack-to-rack distances (always 2) but is kept to model realistic
        fabric sizes in reports.
    """

    def __init__(self, n_racks: int, n_spines: int = 4):
        if n_racks < 2:
            raise TopologyError(f"need at least 2 racks, got {n_racks}")
        if n_spines < 1:
            raise TopologyError(f"need at least 1 spine switch, got {n_spines}")
        g = nx.Graph()
        leaves = [f"leaf-{i}" for i in range(n_racks)]
        spines = [f"spine-{j}" for j in range(n_spines)]
        g.add_nodes_from(leaves, layer="leaf")
        g.add_nodes_from(spines, layer="spine")
        for leaf in leaves:
            for spine in spines:
                g.add_edge(leaf, spine)
        self._n_spines = n_spines
        super().__init__(g, leaves, name=f"leaf-spine(racks={n_racks}, spines={n_spines})")

    @property
    def n_spines(self) -> int:
        """Number of spine switches."""
        return self._n_spines
