"""Topology abstraction and shared distance-matrix machinery.

A :class:`Topology` wraps a NetworkX graph of the fixed (non-reconfigurable)
network.  The graph may contain auxiliary switch nodes (aggregation, spine,
core); only *rack* nodes are endpoints of traffic.  Distances between racks
are computed once with a vectorised BFS (``scipy.sparse.csgraph``) and stored
in a dense numpy matrix so that per-request lookups are O(1).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

import networkx as nx
import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import shortest_path

from ..errors import TopologyError
from ..types import NodePair, canonical_pair

__all__ = ["Topology", "build_distance_matrix"]


def build_distance_matrix(
    graph: nx.Graph, rack_nodes: Sequence[Hashable]
) -> np.ndarray:
    """Compute the all-pairs shortest-path hop counts between rack nodes.

    Parameters
    ----------
    graph:
        The fixed network, an undirected unweighted graph.  It must be
        connected at least on the component containing all racks.
    rack_nodes:
        The graph nodes acting as racks, in the order in which they map to
        rack ids ``0 .. n-1``.

    Returns
    -------
    numpy.ndarray
        An ``(n, n)`` float array of hop counts, ``0`` on the diagonal.

    Raises
    ------
    TopologyError
        If some pair of racks is disconnected in the fixed network.
    """
    if len(rack_nodes) < 2:
        raise TopologyError("a topology needs at least two racks")
    node_list = list(graph.nodes())
    index = {node: i for i, node in enumerate(node_list)}
    try:
        rack_idx = np.array([index[r] for r in rack_nodes], dtype=np.intp)
    except KeyError as exc:  # pragma: no cover - defensive
        raise TopologyError(f"rack node {exc} not present in graph") from exc

    adjacency = nx.to_scipy_sparse_array(graph, nodelist=node_list, format="csr", dtype=np.int8)
    adjacency = csr_matrix(adjacency)
    # Single vectorised BFS from every rack; unweighted=True uses BFS rather
    # than Dijkstra, which is both faster and exact for hop counts.
    dist_from_racks = shortest_path(
        adjacency, directed=False, unweighted=True, indices=rack_idx
    )
    dist = np.asarray(dist_from_racks)[:, rack_idx]
    if np.isinf(dist).any():
        raise TopologyError("fixed network does not connect all racks")
    return dist.astype(np.float64)


class Topology:
    """A fixed datacenter network with ``n`` rack endpoints.

    Parameters
    ----------
    graph:
        Undirected NetworkX graph of the fixed network (racks plus any
        internal switches).
    rack_nodes:
        Graph nodes that act as racks / ToR switches, in rack-id order.
    name:
        Human-readable topology name used in results and reports.
    """

    def __init__(self, graph: nx.Graph, rack_nodes: Sequence[Hashable], name: str = "custom"):
        if graph.number_of_nodes() == 0:
            raise TopologyError("topology graph is empty")
        self._graph = graph
        self._rack_nodes = list(rack_nodes)
        self._name = name
        self._distances = build_distance_matrix(graph, self._rack_nodes)

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Topology name."""
        return self._name

    @property
    def n_racks(self) -> int:
        """Number of racks (traffic endpoints)."""
        return len(self._rack_nodes)

    @property
    def graph(self) -> nx.Graph:
        """The underlying fixed-network graph (read-only by convention)."""
        return self._graph

    @property
    def rack_nodes(self) -> list[Hashable]:
        """Graph nodes acting as racks, indexed by rack id."""
        return list(self._rack_nodes)

    @property
    def distance_matrix(self) -> np.ndarray:
        """Dense ``(n, n)`` matrix of rack-to-rack hop counts."""
        return self._distances

    # ------------------------------------------------------------------ #
    # Distance queries
    # ------------------------------------------------------------------ #
    def distance(self, u: int, v: int) -> float:
        """Shortest-path hop count ``ℓ_{u,v}`` between racks ``u`` and ``v``."""
        n = self.n_racks
        if not (0 <= u < n and 0 <= v < n):
            raise TopologyError(f"rack id out of range: ({u}, {v}) with n={n}")
        return float(self._distances[u, v])

    def pair_length(self, pair: NodePair) -> float:
        """Shortest-path length of a canonical node pair."""
        return self.distance(pair[0], pair[1])

    def distances_for(self, pairs: Iterable[NodePair]) -> np.ndarray:
        """Vectorised lookup of lengths for many pairs at once."""
        arr = np.asarray(list(pairs), dtype=np.intp)
        if arr.size == 0:
            return np.zeros(0, dtype=np.float64)
        return self._distances[arr[:, 0], arr[:, 1]]

    def max_distance(self) -> float:
        """``ℓ_max`` — the largest rack-to-rack distance in the fixed network."""
        return float(self._distances.max())

    def mean_distance(self) -> float:
        """Average rack-to-rack distance over distinct pairs."""
        n = self.n_racks
        total = self._distances.sum()  # diagonal is zero
        return float(total / (n * (n - 1)))

    def diameter(self) -> float:
        """Alias of :meth:`max_distance` restricted to racks."""
        return self.max_distance()

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def all_pairs(self) -> list[NodePair]:
        """All canonical rack pairs."""
        n = self.n_racks
        return [(u, v) for u in range(n) for v in range(u + 1, n)]

    def validate_pair(self, u: int, v: int) -> NodePair:
        """Canonicalise and range-check a pair of rack ids."""
        if u == v:
            raise TopologyError(f"self-pair ({u}, {v}) is not routable")
        n = self.n_racks
        if not (0 <= u < n and 0 <= v < n):
            raise TopologyError(f"rack id out of range: ({u}, {v}) with n={n}")
        return canonical_pair(u, v)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self._name!r} racks={self.n_racks}>"
