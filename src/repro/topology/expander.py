"""Random regular (expander-like) topology.

Jellyfish-style datacenter fabrics wire ToR switches into a random regular
graph, which is an expander with high probability and therefore has a very
small diameter.  The paper's related work discusses such static expanders
(Xpander, Jellyfish, Flexspander) as the main alternative to reconfigurable
designs; this topology lets the benchmarks quantify how much a demand-aware
matching still helps when the static fabric is already short-diameter.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx
import numpy as np

from ..errors import TopologyError
from .base import Topology

__all__ = ["ExpanderTopology"]


class ExpanderTopology(Topology):
    """Random ``degree``-regular graph over the racks.

    Parameters
    ----------
    n_racks:
        Number of racks.
    degree:
        Degree of the random regular graph (default 4).  ``n_racks * degree``
        must be even and ``degree < n_racks``.
    seed:
        Seed controlling the random wiring, so experiments are reproducible.
    """

    def __init__(self, n_racks: int, degree: int = 4, seed: Optional[int] = None):
        if n_racks < 3:
            raise TopologyError(f"need at least 3 racks, got {n_racks}")
        if degree < 2 or degree >= n_racks:
            raise TopologyError(f"degree must satisfy 2 <= degree < n_racks, got {degree}")
        if (n_racks * degree) % 2 != 0:
            raise TopologyError(
                f"n_racks * degree must be even for a regular graph, got {n_racks}*{degree}"
            )
        rng = np.random.default_rng(seed)
        # Retry until the sampled regular graph is connected (overwhelmingly
        # likely on the first attempt for degree >= 3).
        for attempt in range(100):
            g = nx.random_regular_graph(degree, n_racks, seed=int(rng.integers(2**31 - 1)))
            if nx.is_connected(g):
                break
        else:  # pragma: no cover - practically unreachable
            raise TopologyError("failed to sample a connected regular graph")
        self._degree = degree
        super().__init__(
            g, list(range(n_racks)), name=f"expander(racks={n_racks}, degree={degree})"
        )

    @property
    def degree(self) -> int:
        """Degree of the regular graph."""
        return self._degree
