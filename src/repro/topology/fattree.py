"""k-ary fat-tree topology (Al-Fares et al., SIGCOMM 2008).

The paper's simulations use "a typical fat-tree based datacenter topology,
with 100 nodes in the case of the Facebook clusters, and with 50 nodes in the
case of the Microsoft cluster", where nodes are racks / ToR switches.  In a
k-ary fat tree there are ``k`` pods, each with ``k/2`` edge (ToR) switches and
``k/2`` aggregation switches, plus ``(k/2)^2`` core switches.  Rack-to-rack
hop counts are 2 within a pod and 4 across pods, which is exactly the cost
structure the paper's routing-cost curves are built on.

:class:`FatTreeTopology` either takes the fat-tree arity ``k`` directly or a
desired number of racks, in which case the smallest even ``k`` with
``k^2/2 >= n_racks`` is chosen and only the first ``n_racks`` ToR switches are
used as traffic endpoints (the remaining switches still exist and carry
transit traffic).
"""

from __future__ import annotations

import math
from typing import Optional

import networkx as nx

from ..errors import TopologyError
from .base import Topology

__all__ = ["FatTreeTopology"]


def _fat_tree_graph(k: int) -> tuple[nx.Graph, list[str]]:
    """Build the k-ary fat-tree switch graph and return it with its ToR list."""
    if k < 2 or k % 2 != 0:
        raise TopologyError(f"fat-tree arity k must be an even integer >= 2, got {k}")
    g = nx.Graph()
    half = k // 2
    core = [f"core-{i}-{j}" for i in range(half) for j in range(half)]
    g.add_nodes_from(core, layer="core")

    tor_nodes: list[str] = []
    for pod in range(k):
        aggs = [f"agg-{pod}-{a}" for a in range(half)]
        edges = [f"edge-{pod}-{e}" for e in range(half)]
        g.add_nodes_from(aggs, layer="aggregation")
        g.add_nodes_from(edges, layer="edge")
        tor_nodes.extend(edges)
        # Full bipartite connection between edge and aggregation inside a pod.
        for agg in aggs:
            for edge in edges:
                g.add_edge(agg, edge)
        # Aggregation switch a of every pod connects to core group a.
        for a, agg in enumerate(aggs):
            for j in range(half):
                g.add_edge(agg, f"core-{a}-{j}")
    return g, tor_nodes


class FatTreeTopology(Topology):
    """Fat-tree fixed network with racks attached at the edge layer.

    Parameters
    ----------
    n_racks:
        Number of racks to expose as traffic endpoints.  Mutually exclusive
        with ``k`` only in the sense that if both are given, ``k`` must be
        large enough to host ``n_racks`` ToR switches.
    k:
        Fat-tree arity (even).  If omitted, the smallest adequate arity for
        ``n_racks`` is selected.
    """

    def __init__(self, n_racks: Optional[int] = None, k: Optional[int] = None):
        if n_racks is None and k is None:
            raise TopologyError("either n_racks or k must be provided")
        if k is None:
            assert n_racks is not None
            if n_racks < 2:
                raise TopologyError(f"need at least 2 racks, got {n_racks}")
            # Smallest even k with k^2/2 >= n_racks.
            k = max(2, 2 * math.ceil(math.sqrt(n_racks / 2.0)))
            while k * k // 2 < n_racks:
                k += 2
        if n_racks is None:
            n_racks = k * k // 2
        if k * k // 2 < n_racks:
            raise TopologyError(
                f"a {k}-ary fat tree has only {k * k // 2} ToR switches, cannot host {n_racks} racks"
            )
        graph, tors = _fat_tree_graph(k)
        self._k = k
        super().__init__(graph, tors[:n_racks], name=f"fat-tree(k={k}, racks={n_racks})")

    @property
    def k(self) -> int:
        """Fat-tree arity."""
        return self._k

    @property
    def n_pods(self) -> int:
        """Number of pods."""
        return self._k

    def pod_of(self, rack: int) -> int:
        """Pod index hosting the given rack."""
        node = self.rack_nodes[rack]
        return int(str(node).split("-")[1])
