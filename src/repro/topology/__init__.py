"""Static (fixed) datacenter network topologies.

The fixed network determines the routing cost ``ℓ_e`` of every node pair
``e = {u, v}``: the shortest-path hop count between the two racks when the
request is *not* served by a reconfigurable matching edge.

All topologies expose the same interface (:class:`~repro.topology.base.Topology`):
a set of ``n`` racks identified by ``0 .. n-1`` and a dense, precomputed
rack-to-rack distance matrix, so the simulation hot path never touches a
graph library.
"""

from .base import Topology, build_distance_matrix
from .fattree import FatTreeTopology
from .leafspine import LeafSpineTopology
from .star import StarTopology
from .ring import RingTopology
from .torus import TorusTopology
from .hypercube import HypercubeTopology
from .expander import ExpanderTopology
from .registry import available_topologies, make_topology, register_topology

__all__ = [
    "Topology",
    "build_distance_matrix",
    "FatTreeTopology",
    "LeafSpineTopology",
    "StarTopology",
    "RingTopology",
    "TorusTopology",
    "HypercubeTopology",
    "ExpanderTopology",
    "available_topologies",
    "make_topology",
    "register_topology",
]
