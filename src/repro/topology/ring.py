"""Ring topology.

Racks form a cycle; the distance between racks ``u`` and ``v`` is
``min(|u-v|, n-|u-v|)``.  The ring has a large diameter (``⌊n/2⌋``), which
stresses the ``ℓ_max/α`` term of the competitive bound and the non-uniform
reduction (Theorem 1) more than datacenter fabrics do, so it is used in tests
and ablations rather than in the headline experiments.
"""

from __future__ import annotations

import networkx as nx

from ..errors import TopologyError
from .base import Topology

__all__ = ["RingTopology"]


class RingTopology(Topology):
    """Cycle of ``n_racks`` racks, each directly linked to its two neighbours."""

    def __init__(self, n_racks: int):
        if n_racks < 3:
            raise TopologyError(f"a ring needs at least 3 racks, got {n_racks}")
        g = nx.cycle_graph(n_racks)
        super().__init__(g, list(range(n_racks)), name=f"ring(racks={n_racks})")
