"""Cross-run statistics over a populated run store.

Two orthogonal views of history:

* **Per-fingerprint recomputation history** — every time the same seeded
  spec is recomputed (store disabled for reads, forced cold runs,
  benchmark arms), :meth:`RunStore.put` appends a ``(timestamp,
  wall_seconds, total_cost)`` row.  :func:`spec_statistics` turns that into
  mean/stddev/bootstrap-CI runtime statistics and two regression flags:

  - ``cost_regression`` — total cost drifted across recomputations of the
    *same* fingerprint.  The whole simulation stack is deterministic, so
    any drift is a reproducibility bug, flagged unconditionally.
  - ``runtime_regression`` — the newest wall-clock sample lies outside the
    bootstrap confidence interval of the preceding samples (needs at least
    :data:`MIN_HISTORY` prior samples; timing noise on fewer is not
    evidence).

* **Per-configuration spread across seeds** — :func:`group_statistics`
  groups entries that differ only in seed (same algorithm, workload,
  topology, ``b``, ``alpha``, request count) and reports the spread of
  total cost and runtime across those independent repetitions, i.e. the
  error bars the paper's "averaged over five runs" methodology implies.

The bootstrap is the plain percentile method with a fixed RNG seed, so
``repro runs stats`` output is reproducible run to run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from .run_store import RunEntry, RunStore

__all__ = [
    "MIN_HISTORY",
    "SampleStats",
    "SpecHistory",
    "GroupStats",
    "bootstrap_ci",
    "sample_statistics",
    "spec_statistics",
    "store_statistics",
    "group_statistics",
]

#: Minimum number of *prior* samples before a runtime regression can be
#: flagged; with fewer, the CI is too wide to mean anything.
MIN_HISTORY = 3


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval of the mean of ``values``.

    Deterministic for a given ``seed``; degenerates gracefully: one sample
    yields a zero-width interval at that sample.
    """
    if not 0 < confidence < 1:
        raise ConfigurationError(f"confidence must be in (0, 1), got {confidence}")
    data = np.asarray(list(values), dtype=np.float64)
    if data.size == 0:
        raise ConfigurationError("cannot bootstrap an empty sample")
    if data.size == 1:
        return float(data[0]), float(data[0])
    rng = np.random.default_rng(seed)
    samples = rng.choice(data, size=(n_resamples, data.size), replace=True)
    means = samples.mean(axis=1)
    tail = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [tail, 1.0 - tail])
    return float(low), float(high)


@dataclass(frozen=True)
class SampleStats:
    """Summary of one metric's samples: moments plus a bootstrap CI."""

    n: int
    mean: float
    std: float
    ci_low: float
    ci_high: float
    confidence: float = 0.95

    def covers(self, value: float) -> bool:
        """Whether ``value`` lies inside the confidence interval."""
        return self.ci_low <= value <= self.ci_high

    def to_dict(self) -> Dict[str, float]:
        return {
            "n": self.n,
            "mean": self.mean,
            "std": self.std,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "confidence": self.confidence,
        }


def sample_statistics(
    values: Sequence[float], confidence: float = 0.95
) -> SampleStats:
    """Mean/stddev/bootstrap-CI summary of a sample."""
    data = np.asarray(list(values), dtype=np.float64)
    if data.size == 0:
        raise ConfigurationError("cannot summarise an empty sample")
    low, high = bootstrap_ci(data, confidence=confidence)
    return SampleStats(
        n=int(data.size),
        mean=float(data.mean()),
        std=float(data.std()),
        ci_low=low,
        ci_high=high,
        confidence=confidence,
    )


@dataclass(frozen=True)
class SpecHistory:
    """Statistics of one fingerprint's recomputation history."""

    fingerprint: str
    algorithm: str
    workload: str
    b: int
    seed: Optional[int]
    n_runs: int
    runtime: SampleStats
    cost: SampleStats
    latest_wall_seconds: float
    latest_total_cost: float
    cost_regression: bool
    runtime_regression: bool

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "algorithm": self.algorithm,
            "workload": self.workload,
            "b": self.b,
            "seed": self.seed,
            "n_runs": self.n_runs,
            "runtime": self.runtime.to_dict(),
            "cost": self.cost.to_dict(),
            "latest_wall_seconds": self.latest_wall_seconds,
            "latest_total_cost": self.latest_total_cost,
            "cost_regression": self.cost_regression,
            "runtime_regression": self.runtime_regression,
        }


def spec_statistics(store: RunStore, fingerprint: str) -> SpecHistory:
    """History statistics for one stored fingerprint (see module docs)."""
    payload = store.get_payload(fingerprint)
    if payload is None:
        raise ConfigurationError(
            f"no stored run with fingerprint {fingerprint!r}"
        )
    history = payload.get("history") or []
    walls = [float(row["wall_seconds"]) for row in history]
    costs = [float(row["total_cost"]) for row in history]
    if not walls:  # legacy entry without history: synthesise from the result
        walls = [float(payload["result"]["total_elapsed_seconds"])]
        costs = [
            float(payload["result"]["total_routing_cost"])
            + float(payload["result"]["total_reconfiguration_cost"])
        ]
    result = payload["result"]
    runtime_regression = False
    if len(walls) > MIN_HISTORY:
        prior = sample_statistics(walls[:-1])
        runtime_regression = not prior.covers(walls[-1])
    return SpecHistory(
        fingerprint=payload["fingerprint"],
        algorithm=result["algorithm"],
        workload=result["workload"],
        b=int(result["b"]),
        seed=result.get("seed"),
        n_runs=len(walls),
        runtime=sample_statistics(walls),
        cost=sample_statistics(costs),
        latest_wall_seconds=walls[-1],
        latest_total_cost=costs[-1],
        # Determinism contract: identical fingerprint => identical cost.
        cost_regression=len(set(costs)) > 1,
        runtime_regression=runtime_regression,
    )


def store_statistics(store: RunStore) -> List[SpecHistory]:
    """Per-fingerprint history statistics for every entry, newest first."""
    return [spec_statistics(store, entry.fingerprint) for entry in store.list_runs()]


@dataclass(frozen=True)
class GroupStats:
    """Cross-seed statistics of one configuration family."""

    algorithm: str
    workload: str
    topology: str
    b: int
    alpha: float
    n_requests: int
    seeds: Tuple[Optional[int], ...]
    cost: SampleStats
    runtime: SampleStats

    @property
    def label(self) -> str:
        return f"{self.algorithm} (b: {self.b})"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "workload": self.workload,
            "topology": self.topology,
            "b": self.b,
            "alpha": self.alpha,
            "n_requests": self.n_requests,
            "seeds": list(self.seeds),
            "cost": self.cost.to_dict(),
            "runtime": self.runtime.to_dict(),
        }


def group_statistics(store: RunStore) -> List[GroupStats]:
    """Entries grouped by configuration (seed varying), with spread stats.

    The grouping key is (algorithm, workload, topology, b, alpha,
    n_requests): entries differing only in seed are independent repetitions
    of the same experiment, so their spread estimates the error bars of the
    paper's averaged figures.  Groups come back sorted by workload,
    algorithm, then ``b``.
    """
    groups: Dict[tuple, List[RunEntry]] = {}
    for entry in store.list_runs():
        key = (
            entry.workload,
            entry.algorithm,
            entry.topology,
            entry.b,
            entry.alpha,
            entry.n_requests,
        )
        groups.setdefault(key, []).append(entry)
    out: List[GroupStats] = []
    for key in sorted(groups, key=lambda k: (k[0], k[1], k[3], k[4])):
        members = groups[key]
        workload, algorithm, topology, b, alpha, n_requests = key
        out.append(
            GroupStats(
                algorithm=algorithm,
                workload=workload,
                topology=topology,
                b=b,
                alpha=alpha,
                n_requests=n_requests,
                seeds=tuple(m.seed for m in members),
                cost=sample_statistics([m.total_cost for m in members]),
                runtime=sample_statistics(
                    [m.total_elapsed_seconds for m in members]
                ),
            )
        )
    return out
