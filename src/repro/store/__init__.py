"""Persistent run store: a content-addressed repository of experiment results.

Every execution entry point in :mod:`repro.simulation` can consult a
:class:`RunStore` before computing and write back after, keyed by
:func:`fingerprint_spec` — a canonical blake2b digest of the seeded
:class:`~repro.experiments.specs.ExperimentSpec` plus the schema version and
the effective kernel provenance.  Repeated figure grids and ablation
matrices then become *incremental*: unchanged (spec, seed) cells are served
from disk, bit-identical to the cold run that produced them, and only dirty
cells recompute.

Layers (bottom up):

* :mod:`~repro.store.fingerprint` — the canonical spec fingerprint and its
  invariance contract (key order, float int-ness, schema version, backend
  provenance).
* :mod:`~repro.store.run_store` — the file-backed store itself: atomic
  sharded ``runs/<fp[:2]>/<fp>.json`` writes, a timestamped index,
  ``put``/``get``/``contains``/``list_runs``/``delete``/``gc``, and the
  ``REPRO_RUN_STORE`` environment default.
* :mod:`~repro.store.statistics` — cross-run statistics: per-fingerprint
  recomputation history (runtime CIs, determinism and runtime regression
  flags) and cross-seed configuration spreads.

The execution layer lives in :mod:`repro.simulation` (``store=`` keyword on
:func:`~repro.simulation.runner.execute_experiment_spec`,
:class:`~repro.simulation.runner.ExperimentRunner`,
:func:`~repro.simulation.sweep.run_experiments`, and
:func:`~repro.simulation.parallel.run_specs_parallel`); the CLI surface is
``repro runs list|show|stats|gc`` plus ``--store``/``--no-store`` on the
simulation commands.
"""

from .fingerprint import (
    SCHEMA_VERSION,
    canonical_json,
    effective_kernels,
    fingerprint_spec,
)
from .run_store import (
    ENV_RUN_STORE,
    RunEntry,
    RunStore,
    StoreConfig,
    StoreCounters,
    default_store,
    reset_store_counters,
    resolve_store,
    store_counters,
)
from .transfer import export_store, import_store
from .statistics import (
    GroupStats,
    SampleStats,
    SpecHistory,
    bootstrap_ci,
    group_statistics,
    sample_statistics,
    spec_statistics,
    store_statistics,
)

__all__ = [
    # fingerprint
    "SCHEMA_VERSION",
    "canonical_json",
    "effective_kernels",
    "fingerprint_spec",
    # store
    "ENV_RUN_STORE",
    "StoreConfig",
    "StoreCounters",
    "RunEntry",
    "RunStore",
    "default_store",
    "resolve_store",
    "store_counters",
    "reset_store_counters",
    # transfer
    "export_store",
    "import_store",
    # statistics
    "SampleStats",
    "SpecHistory",
    "GroupStats",
    "bootstrap_ci",
    "sample_statistics",
    "spec_statistics",
    "store_statistics",
    "group_statistics",
]
