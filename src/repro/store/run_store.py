"""File-backed, content-addressed repository of run results.

Layout (everything under one root directory)::

    <root>/
      index.json                  # timestamped catalogue, one row per entry
      runs/<fp[:2]>/<fp>.json     # sharded entry files, fp = fingerprint_spec

Each entry file holds the full :class:`~repro.simulation.results.RunResult`
(via ``to_dict``) together with provenance — the originating spec's plain
dict, the library version, write timestamps — and a *history* of every time
the same fingerprint was recomputed (wall-clock seconds and total cost per
recomputation), which feeds :mod:`repro.store.statistics`.

Durability rules:

* **Writes are atomic.**  Entry files and the index are written to a
  temporary sibling and moved into place with :func:`os.replace`, so a
  crashed process can never leave a half-written JSON file behind.
* **The index is a cache, not the truth.**  The sharded entry files are
  authoritative; a missing or corrupt ``index.json`` is silently rebuilt by
  scanning them (:meth:`RunStore.reindex`).
* **Single-writer semantics.**  Concurrent readers are always safe
  (atomic replace); concurrent writers are last-writer-wins on the index
  row.  The execution layer funnels all writes through the parent process
  (pool workers return results, they never touch the store), so this is
  the contract sweeps actually need.

Failure semantics (all exercisable via :mod:`repro.faults`):

* **Transient IO errors retry.**  Entry/index reads and writes go through
  :mod:`repro.ioutil`'s bounded retry with exponential backoff
  (``REPRO_IO_RETRIES`` / ``REPRO_IO_BACKOFF``).
* **Corrupt entries quarantine, never abort.**  Every entry carries a
  blake2b payload checksum; an unparseable or checksum-failing entry file
  is moved to ``<root>/quarantine/`` with a :class:`RuntimeWarning` and a
  counter bump, and the access behaves as a miss — a torn write on a
  non-atomic filesystem costs one recomputation, not the whole run.
* **A persistently unwritable store degrades gracefully.**  ``put``
  failures past the retry budget warn once, count, and return — the run
  continues cold and results are still produced.
* **Stale tmp files are reaped.**  :meth:`RunStore.gc` removes orphaned
  ``.*.tmp-*`` siblings left by writers killed between the tmp write and
  the rename.  ``repro doctor`` audits (and ``--fix`` repairs) all of the
  above.

Configuration: pass a :class:`StoreConfig`/path explicitly, or set the
``REPRO_RUN_STORE`` environment variable to a directory path to give every
execution entry point a default store (``0``/``off``/``false``/empty
disable it — see :func:`default_store`).
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from dataclasses import dataclass, field
from datetime import datetime, timedelta, timezone
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from .._version import __version__
from ..errors import ConfigurationError
from ..experiments.specs import ExperimentSpec
from ..ioutil import atomic_write_json, read_json, reap_stale_tmp
from ..simulation.results import RunResult
from .fingerprint import SCHEMA_VERSION, fingerprint_spec

__all__ = [
    "ENV_RUN_STORE",
    "StoreConfig",
    "StoreCounters",
    "RunEntry",
    "RunStore",
    "default_store",
    "entry_checksum",
    "resolve_store",
    "store_counters",
    "reset_store_counters",
]

#: Environment variable naming the default store directory.
ENV_RUN_STORE = "REPRO_RUN_STORE"

#: Env values that explicitly disable the default store (case-insensitive).
_FALSEY_TOKENS = frozenset({"", "0", "off", "false", "no", "none", "disabled"})

#: On-disk format version of entry files and the index (independent of the
#: fingerprint schema: bumping this forces a reindex, not a recompute).
STORE_FORMAT = 1


@dataclass(frozen=True)
class StoreConfig:
    """Where and how a :class:`RunStore` lays out its files.

    Attributes
    ----------
    root:
        Directory holding ``index.json`` and the ``runs/`` shard tree;
        created on first use.
    shard_width:
        Number of leading fingerprint hex digits used as the shard
        directory name.  Two digits = 256 shards, plenty below a million
        entries; widen for truly huge stores.
    """

    root: Path
    shard_width: int = 2

    def __post_init__(self) -> None:
        object.__setattr__(self, "root", Path(self.root))
        if not (1 <= self.shard_width <= 8):
            raise ConfigurationError(
                f"shard_width must be in [1, 8], got {self.shard_width}"
            )


@dataclass
class StoreCounters:
    """Hit/miss/write tallies of one store instance (process-local).

    The failure-path counters make degradation observable without making
    it fatal: ``quarantined`` counts corrupt entries sidelined to
    ``quarantine/``, ``read_failures``/``write_failures`` count IO errors
    that survived the retry budget (each then handled as a miss / a cold
    continuation rather than an abort).
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0
    quarantined: int = 0
    read_failures: int = 0
    write_failures: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "quarantined": self.quarantined,
            "read_failures": self.read_failures,
            "write_failures": self.write_failures,
        }


#: Process-wide tallies across every store instance, for benchmark
#: provenance (``BENCH_*.json`` records how much of a pipeline was served
#: from cache).
_GLOBAL_COUNTERS = StoreCounters()


def store_counters() -> Dict[str, int]:
    """Process-wide store hit/miss/write counts (across all instances)."""
    return _GLOBAL_COUNTERS.to_dict()


def reset_store_counters() -> None:
    """Zero the process-wide counters (benchmark harness bookkeeping)."""
    _GLOBAL_COUNTERS.hits = _GLOBAL_COUNTERS.misses = _GLOBAL_COUNTERS.writes = 0
    _GLOBAL_COUNTERS.quarantined = 0
    _GLOBAL_COUNTERS.read_failures = _GLOBAL_COUNTERS.write_failures = 0


@dataclass(frozen=True)
class RunEntry:
    """One index row: enough to list and triage a stored run without
    opening its (potentially large) entry file."""

    fingerprint: str
    written_at: str
    algorithm: str
    workload: str
    topology: str
    b: int
    alpha: float
    seed: Optional[int]
    n_requests: int
    total_cost: float
    total_elapsed_seconds: float
    runs: int = 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "written_at": self.written_at,
            "algorithm": self.algorithm,
            "workload": self.workload,
            "topology": self.topology,
            "b": self.b,
            "alpha": self.alpha,
            "seed": self.seed,
            "n_requests": self.n_requests,
            "total_cost": self.total_cost,
            "total_elapsed_seconds": self.total_elapsed_seconds,
            "runs": self.runs,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunEntry":
        return cls(
            fingerprint=data["fingerprint"],
            written_at=data["written_at"],
            algorithm=data["algorithm"],
            workload=data["workload"],
            topology=data["topology"],
            b=int(data["b"]),
            alpha=float(data["alpha"]),
            seed=data.get("seed"),
            n_requests=int(data["n_requests"]),
            total_cost=float(data["total_cost"]),
            total_elapsed_seconds=float(data["total_elapsed_seconds"]),
            runs=int(data.get("runs", 1)),
        )


def _utcnow_iso() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def _parse_iso(text: str) -> datetime:
    stamp = datetime.fromisoformat(text)
    if stamp.tzinfo is None:
        stamp = stamp.replace(tzinfo=timezone.utc)
    return stamp


def _atomic_write_json(path: Path, payload: Any, site: str = "store.write") -> None:
    """Write JSON durably (tmp sibling + rename), with retry + fault hooks.

    Thin re-export of :func:`repro.ioutil.atomic_write_json`, kept under
    its historical name because the queue and transfer layers share it.
    """
    atomic_write_json(path, payload, site=site)


def entry_checksum(payload: Mapping[str, Any]) -> str:
    """blake2b digest certifying an entry payload's content.

    Hashes the sort-keyed compact JSON of the payload *minus* the
    ``checksum`` field itself, so the stored value verifies the stored
    bytes.  ``default=str`` keeps the digest total even for payloads that
    smuggled in a non-JSON scalar — the digest must never raise.
    """
    body = {k: v for k, v in payload.items() if k != "checksum"}
    text = json.dumps(body, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.blake2b(text.encode("utf-8"), digest_size=20).hexdigest()


def _checksum_ok(payload: Mapping[str, Any]) -> bool:
    """Whether a payload's stored checksum matches its content.

    Entries written before checksums existed carry no ``checksum`` field
    and are accepted as-is (JSON parse success is their only certificate).
    """
    stored = payload.get("checksum")
    return stored is None or stored == entry_checksum(payload)


class RunStore:
    """Content-addressed ``put``/``get`` repository of run results.

    Parameters
    ----------
    config:
        A :class:`StoreConfig`, or a directory path (string or
        :class:`~pathlib.Path`) for the default layout.

    Examples
    --------
    >>> store = RunStore("/tmp/doctest-run-store")
    >>> spec = ExperimentSpec(
    ...     algorithm={"name": "rbma", "b": 2, "alpha": 4},
    ...     traffic={"name": "zipf", "params": {"n_nodes": 8, "n_requests": 50}},
    ...     seed=7,
    ... )
    >>> result = spec.execute()
    >>> fp = store.put(result)
    >>> store.contains(fp) and store.get(fp).total_cost == result.total_cost
    True
    """

    def __init__(self, config: Union[StoreConfig, str, Path]):
        if not isinstance(config, StoreConfig):
            config = StoreConfig(root=Path(config))
        self.config = config
        self.counters = StoreCounters()
        self._index: Optional[Dict[str, RunEntry]] = None
        self._warned_unwritable = False

    # -- layout ----------------------------------------------------------

    @property
    def root(self) -> Path:
        return self.config.root

    @property
    def runs_dir(self) -> Path:
        return self.config.root / "runs"

    @property
    def index_path(self) -> Path:
        return self.config.root / "index.json"

    @property
    def quarantine_dir(self) -> Path:
        """Where corrupt/checksum-failing entry files are sidelined."""
        return self.config.root / "quarantine"

    def entry_path(self, fingerprint: str) -> Path:
        """``runs/<fp[:shard_width]>/<fp>.json`` for a fingerprint."""
        if not fingerprint or any(c not in "0123456789abcdef" for c in fingerprint):
            raise ConfigurationError(
                f"malformed fingerprint {fingerprint!r} (expected lowercase hex)"
            )
        shard = fingerprint[: self.config.shard_width]
        return self.runs_dir / shard / f"{fingerprint}.json"

    def fingerprint(self, spec: Union[ExperimentSpec, Mapping[str, Any]]) -> str:
        """The store key for ``spec`` (see :func:`~repro.store.fingerprint_spec`)."""
        return fingerprint_spec(spec)

    def _key(self, ref: Union[str, ExperimentSpec, Mapping[str, Any]]) -> str:
        return ref if isinstance(ref, str) else self.fingerprint(ref)

    # -- index -----------------------------------------------------------

    def _load_index(self) -> Dict[str, RunEntry]:
        if self._index is not None:
            return self._index
        try:
            raw = json.loads(self.index_path.read_text())
            entries = {
                fp: RunEntry.from_dict(row)
                for fp, row in raw.get("entries", {}).items()
            }
        except FileNotFoundError:
            entries = self._scan() if self.runs_dir.exists() else {}
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            # The index is derived state: a torn, stale, or unreadable file
            # (e.g. from a killed writer on a non-atomic filesystem) is
            # rebuilt, never trusted over the entry files themselves.
            entries = self._scan()
        self._index = entries
        return entries

    def _scan(self) -> Dict[str, RunEntry]:
        entries: Dict[str, RunEntry] = {}
        if not self.runs_dir.exists():
            return entries
        for path in sorted(self.runs_dir.glob("*/*.json")):
            try:
                payload = read_json(path, site="store.read")
                if not _checksum_ok(payload):
                    continue  # doctor/get quarantine it; never index it
                entries[payload["fingerprint"]] = self._entry_from_payload(payload)
            except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
                continue  # a torn file is unreadable, not fatal to the rest
        return entries

    def _entry_from_payload(self, payload: Mapping[str, Any]) -> RunEntry:
        result = payload["result"]
        return RunEntry(
            fingerprint=payload["fingerprint"],
            written_at=payload["written_at"],
            algorithm=result["algorithm"],
            workload=result["workload"],
            topology=result["topology"],
            b=int(result["b"]),
            alpha=float(result["alpha"]),
            seed=result.get("seed"),
            n_requests=int(result["n_requests"]),
            total_cost=float(result["total_routing_cost"])
            + float(result["total_reconfiguration_cost"]),
            total_elapsed_seconds=float(result["total_elapsed_seconds"]),
            runs=len(payload.get("history", ())) or 1,
        )

    def _write_index(self) -> None:
        entries = self._load_index()
        try:
            atomic_write_json(
                self.index_path,
                {
                    "format": STORE_FORMAT,
                    "schema_version": SCHEMA_VERSION,
                    "updated_at": _utcnow_iso(),
                    "entries": {fp: entry.to_dict() for fp, entry in entries.items()},
                },
                site="store.index_write",
            )
        except OSError as exc:
            # The index is derived state: failing to refresh it degrades
            # `list_runs` freshness for *other* processes (this one keeps
            # its in-memory copy) and is rebuilt by the next reader anyway.
            self._note_write_failure("index write", exc)

    def _note_write_failure(self, what: str, exc: OSError) -> None:
        """Count a persistent write failure and warn once per store."""
        self.counters.write_failures += 1
        _GLOBAL_COUNTERS.write_failures += 1
        if not self._warned_unwritable:
            self._warned_unwritable = True
            warnings.warn(
                f"run store at {self.root} is not writable ({what} failed "
                f"after retries: {exc}); continuing without persisting — "
                "results are still computed and returned",
                RuntimeWarning,
                stacklevel=4,
            )

    def _quarantine(self, path: Path, reason: str) -> Optional[Path]:
        """Sideline a corrupt entry file into ``quarantine/``; best-effort.

        Returns the quarantine destination, or ``None`` when the move
        itself failed (in which case the caller has already treated the
        access as a miss — the corrupt file just stays where it is until
        the next access or a ``repro doctor --fix`` run).
        """
        self.counters.quarantined += 1
        _GLOBAL_COUNTERS.quarantined += 1
        destination = self.quarantine_dir / path.name
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            k = 1
            while destination.exists():
                destination = self.quarantine_dir / f"{path.stem}.{k}{path.suffix}"
                k += 1
            os.replace(path, destination)
        except OSError:
            destination = None
        warnings.warn(
            f"run-store entry {path.name} is corrupt ({reason}); "
            + (
                f"moved to {destination}"
                if destination is not None
                else "quarantine move failed, leaving it in place"
            )
            + " — treating the access as a miss",
            RuntimeWarning,
            stacklevel=4,
        )
        # Drop it from the cached index (and best-effort from the on-disk
        # one) so listings stop advertising an entry that no longer loads.
        entries = self._load_index()
        stem = path.name[: -len(".json")] if path.name.endswith(".json") else path.name
        if entries.pop(stem, None) is not None:
            self._write_index()
        return destination

    def reindex(self) -> int:
        """Rebuild ``index.json`` from the entry files; returns the entry count."""
        self._index = self._scan()
        self.root.mkdir(parents=True, exist_ok=True)
        self._write_index()
        return len(self._index)

    # -- core operations -------------------------------------------------

    def contains(self, ref: Union[str, ExperimentSpec, Mapping[str, Any]]) -> bool:
        """Whether a result for this fingerprint (or spec) is stored."""
        return self.entry_path(self._key(ref)).exists()

    def __contains__(self, ref) -> bool:
        return self.contains(ref)

    def __len__(self) -> int:
        return len(self._load_index())

    def get_payload(
        self, ref: Union[str, ExperimentSpec, Mapping[str, Any]]
    ) -> Optional[Dict[str, Any]]:
        """The raw stored payload (result + provenance + history), or ``None``.

        A corrupt entry (unparseable JSON or a failing payload checksum) is
        **quarantined** — moved to ``quarantine/`` with a
        :class:`RuntimeWarning` and a counter bump — and the access returns
        ``None`` so the caller recomputes; it never aborts the run.  A
        transient read error that survives the retry budget likewise
        degrades to a miss (counted in ``read_failures``).
        """
        path = self.entry_path(self._key(ref))
        try:
            payload = read_json(path, site="store.read")
        except FileNotFoundError:
            return None
        except json.JSONDecodeError as exc:
            self._quarantine(path, f"invalid JSON: {exc}")
            return None
        except OSError as exc:
            self.counters.read_failures += 1
            _GLOBAL_COUNTERS.read_failures += 1
            warnings.warn(
                f"run-store entry {path.name} unreadable after retries "
                f"({exc}); treating the access as a miss",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        if not _checksum_ok(payload):
            self._quarantine(path, "payload checksum mismatch")
            return None
        return payload

    def get(
        self, ref: Union[str, ExperimentSpec, Mapping[str, Any]]
    ) -> Optional[RunResult]:
        """The stored :class:`RunResult`, or ``None`` on a miss.

        Counts a hit or a miss on the store's (and the process-wide)
        counters — the number the benchmark harness reports as
        ``store_hits``/``store_misses``.
        """
        payload = self.get_payload(ref)
        if payload is None:
            self.counters.misses += 1
            _GLOBAL_COUNTERS.misses += 1
            return None
        self.counters.hits += 1
        _GLOBAL_COUNTERS.hits += 1
        return RunResult.from_dict(payload["result"])

    def put(
        self,
        result: RunResult,
        fingerprint: Optional[str] = None,
    ) -> str:
        """Store ``result`` under its spec's fingerprint; returns the key.

        The result must carry its originating spec (``result.spec``) unless
        ``fingerprint`` is given by the caller who computed it.  Re-putting
        an existing fingerprint overwrites the stored result and appends a
        row to the entry's recomputation history (timestamp, wall-clock,
        total cost) — the raw material for the statistics layer's runtime
        CIs and determinism checks.
        """
        if fingerprint is None:
            if result.spec is None:
                raise ConfigurationError(
                    "cannot store a RunResult without provenance: the result "
                    "carries no spec and no fingerprint was supplied"
                )
            fingerprint = fingerprint_spec(result.spec)
        path = self.entry_path(fingerprint)
        previous = self.get_payload(fingerprint) if path.exists() else None
        history = list(previous.get("history", ())) if previous else []
        now = _utcnow_iso()
        history.append(
            {
                "written_at": now,
                "wall_seconds": float(result.total_elapsed_seconds),
                "total_cost": float(result.total_cost),
            }
        )
        payload = {
            "format": STORE_FORMAT,
            "schema_version": SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "written_at": previous["written_at"] if previous else now,
            "updated_at": now,
            "repro_version": __version__,
            "spec": result.spec,
            "result": result.to_dict(),
            "history": history,
        }
        payload["checksum"] = entry_checksum(payload)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_json(path, payload, site="store.write")
        except OSError as exc:
            # Graceful degradation: a persistently unwritable store must
            # not abort the run — the result was computed, the caller gets
            # it, only the cache is lost.
            self._note_write_failure(f"entry {fingerprint[:12]} write", exc)
            return fingerprint
        entries = self._load_index()
        entries[fingerprint] = self._entry_from_payload(payload)
        self._write_index()
        self.counters.writes += 1
        _GLOBAL_COUNTERS.writes += 1
        return fingerprint

    def delete(self, ref: Union[str, ExperimentSpec, Mapping[str, Any]]) -> bool:
        """Remove one entry; returns whether anything was deleted."""
        fingerprint = self._key(ref)
        path = self.entry_path(fingerprint)
        entries = self._load_index()
        removed = entries.pop(fingerprint, None) is not None
        try:
            path.unlink()
            removed = True
        except FileNotFoundError:
            pass
        if removed:
            self._write_index()
        return removed

    def list_runs(self) -> List[RunEntry]:
        """All index rows, newest write first (ties broken by fingerprint)."""
        return sorted(
            self._load_index().values(),
            key=lambda e: (e.written_at, e.fingerprint),
            reverse=True,
        )

    def find(self, prefix: str) -> List[RunEntry]:
        """Entries whose fingerprint starts with ``prefix`` (CLI ``show``)."""
        return [e for e in self.list_runs() if e.fingerprint.startswith(prefix)]

    #: Tmp siblings older than this are orphans of a crashed writer, not a
    #: live rename in flight (writes complete in well under a second).
    TMP_MAX_AGE_SECONDS = 3600.0

    def reap_tmp(
        self,
        max_age_seconds: float = TMP_MAX_AGE_SECONDS,
        dry_run: bool = False,
    ) -> List[Path]:
        """Remove stale ``.*.tmp-*`` files under the store root.

        A process killed between the tmp write and the ``os.replace`` —
        exactly the crash window the atomic-write protocol protects entry
        files from — leaves its tmp sibling behind forever.  ``gc`` calls
        this automatically; it is also available standalone (and via
        ``repro doctor --fix``).
        """
        return reap_stale_tmp([self.root], max_age_seconds, dry_run=dry_run)

    def gc(
        self,
        max_entries: Optional[int] = None,
        max_age_days: Optional[float] = None,
        dry_run: bool = False,
        now: Optional[datetime] = None,
        tmp_max_age_seconds: float = TMP_MAX_AGE_SECONDS,
    ) -> List[str]:
        """Expire entries by age and/or count; returns deleted fingerprints.

        ``max_age_days`` removes entries last written longer ago than that;
        ``max_entries`` then keeps only the newest N.  ``dry_run`` reports
        what *would* be deleted without touching disk.  Every run also
        reaps stale tmp files older than ``tmp_max_age_seconds`` (see
        :meth:`reap_tmp`).
        """
        self.reap_tmp(tmp_max_age_seconds, dry_run=dry_run)
        if max_entries is not None and max_entries < 0:
            raise ConfigurationError(f"max_entries must be >= 0, got {max_entries}")
        if max_age_days is not None and max_age_days < 0:
            raise ConfigurationError(f"max_age_days must be >= 0, got {max_age_days}")
        entries = self.list_runs()  # newest first
        doomed: Dict[str, RunEntry] = {}
        if max_age_days is not None:
            reference = now or datetime.now(timezone.utc)
            cutoff = reference - timedelta(days=max_age_days)
            doomed.update(
                (e.fingerprint, e)
                for e in entries
                if _parse_iso(e.written_at) < cutoff
            )
        if max_entries is not None:
            survivors = [e for e in entries if e.fingerprint not in doomed]
            doomed.update((e.fingerprint, e) for e in survivors[max_entries:])
        fingerprints = list(doomed)
        if not dry_run:
            for fingerprint in fingerprints:
                self.delete(fingerprint)
        return fingerprints


#: Per-process cache of env-configured default stores, keyed by the env
#: value, so repeated execution calls share one instance (and its index).
_DEFAULT_STORES: Dict[str, RunStore] = {}


def default_store() -> Optional[RunStore]:
    """The process default store from ``REPRO_RUN_STORE``, or ``None``.

    The variable names the store's root directory; unset or one of
    ``0/off/false/no/none/disabled`` (or empty) means "no default store" —
    execution entry points then run everything cold unless handed a store
    explicitly.
    """
    value = os.environ.get(ENV_RUN_STORE)
    if value is None or value.strip().lower() in _FALSEY_TOKENS:
        return None
    store = _DEFAULT_STORES.get(value)
    if store is None:
        store = RunStore(value)
        _DEFAULT_STORES[value] = store
    return store


def resolve_store(
    store: Union[None, bool, RunStore, StoreConfig, str, Path]
) -> Optional[RunStore]:
    """Normalise every execution-layer ``store=`` argument to a store or ``None``.

    ``None`` defers to :func:`default_store` (the ``REPRO_RUN_STORE``
    environment variable); ``False`` disables the store outright regardless
    of the environment; a :class:`RunStore` passes through; a
    :class:`StoreConfig` or path opens one.
    """
    if store is None:
        return default_store()
    if store is False:
        return None
    if store is True:
        raise ConfigurationError(
            "store=True is ambiguous: pass a path/StoreConfig/RunStore, or "
            "set REPRO_RUN_STORE and pass store=None"
        )
    if isinstance(store, RunStore):
        return store
    if isinstance(store, (StoreConfig, str, Path)):
        return RunStore(store)
    raise ConfigurationError(
        f"cannot interpret store={store!r} (expected None, False, a path, "
        "a StoreConfig, or a RunStore)"
    )
