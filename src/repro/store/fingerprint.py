"""Canonical experiment fingerprints.

The run store is content-addressed: one :class:`~repro.experiments.specs.ExperimentSpec`
plus its seed maps to one :func:`fingerprint_spec` digest, and that digest is
the storage key.  The fingerprint contract:

* **Canonical form, not construction form.**  The digest hashes
  :meth:`ExperimentSpec.canonical_dict` — sort-keyed at every level, with
  integral floats reduced to ints — so dict key order and ``10`` vs ``10.0``
  checkpoint positions cannot produce distinct fingerprints for the same
  experiment.
* **Only result-determining fields.**  ``name`` (a display label) and
  ``repeats`` (an expansion count; a fingerprint addresses exactly one
  seeded run) are excluded.  Everything else — algorithm, parameters,
  traffic, topology, simulation settings, and the seed — participates, so
  changing any of them changes the key.
* **Schema-versioned.**  ``schema_version`` is hashed along with the spec;
  bumping :data:`SCHEMA_VERSION` (when result semantics change
  incompatibly) invalidates every existing entry by construction, no
  migration pass needed.
* **Backend provenance.**  The digest covers the *effective* kernels, not
  just the requested names: a spec pinning ``matching_backend="numba"`` on
  a host where numba is missing or masked runs the pure-Python fallback,
  and its fingerprint differs from the same spec on a host where the
  compiled kernel is genuinely active.  Results are bit-identical across
  that divide by design, but wall-clock provenance is not, so the store
  keeps the runs distinguishable.  The same applies to SO-BMA's static
  solver backend, and — for randomized algorithms, where the two modes
  draw genuinely different randomness — to the effective ``rng_mode``.

Fingerprints are hex blake2b digests (160 bits), stable across processes,
platforms, and Python versions for a given :data:`SCHEMA_VERSION`.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Mapping, Union

from ..errors import ConfigurationError
from ..experiments.specs import ExperimentSpec, canonical_data
from ..matching import numba_backend_active
from ..matching.static_solver import resolve_solver_backend

__all__ = [
    "SCHEMA_VERSION",
    "canonical_json",
    "effective_kernels",
    "fingerprint_spec",
]

#: Version of the (spec canonicalisation, result serialisation) contract.
#: Bump whenever stored results become incompatible with freshly computed
#: ones; every existing fingerprint then misses and re-runs populate the
#: store under the new keys.
SCHEMA_VERSION = 1

#: Hex digest length = 2 * digest_size; 20 bytes keeps paths short while
#: making collisions (2^-80 birthday bound at billions of runs) a non-issue.
_DIGEST_SIZE = 20


def canonical_json(data: Any) -> str:
    """The canonical JSON text of plain spec data (sorted keys, no spaces).

    Canonicalisation (see :func:`repro.experiments.specs.canonical_data`)
    happens first, so permuted dicts and integral floats serialise to the
    same bytes; ``allow_nan=False`` guards against anything non-finite
    slipping through.
    """
    return json.dumps(
        canonical_data(data), sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def effective_kernels(spec: ExperimentSpec) -> Dict[str, str]:
    """The kernels a run of ``spec`` would actually execute on this host.

    Mirrors the requested-vs-effective provenance the engine records in
    ``RunResult.extra``: the ``"numba"`` matching backend resolves to
    ``"fast"`` when the compiled kernel is unavailable or masked, and
    SO-BMA's solver backend resolves through
    :func:`repro.matching.static_solver.resolve_solver_backend` (the
    ``"greedy"`` solver bypasses the blossom tier entirely).  Algorithms
    without a static solve carry no solver key, so flipping the solver
    default cannot invalidate, say, cached RBMA runs.
    """
    backend = spec.simulation.matching_backend
    kernel = backend
    if backend == "numba" and not numba_backend_active():
        kernel = "fast"
    kernels = {"matching_backend": backend, "matching_kernel": kernel}

    from ..core.registry import ALGORITHMS  # local: registries load late

    factory = ALGORITHMS.resolve(spec.algorithm.name)
    if getattr(factory, "requires_full_trace", False):
        if spec.algorithm.params.get("solver") == "greedy":
            kernels["solver_kernel"] = "greedy"
        else:
            kernels["solver_kernel"] = resolve_solver_backend(
                spec.algorithm.solver_backend
            )
    # RNG-mode provenance (randomized algorithms only): counter and stateful
    # runs draw different randomness, so they must never share a store cell.
    # Deterministic algorithms carry no key — flipping the rng default
    # cannot invalidate their cached runs.
    if getattr(factory, "uses_rng", False):
        from ..core.rng import resolve_rng_mode  # local: registries load late

        kernels["rng_kernel"] = resolve_rng_mode(spec.algorithm.rng_mode)
    return kernels


def fingerprint_spec(
    spec: Union[ExperimentSpec, Mapping[str, Any]],
    schema_version: int = SCHEMA_VERSION,
) -> str:
    """The content-address of one seeded run of ``spec``.

    Accepts a structured spec or its plain-dict form (as stored in
    ``RunResult.spec``).  Raises :class:`~repro.errors.ConfigurationError`
    for unseeded specs: a run without a seed is irreproducible, so it has
    no stable content to address.
    """
    if isinstance(spec, Mapping):
        spec = ExperimentSpec.from_dict(spec, validate=False)
    if spec.seed is None:
        raise ConfigurationError(
            "cannot fingerprint an unseeded spec: with seed=None every run "
            "draws fresh entropy, so there is no stable result to address"
        )
    data = spec.canonical_dict()
    # Display label and expansion count do not affect the computed result.
    data.pop("name", None)
    data.pop("repeats", None)
    payload = {
        "schema_version": schema_version,
        "kernels": effective_kernels(spec),
        "spec": data,
    }
    return hashlib.blake2b(
        canonical_json(payload).encode("utf-8"), digest_size=_DIGEST_SIZE
    ).hexdigest()
