"""Moving run stores between machines: tarball export / import.

A store is just its sharded entry files (the index is derived state), so a
portable snapshot is a gzipped tar of those files plus a small manifest.
:func:`export_store` writes one; :func:`import_store` merges one into an
existing store under an *identical-or-error* conflict policy: a fingerprint
present on both sides must carry the same result payload — same content
address, same bytes — otherwise the import aborts **before touching any
file**, listing every conflicting fingerprint.  A conflict means the two
stores disagree about a deterministic computation, which is a bug worth
stopping for, never something to silently overwrite.

Identical entries merge their recomputation histories (union, ordered by
timestamp) so cross-machine timing statistics keep every observation.
"""

from __future__ import annotations

import io
import json
import tarfile
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

from .._version import __version__
from ..errors import ConfigurationError, SimulationError
from .run_store import RunStore, _atomic_write_json, _utcnow_iso, entry_checksum

__all__ = ["export_store", "import_store", "MANIFEST_NAME"]

#: Manifest file name inside an exported tarball.
MANIFEST_NAME = "manifest.json"

#: Directory prefix of entry members inside the tarball (mirrors the store
#: layout so a tarball is readable by eye: ``runs/<shard>/<fp>.json``).
_ENTRY_PREFIX = "runs/"

#: Export format version, checked on import.
TRANSFER_FORMAT = 1


def export_store(store: RunStore, tarball) -> Dict[str, Any]:
    """Write every entry of ``store`` to a gzipped tarball; returns a summary.

    The tarball contains a :data:`MANIFEST_NAME` member (format version,
    entry count, fingerprints) followed by the raw entry files under
    ``runs/``.  Unreadable (torn) entry files are skipped and reported in
    the summary rather than poisoning the archive.
    """
    tarball = Path(tarball)
    fingerprints: List[str] = []
    skipped: List[str] = []
    payloads: List[Tuple[str, bytes]] = []
    if store.runs_dir.exists():
        for path in sorted(store.runs_dir.glob("*/*.json")):
            try:
                raw = path.read_text(encoding="utf-8")
                payload = json.loads(raw)
                fingerprint = str(payload["fingerprint"])
            except (OSError, json.JSONDecodeError, KeyError, TypeError):
                skipped.append(path.name)
                continue
            fingerprints.append(fingerprint)
            payloads.append((fingerprint, raw.encode("utf-8")))
    manifest = {
        "format": TRANSFER_FORMAT,
        "repro_version": __version__,
        "exported_at": _utcnow_iso(),
        "entries": len(fingerprints),
        "fingerprints": fingerprints,
    }
    tarball.parent.mkdir(parents=True, exist_ok=True)
    with tarfile.open(tarball, "w:gz") as tar:
        _add_bytes(tar, MANIFEST_NAME, json.dumps(manifest, indent=2).encode("utf-8"))
        for fingerprint, raw in payloads:
            shard = store.entry_path(fingerprint).parent.name
            _add_bytes(tar, f"{_ENTRY_PREFIX}{shard}/{fingerprint}.json", raw)
    return {"exported": len(fingerprints), "skipped": skipped, "path": str(tarball)}


def _add_bytes(tar: tarfile.TarFile, name: str, data: bytes) -> None:
    info = tarfile.TarInfo(name=name)
    info.size = len(data)
    tar.addfile(info, io.BytesIO(data))


def _read_members(tarball: Path) -> Dict[str, Dict[str, Any]]:
    """Fingerprint -> entry payload from the tarball (validated, in memory).

    The whole archive is read and validated **before** the caller writes
    anything, so a truncated download or a corrupt member can never leave a
    half-imported store.  Truncation mid-archive surfaces as
    :class:`~repro.errors.SimulationError` naming the member where the
    archive became unreadable.
    """
    entries: Dict[str, Dict[str, Any]] = {}
    try:
        tar = tarfile.open(tarball, "r:gz")
    except (OSError, EOFError, tarfile.TarError) as exc:
        raise ConfigurationError(f"cannot read store tarball {tarball}: {exc}") from exc
    with tar:
        manifest: Optional[Mapping[str, Any]] = None
        # Iterate incrementally (not getmembers()) so that when a truncated
        # archive dies mid-read we still know the nearest member by name.
        current: Optional[str] = None
        try:
            member = tar.next()
            while member is not None:
                current = member.name
                if member.isfile():
                    handle = tar.extractfile(member)
                    if handle is None:  # pragma: no cover - isfile() filtered
                        member = tar.next()
                        continue
                    data = handle.read()
                    if member.name == MANIFEST_NAME:
                        manifest = json.loads(data)
                    elif member.name.startswith(_ENTRY_PREFIX):
                        try:
                            payload = json.loads(data)
                            fingerprint = str(payload["fingerprint"])
                        except (json.JSONDecodeError, KeyError, TypeError) as exc:
                            raise SimulationError(
                                f"store tarball member {member.name!r} is not a "
                                f"valid run-store entry: {exc}; nothing was "
                                "imported"
                            ) from exc
                        entries[fingerprint] = payload
                member = tar.next()
        except (OSError, EOFError, tarfile.TarError) as exc:
            where = (
                f"at member {current!r}" if current is not None else "at the header"
            )
            raise SimulationError(
                f"store tarball {tarball} is truncated or corrupt ({where}: "
                f"{exc}); nothing was imported"
            ) from exc
        if manifest is None:
            raise ConfigurationError(
                f"{tarball} is not a run-store export (missing {MANIFEST_NAME})"
            )
        if manifest.get("format") != TRANSFER_FORMAT:
            raise ConfigurationError(
                f"unsupported store export format {manifest.get('format')!r} "
                f"(this version reads format {TRANSFER_FORMAT})"
            )
    return entries


def _merged_history(ours: Mapping[str, Any], theirs: Mapping[str, Any]) -> List[Dict]:
    """Union of two identical entries' recomputation histories, by timestamp."""
    seen = set()
    merged: List[Dict] = []
    rows = list(ours.get("history", ())) + list(theirs.get("history", ()))
    for row in sorted(rows, key=lambda r: str(r.get("written_at", ""))):
        key = json.dumps(row, sort_keys=True)
        if key in seen:
            continue
        seen.add(key)
        merged.append(dict(row))
    return merged


def import_store(store: RunStore, tarball) -> Dict[str, Any]:
    """Merge an exported tarball into ``store``; identical-or-error on conflict.

    Two passes: first every incoming entry is checked against the store —
    any fingerprint whose stored ``result`` differs from the incoming one
    aborts the whole import with :class:`~repro.errors.SimulationError`
    (listing the conflicting fingerprints) before a single file is written;
    only then are new entries written and identical duplicates' histories
    merged.  Ends with :meth:`RunStore.reindex` so the index reflects the
    imported entry files.  Returns ``{"imported", "merged", "unchanged"}``
    counts.
    """
    entries = _read_members(Path(tarball))
    conflicts: List[str] = []
    existing: Dict[str, Optional[Dict[str, Any]]] = {}
    for fingerprint, incoming in entries.items():
        store.entry_path(fingerprint)  # validates the fingerprint shape
        ours = store.get_payload(fingerprint)
        existing[fingerprint] = ours
        if ours is not None and ours.get("result") != incoming.get("result"):
            conflicts.append(fingerprint)
    if conflicts:
        listing = ", ".join(sorted(conflicts)[:5])
        more = len(conflicts) - min(len(conflicts), 5)
        raise SimulationError(
            f"store import aborted: {len(conflicts)} fingerprint(s) already "
            f"exist with different results ({listing}"
            + (f", and {more} more" if more else "")
            + "); the two stores disagree about a deterministic computation "
            "— nothing was imported"
        )
    imported = merged = unchanged = 0
    for fingerprint, incoming in entries.items():
        path = store.entry_path(fingerprint)
        ours = existing[fingerprint]
        if ours is None:
            path.parent.mkdir(parents=True, exist_ok=True)
            _atomic_write_json(path, incoming)
            imported += 1
            continue
        history = _merged_history(ours, incoming)
        if history == list(ours.get("history", ())):
            unchanged += 1
            continue
        payload = dict(ours)
        payload["history"] = history
        payload["updated_at"] = _utcnow_iso()
        payload["checksum"] = entry_checksum(payload)
        _atomic_write_json(path, payload)
        merged += 1
    store.reindex()
    return {"imported": imported, "merged": merged, "unchanged": unchanged}
