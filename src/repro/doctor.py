"""``repro doctor``: audit (and repair) run-store and work-queue directories.

Both the store and the queue are plain directories of JSON files mutated by
atomic renames, so every crash mode leaves a recognisable artefact behind:

* a writer killed between the tmp write and the rename leaves a stale
  ``.<name>.tmp-<pid>`` sibling;
* a queue worker killed after claiming leaves an expired lease (or an
  orphaned ``.lease`` file whose claim was already requeued);
* torn or bit-rotted entry files fail JSON parsing or their blake2b
  checksum;
* half-written task files in a queue cannot be parsed as task payloads.

:func:`audit_store` and :func:`audit_queue` walk a directory and report
every such artefact as a :class:`Finding`; with ``fix=True`` the safe
repairs run inline (reap stale tmp files, quarantine corrupt store entries,
drop orphaned leases, requeue expired claims, rebuild the store index) and
each finding records whether it was fixed.  The CLI front-end is
``repro doctor [--store DIR] [--queue DIR] [--fix]``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from .ioutil import reap_stale_tmp, stale_tmp_files
from .store.run_store import RunStore, _checksum_ok

__all__ = ["Finding", "DoctorReport", "audit_store", "audit_queue"]


@dataclass
class Finding:
    """One anomaly the doctor found (and possibly repaired)."""

    area: str  #: "store" or "queue"
    kind: str  #: machine-readable anomaly class (e.g. "stale_tmp")
    path: str  #: the offending file, relative to the audited root
    detail: str  #: human-readable explanation
    fixable: bool  #: whether ``--fix`` knows a safe repair
    fixed: bool = False  #: whether the repair ran (only with ``fix=True``)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "area": self.area,
            "kind": self.kind,
            "path": self.path,
            "detail": self.detail,
            "fixable": self.fixable,
            "fixed": self.fixed,
        }


@dataclass
class DoctorReport:
    """Everything one audit pass found, plus context for the CLI."""

    root: str
    area: str
    findings: List[Finding] = field(default_factory=list)
    info: Dict[str, Any] = field(default_factory=dict)

    def clean(self) -> bool:
        """True when nothing is wrong (or everything found was repaired)."""
        return all(f.fixed for f in self.findings)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "root": self.root,
            "area": self.area,
            "clean": self.clean(),
            "findings": [f.to_dict() for f in self.findings],
            "info": dict(self.info),
        }


def _rel(path: Path, root: Path) -> str:
    try:
        return str(path.relative_to(root))
    except ValueError:  # pragma: no cover - defensive: outside the root
        return str(path)


def _audit_tmp(
    report: DoctorReport,
    directories: List[Path],
    root: Path,
    max_age_seconds: float,
    fix: bool,
) -> None:
    stale = stale_tmp_files(directories, max_age_seconds)
    if fix and stale:
        reap_stale_tmp(directories, max_age_seconds)
    for path in stale:
        report.findings.append(
            Finding(
                area=report.area,
                kind="stale_tmp",
                path=_rel(path, root),
                detail=(
                    "orphaned tmp file from a writer killed mid-rename "
                    f"(older than {max_age_seconds:g}s)"
                ),
                fixable=True,
                fixed=fix,
            )
        )


# --------------------------------------------------------------------------- #
# Run store
# --------------------------------------------------------------------------- #


def audit_store(
    store: RunStore,
    fix: bool = False,
    tmp_max_age_seconds: Optional[float] = None,
) -> DoctorReport:
    """Audit a run store: stale tmp files, corrupt entries, stale index.

    With ``fix=True``: reaps the tmp files, quarantines the corrupt entries
    (via the store's own quarantine path, so counters and warnings behave
    exactly as they would mid-run), and rebuilds the index when it
    disagrees with the entry files on disk.
    """
    max_age = (
        store.TMP_MAX_AGE_SECONDS if tmp_max_age_seconds is None else tmp_max_age_seconds
    )
    report = DoctorReport(root=str(store.root), area="store")
    _audit_tmp(report, [store.root], store.root, max_age, fix)

    entries_on_disk = 0
    for path in sorted(store.runs_dir.glob("*/*.json")) if store.runs_dir.exists() else []:
        problem: Optional[str] = None
        payload: Optional[Dict[str, Any]] = None
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            problem = f"unreadable entry ({exc})"
        if payload is not None:
            fingerprint = payload.get("fingerprint")
            if fingerprint != path.stem:
                problem = (
                    f"fingerprint field {fingerprint!r} does not match "
                    f"file name {path.stem!r}"
                )
            elif not _checksum_ok(payload):
                problem = "payload checksum mismatch (bit rot or partial write)"
        if problem is None:
            entries_on_disk += 1
            continue
        fixed = False
        if fix:
            fixed = store._quarantine(path, f"doctor: {problem}") is not None
        report.findings.append(
            Finding(
                area="store",
                kind="corrupt_entry",
                path=_rel(path, store.root),
                detail=problem,
                fixable=True,
                fixed=fixed,
            )
        )

    index_entries: Optional[int] = None
    if store.index_path.exists():
        try:
            index_payload = json.loads(store.index_path.read_text(encoding="utf-8"))
            index_entries = len(index_payload.get("entries", {}))
        except (OSError, json.JSONDecodeError) as exc:
            fixed = False
            if fix:
                store.reindex()
                fixed = True
            report.findings.append(
                Finding(
                    area="store",
                    kind="corrupt_index",
                    path=_rel(store.index_path, store.root),
                    detail=f"unreadable index ({exc}); derived state, safe to rebuild",
                    fixable=True,
                    fixed=fixed,
                )
            )
    if index_entries is not None and index_entries != entries_on_disk:
        fixed = False
        if fix:
            store.reindex()
            fixed = True
        report.findings.append(
            Finding(
                area="store",
                kind="stale_index",
                path=_rel(store.index_path, store.root),
                detail=(
                    f"index lists {index_entries} entr"
                    f"{'y' if index_entries == 1 else 'ies'} but "
                    f"{entries_on_disk} healthy entry file(s) exist"
                ),
                fixable=True,
                fixed=fixed,
            )
        )

    quarantined = (
        sorted(p.name for p in store.quarantine_dir.iterdir())
        if store.quarantine_dir.is_dir()
        else []
    )
    report.info = {
        "entries": entries_on_disk,
        "quarantined": quarantined,
        "counters": store.counters.to_dict(),
    }
    return report


# --------------------------------------------------------------------------- #
# Work queue
# --------------------------------------------------------------------------- #


def _unparseable(path: Path) -> Optional[str]:
    """The parse problem for a JSON file, or ``None`` when it is healthy."""
    try:
        json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return str(exc)
    return None


def audit_queue(queue, fix: bool = False) -> DoctorReport:
    """Audit a work queue: orphaned leases, expired claims, torn files.

    ``queue`` is a :class:`~repro.exec.queue.WorkQueue`.  With ``fix=True``
    the repair is the queue's own maintenance pass —
    :meth:`~repro.exec.queue.WorkQueue.requeue_expired` — which also reaps
    stale tmp files, plus removal of orphaned lease files; half-written
    task files are *reported* but never deleted (they may carry the only
    copy of a task), and terminal decisions stay with ``requeue_expired``.
    """
    report = DoctorReport(root=str(queue.root), area="queue")
    now = time.time()

    _audit_tmp(
        report,
        [queue.tasks_dir, queue.claimed_dir, queue.results_dir, queue.failed_dir],
        queue.root,
        queue.TMP_MAX_AGE_SECONDS,
        fix=False,  # requeue_expired (below) is the fixer; avoid double-reap
    )

    claims: List[str] = []
    leases: List[str] = []
    if queue.claimed_dir.is_dir():
        for name in sorted(p.name for p in queue.claimed_dir.iterdir()):
            if name.endswith(".lease"):
                leases.append(name)
            elif name.endswith(".json"):
                claims.append(name)

    orphaned = [
        name for name in leases if name[: -len(".lease")] not in set(claims)
    ]
    expired: List[str] = []
    for name in claims:
        lease_path = queue.claimed_dir / f"{name}.lease"
        problem: Optional[str] = None
        try:
            lease = json.loads(lease_path.read_text(encoding="utf-8"))
            if float(lease.get("expires_at", 0)) < now:
                problem = (
                    f"lease expired {now - float(lease.get('expires_at', 0)):.0f}s "
                    "ago without a result"
                )
        except FileNotFoundError:
            try:
                age = now - (queue.claimed_dir / name).stat().st_mtime
            except OSError:  # pragma: no cover - vanished mid-audit
                continue
            if age > queue.lease_seconds:
                problem = f"claim is {age:.0f}s old and has no lease file"
        except (OSError, json.JSONDecodeError) as exc:
            problem = f"unreadable lease file ({exc})"
        if problem is not None:
            expired.append(name)
            report.findings.append(
                Finding(
                    area="queue",
                    kind="expired_claim",
                    path=_rel(queue.claimed_dir / name, queue.root),
                    detail=problem + "; requeue_expired will requeue or fail it",
                    fixable=True,
                )
            )

    for name in orphaned:
        fixed = False
        if fix:
            (queue.claimed_dir / name).unlink(missing_ok=True)
            fixed = True
        report.findings.append(
            Finding(
                area="queue",
                kind="orphaned_lease",
                path=_rel(queue.claimed_dir / name, queue.root),
                detail="lease file whose claim is gone (already requeued/completed)",
                fixable=True,
                fixed=fixed,
            )
        )

    for directory, kind in (
        (queue.tasks_dir, "half_written_task"),
        (queue.results_dir, "torn_result"),
        (queue.failed_dir, "torn_result"),
    ):
        if not directory.is_dir():
            continue
        for path in sorted(directory.glob("*.json")):
            problem = _unparseable(path)
            if problem is None:
                continue
            report.findings.append(
                Finding(
                    area="queue",
                    kind=kind,
                    path=_rel(path, queue.root),
                    detail=f"not valid JSON ({problem}); left in place for inspection",
                    fixable=False,
                )
            )

    if fix:
        queue.requeue_expired()
        # requeue_expired reaps tmp files and resolves expired claims; mark
        # those findings fixed now that the maintenance pass has run.
        for finding in report.findings:
            if finding.kind in ("stale_tmp", "expired_claim"):
                finding.fixed = True

    meta_problem = _unparseable(queue.root / "queue.json")
    if meta_problem is not None:
        report.findings.append(
            Finding(
                area="queue",
                kind="corrupt_meta",
                path="queue.json",
                detail=f"queue metadata unreadable ({meta_problem})",
                fixable=False,
            )
        )

    report.info = {
        "counts": queue.counts(),
        "counters": queue.counters.to_dict(),
    }
    return report
