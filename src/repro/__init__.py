"""repro — reproduction of "Optimizing Reconfigurable Optical Datacenters:
The Power of Randomization" (Bienkowski, Fuchssteiner, Schmid; SC 2023).

The package implements the paper's randomized online b-matching algorithm
(R-BMA) together with every substrate its evaluation depends on: datacenter
topologies, paging algorithms, dynamic and static b-matching, synthetic
datacenter workloads, a simulation engine, and analysis tools (offline
optimum, competitive ratios, adversarial traces).

Quickstart
----------
>>> from repro import MatchingConfig, RBMA, run_simulation
>>> from repro.topology import FatTreeTopology
>>> from repro.traffic import database_trace
>>> topo = FatTreeTopology(n_racks=100)
>>> trace = database_trace(n_nodes=100, n_requests=5_000, seed=0)
>>> algo = RBMA(topo, MatchingConfig(b=12, alpha=10), rng=0)
>>> result = run_simulation(algo, trace)
>>> result.total_routing_cost < 5_000 * topo.mean_distance()
True
"""

from ._version import __version__
from .config import MatchingConfig, SimulationConfig, SweepConfig
from .errors import (
    ConfigurationError,
    DegreeConstraintError,
    MatchingError,
    PagingError,
    ReproError,
    SimulationError,
    SolverError,
    TopologyError,
    TrafficError,
)
from .types import NodePair, Request, canonical_pair
from .core import (
    BMA,
    RBMA,
    GreedyBMA,
    ObliviousRouting,
    OnlineBMatchingAlgorithm,
    PredictiveBMA,
    StaticOfflineBMA,
    UniformBMatching,
    available_algorithms,
    make_algorithm,
)
from .matching import BMatching
from .simulation import (
    AggregateResult,
    ExperimentRunner,
    RunResult,
    RunSpec,
    run_simulation,
    run_sweep,
)

__all__ = [
    "__version__",
    # configuration
    "MatchingConfig",
    "SimulationConfig",
    "SweepConfig",
    # errors
    "ReproError",
    "ConfigurationError",
    "TopologyError",
    "TrafficError",
    "MatchingError",
    "DegreeConstraintError",
    "PagingError",
    "SimulationError",
    "SolverError",
    # primitives
    "Request",
    "NodePair",
    "canonical_pair",
    "BMatching",
    # algorithms
    "OnlineBMatchingAlgorithm",
    "RBMA",
    "BMA",
    "ObliviousRouting",
    "GreedyBMA",
    "StaticOfflineBMA",
    "UniformBMatching",
    "PredictiveBMA",
    "available_algorithms",
    "make_algorithm",
    # simulation
    "run_simulation",
    "run_sweep",
    "RunSpec",
    "RunResult",
    "AggregateResult",
    "ExperimentRunner",
]
