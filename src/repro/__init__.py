"""repro — reproduction of "Optimizing Reconfigurable Optical Datacenters:
The Power of Randomization" (Bienkowski, Fuchssteiner, Schmid; SC 2023).

The package implements the paper's randomized online b-matching algorithm
(R-BMA) together with every substrate its evaluation depends on: datacenter
topologies, paging algorithms, dynamic and static b-matching, synthetic
datacenter workloads, a simulation engine, and analysis tools (offline
optimum, competitive ratios, adversarial traces).

Quickstart
----------
Experiments are plain data: an :class:`ExperimentSpec` names the algorithm,
workload and topology, carries every parameter, and round-trips through JSON
(``spec.save_json("exp.json")`` / ``repro run exp.json``).

>>> from repro import ExperimentSpec
>>> spec = ExperimentSpec(
...     algorithm={"name": "rbma", "b": 12, "alpha": 10},
...     traffic={"name": "facebook-database",
...              "params": {"n_nodes": 100, "n_requests": 5_000}},
...     seed=0,
... )
>>> result = spec.execute()
>>> result.total_routing_cost > 0
True
>>> ExperimentSpec.from_dict(result.spec) == spec  # provenance travels along
True

Sweeps are cartesian grids over spec fields:

>>> specs = spec.expand({"algorithm.name": ["rbma", "bma"],
...                      "algorithm.b": [6, 12]})
>>> [s.label for s in specs]
['rbma (b: 6)', 'rbma (b: 12)', 'bma (b: 6)', 'bma (b: 12)']

The imperative API remains for hand-wired setups:

>>> from repro import MatchingConfig, RBMA, run_simulation
>>> from repro.topology import FatTreeTopology
>>> from repro.traffic import database_trace
>>> topo = FatTreeTopology(n_racks=100)
>>> trace = database_trace(n_nodes=100, n_requests=5_000, seed=0)
>>> algo = RBMA(topo, MatchingConfig(b=12, alpha=10), rng=0)
>>> run_simulation(algo, trace).total_routing_cost < 5_000 * topo.mean_distance()
True
"""

from ._version import __version__
from .config import MatchingConfig, SimulationConfig, SweepConfig
from .errors import (
    ConfigurationError,
    DegreeConstraintError,
    MatchingError,
    PagingError,
    ReproError,
    SimulationError,
    SolverError,
    TopologyError,
    TrafficError,
)
from .types import NodePair, Request, canonical_pair
from .core import (
    BMA,
    RBMA,
    GreedyBMA,
    ObliviousRouting,
    OnlineBMatchingAlgorithm,
    PredictiveBMA,
    StaticOfflineBMA,
    UniformBMatching,
    available_algorithms,
    make_algorithm,
)
from .matching import BMatching
from .experiments import (
    AlgorithmSpec,
    CostTraceObserver,
    ExperimentSpec,
    ProgressObserver,
    Registry,
    SimulationObserver,
    TopologySpec,
    TrafficSpec,
    ValidationObserver,
    expand_grid,
    spawn_seeds,
)
from .simulation import (
    AggregateResult,
    ExperimentRunner,
    RunResult,
    RunSpec,
    execute_experiment_spec,
    execute_run_spec,
    run_experiments,
    run_simulation,
    run_sweep,
)
from .store import (
    RunStore,
    StoreConfig,
    default_store,
    fingerprint_spec,
    resolve_store,
)

__all__ = [
    "__version__",
    # configuration
    "MatchingConfig",
    "SimulationConfig",
    "SweepConfig",
    # errors
    "ReproError",
    "ConfigurationError",
    "TopologyError",
    "TrafficError",
    "MatchingError",
    "DegreeConstraintError",
    "PagingError",
    "SimulationError",
    "SolverError",
    # primitives
    "Request",
    "NodePair",
    "canonical_pair",
    "BMatching",
    # algorithms
    "OnlineBMatchingAlgorithm",
    "RBMA",
    "BMA",
    "ObliviousRouting",
    "GreedyBMA",
    "StaticOfflineBMA",
    "UniformBMatching",
    "PredictiveBMA",
    "available_algorithms",
    "make_algorithm",
    # declarative experiments
    "Registry",
    "ExperimentSpec",
    "AlgorithmSpec",
    "TrafficSpec",
    "TopologySpec",
    "expand_grid",
    "spawn_seeds",
    # observers
    "SimulationObserver",
    "ProgressObserver",
    "ValidationObserver",
    "CostTraceObserver",
    # simulation
    "run_simulation",
    "run_sweep",
    "run_experiments",
    "execute_run_spec",
    "execute_experiment_spec",
    "RunSpec",
    "RunResult",
    "AggregateResult",
    "ExperimentRunner",
    # persistent run store
    "RunStore",
    "StoreConfig",
    "fingerprint_spec",
    "default_store",
    "resolve_store",
]
