"""Oblivious routing baseline: no reconfigurable links at all.

Every request is routed over the fixed network at cost ``ℓ_e``.  This is the
violet reference curve in the paper's routing-cost figures; the gap between
it and the other algorithms is the benefit of demand-aware reconfiguration.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..types import NodePair, Request
from .base import OnlineBMatchingAlgorithm

__all__ = ["ObliviousRouting"]


class ObliviousRouting(OnlineBMatchingAlgorithm):
    """Never touches the matching; all traffic stays on the fixed network."""

    name = "oblivious"
    supports_batch = True

    def _reconfigure(
        self,
        pair: NodePair,
        length: float,
        served_by_matching: bool,
        request: Request,
    ) -> tuple[Tuple[NodePair, ...], Tuple[NodePair, ...]]:
        return (), ()

    def serve_batch(self, requests) -> None:
        """Batched replay: one vectorised distance gather per segment.

        With an empty matching every request costs exactly its hop count, and
        hop counts are integers, so the numpy sum is bit-identical to the
        sequential accumulation of :meth:`serve`.
        """
        decoded = self._batch_arrays(requests)
        if decoded is None or len(self.matching):
            super().serve_batch(requests)
            return
        lengths = decoded[3]
        self.total_routing_cost += float(lengths.sum())
        self.requests_served += len(requests)
