"""Oblivious routing baseline: no reconfigurable links at all.

Every request is routed over the fixed network at cost ``ℓ_e``.  This is the
violet reference curve in the paper's routing-cost figures; the gap between
it and the other algorithms is the benefit of demand-aware reconfiguration.
"""

from __future__ import annotations

from typing import Tuple

from ..types import NodePair, Request
from .base import OnlineBMatchingAlgorithm

__all__ = ["ObliviousRouting"]


class ObliviousRouting(OnlineBMatchingAlgorithm):
    """Never touches the matching; all traffic stays on the fixed network."""

    name = "oblivious"

    def _reconfigure(
        self,
        pair: NodePair,
        length: float,
        served_by_matching: bool,
        request: Request,
    ) -> tuple[Tuple[NodePair, ...], Tuple[NodePair, ...]]:
        return (), ()
