"""Online b-matching algorithms — the paper's primary contribution.

* :class:`~repro.core.rbma.RBMA` — the paper's randomized online algorithm:
  the Theorem 1 reduction to the uniform case composed with the Theorem 2
  reduction to per-node paging, driven by the randomized marking algorithm.
* :class:`~repro.core.bma.BMA` — the deterministic counter-based online
  b-matching baseline the paper compares against [Bienkowski et al. 2020].
* :class:`~repro.core.static_offline.StaticOfflineBMA` — SO-BMA, a static
  maximum-weight b-matching over the whole trace.
* :class:`~repro.core.oblivious.ObliviousRouting` — no reconfigurable links.
* :class:`~repro.core.greedy.GreedyBMA` — a simple recency-based heuristic.
* :class:`~repro.core.predictive.PredictiveBMA` — prediction-augmented
  extension discussed as future work in the paper's §5.
"""

from .base import OnlineBMatchingAlgorithm, ServeOutcome
from .uniform import UniformBMatching
from .rbma import RBMA
from .bma import BMA
from .oblivious import ObliviousRouting
from .greedy import GreedyBMA
from .static_offline import StaticOfflineBMA
from .predictive import PredictiveBMA, SlidingWindowPredictor
from .hybrid import HybridBMA
from .rotor import RotorBMA, round_robin_schedule
from .registry import available_algorithms, make_algorithm, register_algorithm

__all__ = [
    "OnlineBMatchingAlgorithm",
    "ServeOutcome",
    "UniformBMatching",
    "RBMA",
    "BMA",
    "ObliviousRouting",
    "GreedyBMA",
    "StaticOfflineBMA",
    "PredictiveBMA",
    "SlidingWindowPredictor",
    "HybridBMA",
    "RotorBMA",
    "round_robin_schedule",
    "available_algorithms",
    "make_algorithm",
    "register_algorithm",
]
