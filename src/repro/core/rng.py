"""Counter-based (stateless) RNG for the randomized paging tier.

The paper's randomized marking pager needs one uniform bounded draw per
eviction.  The legacy implementation consumes a *stateful*
:class:`numpy.random.Generator`, which has two costs: replay code must
carry generator state across chunk boundaries (the reason streamed replay
of randomized algorithms historically needed fork bookkeeping), and no
draw can ever move inside a compiled batch kernel (the kernel cannot call
back into Python to advance the generator).

:class:`CounterRNG` removes the state.  Every draw is a pure function of
four integer coordinates::

    (root_seed, stream_id, request_index, draw_counter)

mapped onto NumPy's counter-based Philox4x64-10 bit generator: the 128-bit
Philox key is derived from ``(root_seed, stream_id)`` (splitmix64 mixing)
and the 256-bit Philox counter block encodes ``(draw_counter,
request_index)``, so the draw equals what a fresh
``Generator(Philox(counter=..., key=...)).integers(n)`` returns.  Replaying
any coordinate replays the draw; changing any coordinate gives an
independent stream.  Chunk size cannot matter because there is no carried
generator state at all.

Two bit-identical implementations are provided:

* :meth:`CounterRNG.integers` — the production path.  It drives NumPy's own
  C Philox implementation by resetting the bit generator's state to the
  draw coordinates before each draw, so per-draw cost stays at C speed.
* :func:`counter_bounded_draw` — a pure-integer reimplementation of the
  whole pipeline (Philox4x64-10 rounds, uint32 half-buffering, Lemire
  bounded rejection) written in the uint64-only style that compiles under
  ``@njit``, so future kernels can draw *inside* compiled code.  It is
  pinned bit-identical to the NumPy path by test
  (``tests/test_rng_counter.py``), including the ``n == 1`` (consumes
  nothing), ``n == 2**32`` (raw uint32) and ``n == 2**64`` (raw uint64)
  edge cases of NumPy's bounded-integer dispatch.

The ``rng_mode`` axis (:data:`RNG_MODES`, mirroring
``MATCHING_BACKENDS``/``SOLVER_BACKENDS``) selects between ``"counter"``
(this module, the default) and ``"stateful"`` (the legacy generator, kept
as the reference).  :func:`resolve_rng_mode` resolves a requested mode —
``None`` falls back to the ``REPRO_RNG_MODE`` environment variable and
then :data:`DEFAULT_RNG_MODE` — and is re-read per call so CI tiers can
flip the env var without reimporting.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

import numpy as np

from ..experiments.registry import Registry
from ..matching.numba_bmatching import NUMBA_AVAILABLE, njit

__all__ = [
    "RNG_MODES",
    "DEFAULT_RNG_MODE",
    "CounterRNG",
    "counter_bounded_draw",
    "derive_key",
    "resolve_rng_mode",
]

_MASK64 = (1 << 64) - 1


# --------------------------------------------------------------------------- #
# Key derivation (plain Python ints; construction-time only)
# --------------------------------------------------------------------------- #
def _splitmix64(x: int) -> int:
    """One splitmix64 finalisation step (full-avalanche 64-bit mixing)."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    z = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def derive_key(root_seed: int, stream_id: int = 0) -> Tuple[int, int]:
    """The 128-bit Philox key of stream ``stream_id`` under ``root_seed``.

    Splitmix64 mixing of both coordinates: any change to either produces an
    unrelated key, and the map is a pure function, so the same coordinates
    always address the same stream.
    """
    h = _splitmix64(root_seed & _MASK64)
    h = _splitmix64(h ^ _splitmix64(stream_id & _MASK64))
    k0 = _splitmix64(h)
    k1 = _splitmix64(k0 ^ h)
    return k0, k1


def _combine_streams(parent: int, child: int) -> int:
    """Derived stream id of child ``child`` under stream ``parent``.

    Hash-chained so nested ``stream()`` calls (algorithm -> per-node pager)
    stay collision-free without any registry of allocated ids.
    """
    return _splitmix64((parent & _MASK64) ^ _splitmix64((child & _MASK64) ^ 0xA5A5A5A5A5A5A5A5))


# --------------------------------------------------------------------------- #
# Pure-integer Philox + Lemire draw (``@njit``-compatible uint64 style)
# --------------------------------------------------------------------------- #
# Everything below operates exclusively on uint64 values (inputs are cast
# once at the public entry point) because numba's type unification of mixed
# signed/unsigned 64-bit arithmetic would otherwise promote to float64.
# When numba is absent the same code runs on numpy scalar arithmetic, whose
# intentional wraparound is silenced via ``np.errstate`` in the wrapper.

_U64_0 = np.uint64(0)
_U64_1 = np.uint64(1)
_U64_32 = np.uint64(32)
_U64_M32 = np.uint64(0xFFFFFFFF)
_U64_M64 = np.uint64(0xFFFFFFFFFFFFFFFF)
#: Philox4x64 round multipliers and Weyl key increments (Random123 constants).
_PHILOX_M0 = np.uint64(0xD2E7470EE14C6C93)
_PHILOX_M1 = np.uint64(0xCA5A826395121157)
_PHILOX_W0 = np.uint64(0x9E3779B97F4A7C15)
_PHILOX_W1 = np.uint64(0xBB67AE8584CAA73B)


@njit(cache=False)
def _mulhilo64(a, b):  # pragma: no cover - exercised via counter_bounded_draw
    """128-bit product of two uint64s as ``(high, low)`` uint64 words."""
    alo = a & _U64_M32
    ahi = a >> _U64_32
    blo = b & _U64_M32
    bhi = b >> _U64_32
    ll = alo * blo
    lh = alo * bhi
    hl = ahi * blo
    hh = ahi * bhi
    t = (ll >> _U64_32) + (lh & _U64_M32) + (hl & _U64_M32)
    lo = (ll & _U64_M32) | ((t & _U64_M32) << _U64_32)
    hi = hh + (lh >> _U64_32) + (hl >> _U64_32) + (t >> _U64_32)
    return hi, lo


@njit(cache=False)
def _philox_block(c0, c1, c2, c3, k0, k1):  # pragma: no cover - via public entry
    """One Philox4x64-10 block: 10 rounds, key bumped between rounds."""
    x0, x1, x2, x3 = c0, c1, c2, c3
    for r in range(10):
        hi0, lo0 = _mulhilo64(_PHILOX_M0, x0)
        hi1, lo1 = _mulhilo64(_PHILOX_M1, x2)
        x0 = hi1 ^ x1 ^ k0
        x1 = lo1
        x2 = hi0 ^ x3 ^ k1
        x3 = lo0
        if r < 9:
            k0 = k0 + _PHILOX_W0
            k1 = k1 + _PHILOX_W1
    return x0, x1, x2, x3


@njit(cache=False)
def _next_u64(blk, widx, w0, w1, w2, w3, c1, c2, k0, k1):  # pragma: no cover
    """Next uint64 of the draw's Philox stream (regenerating blocks as needed).

    NumPy's Philox state pre-increments the counter word ``c0`` before
    generating a block, so the first block of a draw uses ``c0 = 1``.
    """
    if widx == 4:
        blk = blk + _U64_1
        w0, w1, w2, w3 = _philox_block(blk, c1, c2, _U64_0, k0, k1)
        widx = 0
    if widx == 0:
        out = w0
    elif widx == 1:
        out = w1
    elif widx == 2:
        out = w2
    else:
        out = w3
    return out, blk, widx + 1, w0, w1, w2, w3


@njit(cache=False)
def _counter_draw(k0, k1, c1, c2, rng):  # pragma: no cover - via public entry
    """Bounded draw in ``[0, rng]`` (inclusive), NumPy-dispatch-exact.

    Replicates ``Generator.integers`` over a fresh Philox stream at counter
    ``[0, c1, c2, 0]``: ``rng == 0`` consumes nothing; ``rng == 2**32 - 1``
    is a raw uint32; ``rng < 2**32 - 1`` runs 32-bit Lemire rejection over
    half-buffered uint32s (low half first); ``rng == 2**64 - 1`` is a raw
    uint64; anything else runs 64-bit Lemire rejection.
    """
    if rng == _U64_0:
        return _U64_0
    blk = _U64_0
    widx = 4
    w0 = _U64_0
    w1 = _U64_0
    w2 = _U64_0
    w3 = _U64_0
    if rng == _U64_M64:
        out, blk, widx, w0, w1, w2, w3 = _next_u64(
            blk, widx, w0, w1, w2, w3, c1, c2, k0, k1
        )
        return out
    if rng <= _U64_M32:
        v, blk, widx, w0, w1, w2, w3 = _next_u64(
            blk, widx, w0, w1, w2, w3, c1, c2, k0, k1
        )
        cur = v & _U64_M32
        half = v >> _U64_32
        has_half = 1
        if rng == _U64_M32:
            return cur
        rng_excl = rng + _U64_1
        m = cur * rng_excl
        leftover = m & _U64_M32
        if leftover < rng_excl:
            threshold = (_U64_M32 - rng) % rng_excl
            while leftover < threshold:
                if has_half == 1:
                    cur = half
                    has_half = 0
                else:
                    v, blk, widx, w0, w1, w2, w3 = _next_u64(
                        blk, widx, w0, w1, w2, w3, c1, c2, k0, k1
                    )
                    cur = v & _U64_M32
                    half = v >> _U64_32
                    has_half = 1
                m = cur * rng_excl
                leftover = m & _U64_M32
        return m >> _U64_32
    rng_excl = rng + _U64_1
    v, blk, widx, w0, w1, w2, w3 = _next_u64(
        blk, widx, w0, w1, w2, w3, c1, c2, k0, k1
    )
    hi, lo = _mulhilo64(v, rng_excl)
    if lo < rng_excl:
        threshold = (_U64_M64 - rng) % rng_excl
        while lo < threshold:
            v, blk, widx, w0, w1, w2, w3 = _next_u64(
                blk, widx, w0, w1, w2, w3, c1, c2, k0, k1
            )
            hi, lo = _mulhilo64(v, rng_excl)
    return hi


def counter_bounded_draw(k0: int, k1: int, index: int, counter: int, n: int) -> int:
    """Pure-integer draw in ``[0, n)`` for key ``(k0, k1)`` at the coordinates.

    Bit-identical to :meth:`CounterRNG.integers` on the same key — certified
    by the pinned sweep in ``tests/test_rng_counter.py``.  The compiled body
    (:func:`_counter_draw`) is ``@njit``-compatible, so kernels that need
    in-kernel randomness can call it directly on uint64 operands; this
    wrapper only casts and, when running uncompiled, silences numpy's
    intentional uint64 wraparound warnings.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    args = (
        np.uint64(k0 & _MASK64),
        np.uint64(k1 & _MASK64),
        np.uint64(counter & _MASK64),
        np.uint64(index & _MASK64),
        np.uint64((n - 1) & _MASK64),
    )
    if NUMBA_AVAILABLE:  # pragma: no cover - compiled hosts only
        return int(_counter_draw(*args))
    with np.errstate(over="ignore"):
        return int(_counter_draw(*args))


# --------------------------------------------------------------------------- #
# CounterRNG: the production (NumPy-Philox-backed) draw path
# --------------------------------------------------------------------------- #
class CounterRNG:
    """Stateless bounded-draw source addressed by integer coordinates.

    Parameters
    ----------
    root_seed:
        The experiment-level seed.  ``None`` draws fresh entropy
        (irreproducible; allowed for parity with ``default_rng(None)`` but
        discouraged).
    stream_id:
        Which independent stream under ``root_seed`` this instance
        addresses.  Use :meth:`stream` to derive child streams (e.g. one
        per rack) without any coordination.

    Unlike a :class:`numpy.random.Generator`, instances carry **no draw
    state**: :meth:`integers` is a pure function of ``(root_seed,
    stream_id, index, counter)``, so any replay — request-by-request,
    batched, or streamed at an arbitrary chunk size — that presents the
    same coordinates reproduces the same draw, with nothing to fork, save,
    or restore at chunk boundaries.
    """

    __slots__ = ("root_seed", "stream_id", "key", "_bitgen", "_gen", "_state")

    def __init__(self, root_seed: Optional[int] = None, stream_id: int = 0):
        if root_seed is None:
            root_seed = int(np.random.SeedSequence().entropy) & _MASK64
        self.root_seed = int(root_seed)
        self.stream_id = int(stream_id)
        self.key = derive_key(self.root_seed, self.stream_id)
        key_arr = np.array(self.key, dtype=np.uint64)
        self._bitgen = np.random.Philox(key=key_arr)
        self._gen = np.random.Generator(self._bitgen)
        # Pre-built state template: only the two coordinate words change
        # per draw.  buffer_pos=4 / has_uint32=0 mark both buffers empty,
        # so every draw regenerates from the coordinates alone.
        self._state = {
            "bit_generator": "Philox",
            "state": {"counter": [0, 0, 0, 0], "key": [self.key[0], self.key[1]]},
            "buffer": np.zeros(4, dtype=np.uint64),
            "buffer_pos": 4,
            "has_uint32": 0,
            "uinteger": 0,
        }

    def integers(self, n: int, index: int, counter: int = 0) -> int:
        """Uniform draw in ``[0, n)`` at coordinates ``(index, counter)``.

        ``index`` is the caller's draw-sequence position (for the pagers:
        the number of eviction draws made so far, which every replay order
        reproduces identically); ``counter`` distinguishes multiple draws
        at the same index.
        """
        state = self._state
        ctr = state["state"]["counter"]
        ctr[1] = counter & _MASK64
        ctr[2] = index & _MASK64
        self._bitgen.state = state
        return int(self._gen.integers(n))

    def stream(self, stream_id: int) -> "CounterRNG":
        """An independent child stream (pure function of the coordinates)."""
        return CounterRNG(self.root_seed, _combine_streams(self.stream_id, stream_id))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CounterRNG root_seed={self.root_seed} stream_id={self.stream_id:#x}>"
        )


# --------------------------------------------------------------------------- #
# The rng_mode axis
# --------------------------------------------------------------------------- #
#: Name -> factory registry of RNG modes; a factory maps a root seed to the
#: draw source handed to the randomized paging tier.
RNG_MODES: Registry = Registry("rng mode")

#: Mode used when nothing is specified (``MatchingConfig.rng_mode`` left at
#: ``None`` and ``REPRO_RNG_MODE`` unset).
DEFAULT_RNG_MODE = "counter"


@RNG_MODES.register("stateful")
def _make_stateful(root_seed: Optional[int]) -> np.random.Generator:
    """The legacy carried-state generator (kept as the reference mode)."""
    return np.random.default_rng(root_seed)


@RNG_MODES.register("counter")
def _make_counter(root_seed: Optional[int]) -> CounterRNG:
    """The stateless counter mode (this module's default)."""
    return CounterRNG(root_seed)


def resolve_rng_mode(mode: Optional[str] = None) -> str:
    """The effective RNG mode for a requested (possibly ``None``) mode.

    ``None`` falls back to the ``REPRO_RNG_MODE`` environment variable
    (the knob behind the *stateful-rng* CI tier) and then
    :data:`DEFAULT_RNG_MODE`.  Unknown names — from either source — raise
    :class:`~repro.errors.ConfigurationError` with suggestions.  The
    environment is re-read on every call, mirroring
    :func:`repro.matching.numba_bmatching.numba_backend_active`.
    """
    if mode is None:
        mode = os.environ.get("REPRO_RNG_MODE", "").strip() or DEFAULT_RNG_MODE
    RNG_MODES.resolve(mode)
    return mode.lower()
