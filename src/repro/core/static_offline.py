"""SO-BMA — static offline maximum-weight b-matching baseline.

The paper's strongest comparison point is a *static* matching computed with
full knowledge of the trace: aggregate the demand of the whole request
sequence into pair weights, compute a maximum-weight b-matching once, install
it, and never reconfigure.  SO-BMA captures all spatial structure but no
temporal structure, which is why the paper observes it winning clearly on the
(temporally structure-free) Microsoft trace while being roughly on par with
the online algorithms on the Facebook traces.

Weights are the *routing-cost savings* of matching a pair: each request to a
pair of fixed-network length ``ℓ_e`` saves ``ℓ_e − 1`` when served by a
matching edge.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..config import MatchingConfig
from ..errors import ConfigurationError
from ..matching import (
    DEFAULT_SOLVER_BACKEND,
    greedy_b_matching,
    iterated_max_weight_b_matching,
    resolve_solver_backend,
)
from ..topology import Topology
from ..types import NodePair, Request
from .base import OnlineBMatchingAlgorithm

__all__ = ["StaticOfflineBMA"]


class StaticOfflineBMA(OnlineBMatchingAlgorithm):
    """Static offline maximum-weight b-matching (SO-BMA).

    Parameters
    ----------
    solver:
        ``"blossom"`` (default) computes ``b`` rounds of maximum-weight
        matching with the blossom algorithm, as in the paper; ``"greedy"``
        uses the 1/2-approximate greedy instead (much faster for large
        sweeps).  The blossom *kernel* is selected by
        ``config.solver_backend`` (see
        :data:`repro.matching.SOLVER_BACKENDS`); all kernels produce
        identical matchings.  After :meth:`fit`, :attr:`solver_provenance`
        records the requested backend and the kernel that actually ran
        (they differ exactly when the numba solver fell back to the array
        kernel), and the simulation engine copies that record into
        ``RunResult.extra``.
    """

    name = "so-bma"
    requires_full_trace = True
    supports_batch = True

    def __init__(
        self,
        topology: Topology,
        config: MatchingConfig,
        rng: Optional[np.random.Generator | int] = None,
        solver: str = "blossom",
    ):
        super().__init__(topology, config, rng)
        if solver not in ("blossom", "greedy"):
            raise ConfigurationError(f"unknown SO-BMA solver {solver!r}")
        self.solver = solver
        self.solver_provenance: Optional[Dict[str, str]] = None
        self._fitted = False

    def aggregate_demand(self, requests: Sequence[Request]) -> Dict[NodePair, float]:
        """Aggregate a trace into per-pair routing-cost savings.

        These are exactly the weights :meth:`fit` hands the static solver
        (pairs in first-occurrence order, which is the solver's tie-breaking
        order); exposed so benchmarks and analyses can time or inspect the
        solve separately from the aggregation.
        """
        decoded = self._batch_arrays(requests)
        if decoded is not None:
            return self._aggregate_arrays(decoded)
        weights: Dict[NodePair, float] = {}
        for request in requests:
            pair = self.topology.validate_pair(request.src, request.dst)
            saving = (self.topology.pair_length(pair) - 1.0) * request.size
            if saving <= 0:
                continue
            weights[pair] = weights.get(pair, 0.0) + saving
        return weights

    def fit(self, requests: Sequence[Request]) -> None:
        """Aggregate the trace into pair weights and install the best static matching."""
        weights = self.aggregate_demand(requests)

        if self.solver == "blossom":
            requested = self.config.solver_backend
            effective = resolve_solver_backend(requested)
            chosen = iterated_max_weight_b_matching(
                weights, self.topology.n_racks, self.config.b, backend=requested
            )
            self.solver_provenance = {
                "solver_backend": requested or DEFAULT_SOLVER_BACKEND,
                "solver_kernel": effective,
            }
        else:
            chosen = greedy_b_matching(weights, self.topology.n_racks, self.config.b)
            self.solver_provenance = {
                "solver_backend": "greedy",
                "solver_kernel": "greedy",
            }

        # Install the static matching; the one-time setup cost is charged to
        # reconfiguration so that total-cost comparisons remain honest even
        # though the paper's figures plot routing cost only.
        for pair in sorted(chosen):
            self.matching.add(*pair)
        self.total_reconfiguration_cost += len(chosen) * self.config.alpha
        self._fitted = True

    def _aggregate_arrays(self, decoded) -> Dict[NodePair, float]:
        """Vectorised per-pair saving totals, bit-identical to the loop form.

        Counts per pair come from one ``np.unique`` pass; savings are
        ``(ℓ - 1) * count`` with integer hop counts and unit sizes, so the
        products equal the sequential sums exactly.  Pairs are inserted in
        first-occurrence order — the order the request loop would build the
        dict in — because the downstream blossom solver's tie-breaking
        depends on graph insertion order.
        """
        n = self.topology.n_racks
        _lo, _hi, keys, _lengths = decoded
        unique_keys, first_index, counts = np.unique(
            keys, return_index=True, return_counts=True
        )
        order = np.argsort(first_index, kind="stable")
        unique_keys = unique_keys[order]
        counts = counts[order]
        u = unique_keys // n
        v = unique_keys % n
        savings = (self._distances[u, v] - 1.0) * counts
        return {
            (int(uu), int(vv)): float(s)
            for uu, vv, s in zip(u.tolist(), v.tolist(), savings.tolist())
            if s > 0
        }

    def serve_batch(self, requests) -> None:
        """Batched replay over the static matching: fully vectorised.

        The matching never changes after :meth:`fit`, so membership for the
        whole segment is a single lookup-table gather; costs are integers,
        keeping the numpy sums bit-identical to sequential serving.
        """
        decoded = self._batch_arrays(requests)
        if decoded is None or self.matching.marked_edges:
            super().serve_batch(requests)
            return
        n = self.topology.n_racks
        lo, hi, keys, lengths = decoded
        matched_lut = np.zeros(n * n, dtype=bool)
        for a, c in self.matching.edges:
            matched_lut[a * n + c] = True
        hits = matched_lut[keys]
        self.total_routing_cost += float(np.where(hits, 1.0, lengths).sum())
        self.requests_served += len(requests)
        self.matched_requests += int(hits.sum())

    @property
    def fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._fitted

    def _reconfigure(
        self,
        pair: NodePair,
        length: float,
        served_by_matching: bool,
        request: Request,
    ) -> tuple[Tuple[NodePair, ...], Tuple[NodePair, ...]]:
        return (), ()

    def _reset_policy_state(self) -> None:
        self._fitted = False
        self.solver_provenance = None
