"""R-BMA — the paper's randomized online (b, a)-matching algorithm.

R-BMA composes the two reductions of the paper:

* **Theorem 1 (reduction to the uniform case).**  For every node pair ``e``
  let ``k_e = ⌈α / ℓ_e⌉``.  Only every ``k_e``-th request to ``e`` (a
  *special* request) is forwarded to the uniform-case algorithm; R-BMA simply
  repeats the uniform algorithm's reconfiguration choices.  Intuitively, a
  pair must accumulate about ``α`` worth of fixed-network routing cost before
  it is worth touching the matching for it.
* **Theorem 2 (uniform case via paging).**  The uniform algorithm runs one
  paging instance of capacity ``b`` per rack (randomized marking by default)
  and keeps a pair matched iff it is cached at both endpoints, with lazy
  (marked) removals.

With the randomized marking / Young paging algorithm this yields the
``O((1 + ℓ_max/α)·log(b/(b−a+1)))`` competitive ratio of Corollary 3, an
exponential improvement over the best deterministic algorithm (Θ(b)).
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np

from ..config import MatchingConfig
from ..errors import SimulationError
from ..paging.registry import PagingFactory, make_paging_factory
from ..topology import Topology
from ..types import NodePair, Request
from .base import OnlineBMatchingAlgorithm
from .uniform import PerNodePagingMatcher

__all__ = ["RBMA"]


class RBMA(OnlineBMatchingAlgorithm):
    """Randomized online b-matching algorithm (the paper's contribution).

    Parameters
    ----------
    topology, config, rng:
        See :class:`~repro.core.base.OnlineBMatchingAlgorithm`.
    paging_policy:
        Name of the per-node paging policy (default ``"marking"``, the
        randomized marking algorithm).  Other registered policies (``"lru"``,
        ``"fifo"``, ``"lfu"``, ``"random"``) are available for ablations.
    paging_factory:
        Alternatively, an explicit factory ``(capacity, rng) -> PagingAlgorithm``
        overriding ``paging_policy``.
    """

    name = "rbma"
    supports_batch = True

    def __init__(
        self,
        topology: Topology,
        config: MatchingConfig,
        rng: Optional[np.random.Generator | int] = None,
        paging_policy: str = "marking",
        paging_factory: Optional[PagingFactory] = None,
    ):
        super().__init__(topology, config, rng)
        self._paging_policy = paging_policy
        self._factory = paging_factory or make_paging_factory(paging_policy)
        self._matcher = PerNodePagingMatcher(self.matching, self._factory, self.rng)
        # Per-pair request counters driving the Theorem 1 filter, keyed by the
        # int-encoded canonical pair (u * n + v) so the batched replay loop
        # never builds tuples for filtered requests.  Thresholds k_e depend
        # only on the pair's fixed-network length and alpha, so they are
        # computed lazily and memoised per distinct length.
        self._counters: Dict[int, int] = {}
        self._threshold_by_length: Dict[float, int] = {}

    # ------------------------------------------------------------------ #
    # Theorem 1 filter
    # ------------------------------------------------------------------ #
    def threshold(self, length: float) -> int:
        """``k_e = ⌈α / ℓ_e⌉`` for a pair with fixed-network length ``ℓ_e``."""
        k = self._threshold_by_length.get(length)
        if k is None:
            k = max(1, math.ceil(self.config.alpha / max(length, 1.0)))
            self._threshold_by_length[length] = k
        return k

    def pending_count(self, pair: NodePair) -> int:
        """Requests to ``pair`` seen since its last special request."""
        return self._counters.get(pair[0] * self.topology.n_racks + pair[1], 0)

    # ------------------------------------------------------------------ #
    # Policy
    # ------------------------------------------------------------------ #
    def _reconfigure(
        self,
        pair: NodePair,
        length: float,
        served_by_matching: bool,
        request: Request,
    ) -> tuple[Tuple[NodePair, ...], Tuple[NodePair, ...]]:
        key = pair[0] * self.topology.n_racks + pair[1]
        count = self._counters.get(key, 0) + 1
        if count < self.threshold(length):
            self._counters[key] = count
            return (), ()
        # Special request: forward to the uniform-case machinery and restart
        # the pair's counter.
        self._counters[key] = 0
        return self._matcher.process(pair)

    def serve_batch(self, requests) -> None:
        """Batched replay: filtered requests stay inside one tight loop.

        Reads the trace arrays directly and tests matching membership on
        int-encoded pairs; only *special* requests (those passing the
        Theorem 1 filter) touch the paging machinery.  Cost accounting,
        randomness consumption, and raised errors are exactly those of
        request-by-request :meth:`serve` calls.
        """
        matching = self.matching
        edge_keys = getattr(matching, "edge_keys", None)
        decoded = self._batch_arrays(requests)
        if edge_keys is None or decoded is None:
            super().serve_batch(requests)
            return
        n = self.topology.n_racks
        _lo, _hi, keys_arr, lengths_arr = decoded
        keys = keys_arr.tolist()
        lengths = lengths_arr.tolist()
        # Theorem 1 thresholds k_e = max(1, ceil(alpha / max(l, 1))) for the
        # whole segment in one vectorised pass (np.ceil of the identical
        # float division matches math.ceil exactly).
        thresholds = np.maximum(
            1, np.ceil(self.config.alpha / np.maximum(lengths_arr, 1.0)).astype(np.int64)
        ).tolist()

        counters = self._counters
        process = self._matcher.process
        alpha = self.config.alpha
        b = self.config.b
        routing = self.total_routing_cost
        reconf = self.total_reconfiguration_cost
        served = self.requests_served
        matched = self.matched_requests
        try:
            for key, length, k in zip(keys, lengths, thresholds):
                hit = key in edge_keys
                count = counters.get(key, 0) + 1
                if count < k:
                    counters[key] = count
                    n_changes = 0
                else:
                    counters[key] = 0
                    before = matching.additions + matching.removals
                    pair = (key // n, key % n)
                    process(pair)
                    n_changes = matching.additions + matching.removals - before
                    if n_changes and matching.degree(pair[0]) > b:
                        raise SimulationError(
                            f"{self.name}: degree bound violated at node {pair[0]}"
                        )
                routing += 1.0 if hit else length
                if n_changes:
                    reconf += n_changes * alpha
                served += 1
                if hit:
                    matched += 1
        finally:
            self.total_routing_cost = routing
            self.total_reconfiguration_cost = reconf
            self.requests_served = served
            self.matched_requests = matched

    def _reset_policy_state(self) -> None:
        self._matcher = PerNodePagingMatcher(self.matching, self._factory, self.rng)
        self._counters.clear()

    def _on_matching_rebound(self, backend: str) -> None:
        self._matcher.matching = self.matching

    # ------------------------------------------------------------------ #
    # Introspection helpers (used by analysis / tests)
    # ------------------------------------------------------------------ #
    @property
    def matcher(self) -> PerNodePagingMatcher:
        """The underlying uniform-case machinery (per-node pagers)."""
        return self._matcher

    def theoretical_upper_bound(self) -> float:
        """Corollary 3 upper bound for this instance's parameters."""
        from ..paging.bounds import rbma_upper_bound

        return rbma_upper_bound(
            self.config.b,
            self.config.effective_a,
            self.topology.max_distance(),
            self.config.alpha,
        )
