"""R-BMA — the paper's randomized online (b, a)-matching algorithm.

R-BMA composes the two reductions of the paper:

* **Theorem 1 (reduction to the uniform case).**  For every node pair ``e``
  let ``k_e = ⌈α / ℓ_e⌉``.  Only every ``k_e``-th request to ``e`` (a
  *special* request) is forwarded to the uniform-case algorithm; R-BMA simply
  repeats the uniform algorithm's reconfiguration choices.  Intuitively, a
  pair must accumulate about ``α`` worth of fixed-network routing cost before
  it is worth touching the matching for it.
* **Theorem 2 (uniform case via paging).**  The uniform algorithm runs one
  paging instance of capacity ``b`` per rack (randomized marking by default)
  and keeps a pair matched iff it is cached at both endpoints, with lazy
  (marked) removals.

With the randomized marking / Young paging algorithm this yields the
``O((1 + ℓ_max/α)·log(b/(b−a+1)))`` competitive ratio of Corollary 3, an
exponential improvement over the best deterministic algorithm (Θ(b)).
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np

from ..config import MatchingConfig
from ..errors import SimulationError
from ..paging.registry import PagingFactory, make_paging_factory
from ..topology import Topology
from ..types import NodePair, Request
from .base import OnlineBMatchingAlgorithm
from .uniform import PerNodePagingMatcher

__all__ = ["RBMA"]


class RBMA(OnlineBMatchingAlgorithm):
    """Randomized online b-matching algorithm (the paper's contribution).

    Parameters
    ----------
    topology, config, rng:
        See :class:`~repro.core.base.OnlineBMatchingAlgorithm`.
    paging_policy:
        Name of the per-node paging policy (default ``"marking"``, the
        randomized marking algorithm).  Other registered policies (``"lru"``,
        ``"fifo"``, ``"lfu"``, ``"random"``) are available for ablations.
    paging_factory:
        Alternatively, an explicit factory ``(capacity, rng) -> PagingAlgorithm``
        overriding ``paging_policy``.
    """

    name = "rbma"
    supports_batch = True
    uses_rng = True

    def __init__(
        self,
        topology: Topology,
        config: MatchingConfig,
        rng: Optional[np.random.Generator | int] = None,
        paging_policy: str = "marking",
        paging_factory: Optional[PagingFactory] = None,
    ):
        super().__init__(topology, config, rng)
        self._paging_policy = paging_policy
        self._factory = paging_factory or make_paging_factory(paging_policy)
        self._matcher = PerNodePagingMatcher(self.matching, self._factory, self._paging_rng())
        # Per-pair request counters driving the Theorem 1 filter, keyed by the
        # int-encoded canonical pair (u * n + v) so the batched replay loop
        # never builds tuples for filtered requests.  On the numba backend
        # the counters live in a persistent dense int64 array instead (the
        # store the compiled scan kernel indexes); exactly one of the two
        # stores is in use at a time.  Thresholds k_e depend only on the
        # pair's fixed-network length and alpha, so they are computed lazily
        # and memoised per distinct length.
        self._counters: Dict[int, int] = {}
        self._counters_arr: Optional[np.ndarray] = None
        self._threshold_by_length: Dict[float, int] = {}

    def _configure_counter_store(self) -> None:
        """Dense counters on the numba kernel, the dict elsewhere.

        Called only while no requests have been served (rebind/reset), so
        both stores are empty and the swap is purely structural.
        """
        if getattr(self.matching, "member_lut", None) is not None:
            n = self.topology.n_racks
            self._counters_arr = np.zeros(n * n, dtype=np.int64)
        else:
            self._counters_arr = None

    # ------------------------------------------------------------------ #
    # Theorem 1 filter
    # ------------------------------------------------------------------ #
    def threshold(self, length: float) -> int:
        """``k_e = ⌈α / ℓ_e⌉`` for a pair with fixed-network length ``ℓ_e``."""
        k = self._threshold_by_length.get(length)
        if k is None:
            k = max(1, math.ceil(self.config.alpha / max(length, 1.0)))
            self._threshold_by_length[length] = k
        return k

    def pending_count(self, pair: NodePair) -> int:
        """Requests to ``pair`` seen since its last special request."""
        key = pair[0] * self.topology.n_racks + pair[1]
        if self._counters_arr is not None:
            return int(self._counters_arr[key])
        return self._counters.get(key, 0)

    # ------------------------------------------------------------------ #
    # Policy
    # ------------------------------------------------------------------ #
    def _reconfigure(
        self,
        pair: NodePair,
        length: float,
        served_by_matching: bool,
        request: Request,
    ) -> tuple[Tuple[NodePair, ...], Tuple[NodePair, ...]]:
        key = pair[0] * self.topology.n_racks + pair[1]
        counters_arr = self._counters_arr
        if counters_arr is not None:
            count = int(counters_arr[key]) + 1
            if count < self.threshold(length):
                counters_arr[key] = count
                return (), ()
            counters_arr[key] = 0
            return self._matcher.process(pair)
        count = self._counters.get(key, 0) + 1
        if count < self.threshold(length):
            self._counters[key] = count
            return (), ()
        # Special request: forward to the uniform-case machinery and restart
        # the pair's counter.
        self._counters[key] = 0
        return self._matcher.process(pair)

    def serve_batch(self, requests) -> None:
        """Batched replay: filtered requests stay inside one tight loop.

        Reads the trace arrays directly and tests matching membership on
        int-encoded pairs; only *special* requests (those passing the
        Theorem 1 filter) touch the paging machinery.  On the numba backend
        the filtered-request loop runs inside the compiled
        :func:`~repro.matching.numba_bmatching.rbma_scan` kernel and only
        special requests return to Python.  Cost accounting, randomness
        consumption, and raised errors are exactly those of
        request-by-request :meth:`serve` calls on every backend.
        """
        matching = self.matching
        edge_keys = getattr(matching, "edge_keys", None)
        decoded = self._batch_arrays(requests)
        if edge_keys is None or decoded is None:
            super().serve_batch(requests)
            return
        member = getattr(matching, "member_lut", None)
        if member is not None:
            self._serve_batch_compiled(member, decoded)
            return
        n = self.topology.n_racks
        _lo, _hi, keys_arr, lengths_arr = decoded
        keys = keys_arr.tolist()
        lengths = lengths_arr.tolist()
        # Theorem 1 thresholds k_e = max(1, ceil(alpha / max(l, 1))) for the
        # whole segment in one vectorised pass (np.ceil of the identical
        # float division matches math.ceil exactly).
        thresholds = np.maximum(
            1, np.ceil(self.config.alpha / np.maximum(lengths_arr, 1.0)).astype(np.int64)
        ).tolist()

        counters = self._counters
        process = self._matcher.process
        alpha = self.config.alpha
        b = self.config.b
        routing = self.total_routing_cost
        reconf = self.total_reconfiguration_cost
        served = self.requests_served
        matched = self.matched_requests
        try:
            for key, length, k in zip(keys, lengths, thresholds):
                hit = key in edge_keys
                count = counters.get(key, 0) + 1
                if count < k:
                    counters[key] = count
                    n_changes = 0
                else:
                    counters[key] = 0
                    before = matching.additions + matching.removals
                    pair = (key // n, key % n)
                    process(pair)
                    n_changes = matching.additions + matching.removals - before
                    if n_changes and matching.degree(pair[0]) > b:
                        raise SimulationError(
                            f"{self.name}: degree bound violated at node {pair[0]}"
                        )
                routing += 1.0 if hit else length
                if n_changes:
                    reconf += n_changes * alpha
                served += 1
                if hit:
                    matched += 1
        finally:
            self.total_routing_cost = routing
            self.total_reconfiguration_cost = reconf
            self.requests_served = served
            self.matched_requests = matched

    def _serve_batch_compiled(self, member, decoded) -> None:
        """Numba-backend segment driver around :func:`rbma_scan`.

        The per-pair request counters live in the persistent dense array
        configured at rebind (:meth:`_configure_counter_store`) — the same
        store :meth:`serve` and :meth:`pending_count` use in numba mode, so
        no per-segment sync or O(n^2) allocation is needed.  Special
        requests — the only ones that touch the paging machinery and its
        randomness — are handled in Python exactly as the pure loop does.
        """
        from ..matching.numba_bmatching import rbma_scan

        matching = self.matching
        n = self.topology.n_racks
        _lo, _hi, keys_arr, lengths_arr = decoded
        keys = np.ascontiguousarray(keys_arr, dtype=np.int64)
        lengths = np.ascontiguousarray(lengths_arr, dtype=np.float64)
        thresholds = np.maximum(
            1, np.ceil(self.config.alpha / np.maximum(lengths, 1.0)).astype(np.int64)
        )
        if self._counters_arr is None:
            self._configure_counter_store()
        counters = self._counters_arr

        process = self._matcher.process
        alpha = self.config.alpha
        b = self.config.b
        routing = self.total_routing_cost
        reconf = self.total_reconfiguration_cost
        served = self.requests_served
        matched = self.matched_requests
        n_requests = len(keys)
        i = 0
        try:
            while i < n_requests:
                i, routing, served, matched = rbma_scan(
                    keys, lengths, thresholds, member, counters,
                    i, routing, served, matched,
                )
                if i >= n_requests:
                    break
                # Special request at i (its counter was reset by the scan):
                # membership must be read before process() mutates it.
                key = int(keys[i])
                hit = bool(member[key])
                pair = (key // n, key % n)
                before = matching.additions + matching.removals
                process(pair)
                n_changes = matching.additions + matching.removals - before
                if n_changes and matching.degree(pair[0]) > b:
                    raise SimulationError(
                        f"{self.name}: degree bound violated at node {pair[0]}"
                    )
                routing += 1.0 if hit else float(lengths[i])
                if n_changes:
                    reconf += n_changes * alpha
                served += 1
                if hit:
                    matched += 1
                i += 1
        finally:
            self.total_routing_cost = float(routing)
            self.total_reconfiguration_cost = float(reconf)
            self.requests_served = int(served)
            self.matched_requests = int(matched)

    def _reset_policy_state(self) -> None:
        self._matcher = PerNodePagingMatcher(self.matching, self._factory, self._paging_rng())
        self._counters.clear()
        self._configure_counter_store()

    def _on_matching_rebound(self, backend: str) -> None:
        self._matcher.matching = self.matching
        self._configure_counter_store()

    # ------------------------------------------------------------------ #
    # Introspection helpers (used by analysis / tests)
    # ------------------------------------------------------------------ #
    @property
    def matcher(self) -> PerNodePagingMatcher:
        """The underlying uniform-case machinery (per-node pagers)."""
        return self._matcher

    def theoretical_upper_bound(self) -> float:
        """Corollary 3 upper bound for this instance's parameters."""
        from ..paging.bounds import rbma_upper_bound

        return rbma_upper_bound(
            self.config.b,
            self.config.effective_a,
            self.topology.max_distance(),
            self.config.alpha,
        )
