"""Robust prediction-augmented algorithm (consistency/robustness combiner).

The paper's §5 asks for algorithms that "leverage certain predictions about
future demands, without losing the worst-case guarantees".  The standard way
to get both is to *combine* two online algorithms — here the prediction-based
:class:`~repro.core.predictive.PredictiveBMA` and the worst-case-safe
:class:`~repro.core.rbma.RBMA` — and follow whichever has accumulated lower
cost, switching with hysteresis so the switching overhead stays bounded
(the classic "follow the better expert with doubling" argument gives a
constant-factor overhead over the better of the two).

Mechanically, the combiner runs both algorithms in simulation on the same
request stream (each maintains its own virtual matching) and keeps the *real*
installed matching synchronised with the currently followed algorithm's
virtual matching.  Routing cost is paid according to the real matching;
reconfiguration cost is paid for every real edge change, including the bulk
change at a switch.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..config import MatchingConfig
from ..errors import ConfigurationError
from ..topology import Topology
from ..types import NodePair, Request
from .base import OnlineBMatchingAlgorithm
from .predictive import PredictiveBMA
from .rbma import RBMA

__all__ = ["HybridBMA"]


class HybridBMA(OnlineBMatchingAlgorithm):
    """Follow-the-cheaper combination of PredictiveBMA and R-BMA.

    Parameters
    ----------
    switch_factor:
        Hysteresis factor: the combiner switches to the other algorithm only
        when the followed algorithm's virtual cost exceeds the other's by
        this factor (default 2.0, the doubling rule).
    period, window:
        Forwarded to the internal :class:`PredictiveBMA`.
    """

    name = "hybrid"

    def __init__(
        self,
        topology: Topology,
        config: MatchingConfig,
        rng: Optional[np.random.Generator | int] = None,
        switch_factor: float = 2.0,
        period: int = 1000,
        window: int = 2000,
    ):
        super().__init__(topology, config, rng)
        if switch_factor < 1.0:
            raise ConfigurationError(f"switch_factor must be >= 1, got {switch_factor}")
        self.switch_factor = float(switch_factor)
        self._period = period
        self._window = window
        self._make_experts()

    def _make_experts(self) -> None:
        child_seed = int(self.rng.integers(2**63 - 1))
        self._robust = RBMA(self.topology, self.config, rng=child_seed)
        self._predictive = PredictiveBMA(
            self.topology, self.config, period=self._period, window=self._window
        )
        self._following: OnlineBMatchingAlgorithm = self._robust
        self._switches = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def following(self) -> str:
        """Name of the currently followed expert algorithm."""
        return self._following.name

    @property
    def switches(self) -> int:
        """Number of times the combiner changed which expert it follows."""
        return self._switches

    @property
    def expert_costs(self) -> Tuple[float, float]:
        """Virtual total costs of (robust, predictive) experts."""
        return self._robust.total_cost, self._predictive.total_cost

    # ------------------------------------------------------------------ #
    # Policy
    # ------------------------------------------------------------------ #
    def _reconfigure(
        self,
        pair: NodePair,
        length: float,
        served_by_matching: bool,
        request: Request,
    ) -> tuple[Tuple[NodePair, ...], Tuple[NodePair, ...]]:
        # Advance both experts on their own virtual matchings.
        self._robust.serve(request)
        self._predictive.serve(request)

        other = self._predictive if self._following is self._robust else self._robust
        if self._following.total_cost > self.switch_factor * max(other.total_cost, 1.0):
            self._following = other
            self._switches += 1

        # Synchronise the real matching with the followed expert's matching.
        # On the fast kernel, diff the int-encoded edge sets directly (sorted
        # int keys order exactly like sorted canonical pairs); otherwise fall
        # back to tuple snapshots.
        target_matching = self._following.matching
        target_keys = getattr(target_matching, "edge_keys", None)
        current_keys = getattr(self.matching, "edge_keys", None)
        if target_keys is not None and current_keys is not None:
            n = self.matching.n_nodes
            removed = tuple((k // n, k % n) for k in sorted(current_keys - target_keys))
            added = tuple((k // n, k % n) for k in sorted(target_keys - current_keys))
        else:
            target = set(target_matching.edges)
            current = set(self.matching.edges)
            removed = tuple(sorted(current - target))
            added = tuple(sorted(target - current))
        for edge in removed:
            self.matching.remove(*edge)
        for edge in added:
            self.matching.add(*edge)
        return added, removed

    def _reset_policy_state(self) -> None:
        self._make_experts()

    def _on_matching_rebound(self, backend: str) -> None:
        # The experts' virtual matchings drive the real one's contents; keep
        # all three on the same kernel so a backend comparison exercises the
        # whole combiner.  Rebinding consumes no randomness.
        self._robust.rebind_matching_backend(backend)
        self._predictive.rebind_matching_backend(backend)
