"""Robust prediction-augmented algorithm (consistency/robustness combiner).

The paper's §5 asks for algorithms that "leverage certain predictions about
future demands, without losing the worst-case guarantees".  The standard way
to get both is to *combine* two online algorithms — here the prediction-based
:class:`~repro.core.predictive.PredictiveBMA` and the worst-case-safe
:class:`~repro.core.rbma.RBMA` — and follow whichever has accumulated lower
cost, switching with hysteresis so the switching overhead stays bounded
(the classic "follow the better expert with doubling" argument gives a
constant-factor overhead over the better of the two).

Mechanically, the combiner runs both algorithms in simulation on the same
request stream (each maintains its own virtual matching) and keeps the *real*
installed matching synchronised with the currently followed algorithm's
virtual matching.  Routing cost is paid according to the real matching;
reconfiguration cost is paid for every real edge change, including the bulk
change at a switch.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..config import MatchingConfig
from ..errors import ConfigurationError, SimulationError
from ..matching.numba_bmatching import hybrid_scan, lut_diff
from ..topology import Topology
from ..types import NodePair, Request
from .base import OnlineBMatchingAlgorithm
from .predictive import PredictiveBMA
from .rbma import RBMA

__all__ = ["HybridBMA"]


class HybridBMA(OnlineBMatchingAlgorithm):
    """Follow-the-cheaper combination of PredictiveBMA and R-BMA.

    Parameters
    ----------
    switch_factor:
        Hysteresis factor: the combiner switches to the other algorithm only
        when the followed algorithm's virtual cost exceeds the other's by
        this factor (default 2.0, the doubling rule).
    period, window:
        Forwarded to the internal :class:`PredictiveBMA`.
    """

    name = "hybrid"
    supports_batch = True
    uses_rng = True

    def __init__(
        self,
        topology: Topology,
        config: MatchingConfig,
        rng: Optional[np.random.Generator | int] = None,
        switch_factor: float = 2.0,
        period: int = 1000,
        window: int = 2000,
    ):
        super().__init__(topology, config, rng)
        if switch_factor < 1.0:
            raise ConfigurationError(f"switch_factor must be >= 1, got {switch_factor}")
        self.switch_factor = float(switch_factor)
        self._period = period
        self._window = window
        self._make_experts()

    def _make_experts(self) -> None:
        child_seed = int(self.rng.integers(2**63 - 1))
        self._robust = RBMA(self.topology, self.config, rng=child_seed)
        self._predictive = PredictiveBMA(
            self.topology, self.config, period=self._period, window=self._window
        )
        # Fresh experts start on the default kernel; keep them on the
        # combiner's backend so reset() after a rebind (where the engine's
        # own rebind is a no-op and _on_matching_rebound never fires) does
        # not silently drop the experts back to the fast kernel.
        self._robust.rebind_matching_backend(self._matching_backend)
        self._predictive.rebind_matching_backend(self._matching_backend)
        self._following: OnlineBMatchingAlgorithm = self._robust
        self._switches = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def following(self) -> str:
        """Name of the currently followed expert algorithm."""
        return self._following.name

    @property
    def switches(self) -> int:
        """Number of times the combiner changed which expert it follows."""
        return self._switches

    @property
    def expert_costs(self) -> Tuple[float, float]:
        """Virtual total costs of (robust, predictive) experts."""
        return self._robust.total_cost, self._predictive.total_cost

    # ------------------------------------------------------------------ #
    # Policy
    # ------------------------------------------------------------------ #
    def _reconfigure(
        self,
        pair: NodePair,
        length: float,
        served_by_matching: bool,
        request: Request,
    ) -> tuple[Tuple[NodePair, ...], Tuple[NodePair, ...]]:
        # Advance both experts on their own virtual matchings.
        self._robust.serve(request)
        self._predictive.serve(request)

        other = self._predictive if self._following is self._robust else self._robust
        if self._following.total_cost > self.switch_factor * max(other.total_cost, 1.0):
            self._following = other
            self._switches += 1

        # Synchronise the real matching with the followed expert's matching.
        # On the fast kernel, diff the int-encoded edge sets directly (sorted
        # int keys order exactly like sorted canonical pairs); otherwise fall
        # back to tuple snapshots.
        target_matching = self._following.matching
        target_keys = getattr(target_matching, "edge_keys", None)
        current_keys = getattr(self.matching, "edge_keys", None)
        if target_keys is not None and current_keys is not None:
            n = self.matching.n_nodes
            removed = tuple((k // n, k % n) for k in sorted(current_keys - target_keys))
            added = tuple((k // n, k % n) for k in sorted(target_keys - current_keys))
        else:
            target = set(target_matching.edges)
            current = set(self.matching.edges)
            removed = tuple(sorted(current - target))
            added = tuple(sorted(target - current))
        for edge in removed:
            self.matching.remove(*edge)
        for edge in added:
            self.matching.add(*edge)
        return added, removed

    def serve_batch(self, requests) -> None:
        """Batch driver: experts advance in one tight loop, synced incrementally.

        The combiner's switch rule compares the experts' cumulative costs
        after *every* request, so the experts cannot be stepped over whole
        segments without changing switch timing; instead the driver runs the
        whole segment in a single loop that skips the combiner's own
        Request/ServeOutcome wrappers and — the actual hot cost of
        :meth:`serve` — replaces the per-request full edge-set diff with an
        incremental sync: while no switch happens, the real matching equals
        the followed expert's virtual matching, so the expert's own
        ``ServeOutcome`` already lists exactly the edges the real matching
        must add and remove.  A full key-set diff runs only on the (rare)
        switch steps.  Costs, randomness, and raised errors are identical to
        request-by-request serving.
        """
        matching = self.matching
        edge_keys = getattr(matching, "edge_keys", None)
        decoded = self._batch_arrays(requests)
        if edge_keys is None or decoded is None:
            super().serve_batch(requests)
            return
        if (
            getattr(matching, "member_lut", None) is not None
            and getattr(self._robust.matching, "member_lut", None) is not None
            and getattr(self._predictive.matching, "member_lut", None) is not None
        ):
            self._serve_batch_compiled(decoded)
            return
        n = self.topology.n_racks
        lo, hi, keys_arr, lengths_arr = decoded
        keys = keys_arr.tolist()
        lengths = lengths_arr.tolist()
        los = lo.tolist()
        his = hi.tolist()

        robust = self._robust
        predictive = self._predictive
        factor = self.switch_factor
        alpha = self.config.alpha
        b = self.config.b
        routing = self.total_routing_cost
        reconf = self.total_reconfiguration_cost
        served = self.requests_served
        matched = self.matched_requests
        try:
            for key, u, v, length in zip(keys, los, his, lengths):
                hit = key in edge_keys
                request = Request(u, v)
                robust_outcome = robust.serve(request)
                predictive_outcome = predictive.serve(request)

                following = self._following
                other = predictive if following is robust else robust
                before = matching.additions + matching.removals
                if following.total_cost > factor * max(other.total_cost, 1.0):
                    self._following = other
                    self._switches += 1
                    # Full edge-set diff on switch steps.  On the numba
                    # backend both matchings expose membership LUTs and the
                    # diff runs compiled (ascending key order == sorted
                    # canonical pairs); otherwise diff the int key sets.
                    member = getattr(matching, "member_lut", None)
                    target_member = getattr(other.matching, "member_lut", None)
                    if member is not None and target_member is not None:
                        removed_keys, added_keys = lut_diff(member, target_member)
                        for k in removed_keys:
                            matching.remove(k // n, k % n)
                        for k in added_keys:
                            matching.add(k // n, k % n)
                    else:
                        target_keys = getattr(other.matching, "edge_keys", None)
                        if target_keys is None:
                            target_keys = {
                                a * n + c for a, c in other.matching.edges
                            }
                        for k in sorted(edge_keys - target_keys):
                            matching.remove(k // n, k % n)
                        for k in sorted(target_keys - edge_keys):
                            matching.add(k // n, k % n)
                else:
                    outcome = (
                        robust_outcome if following is robust else predictive_outcome
                    )
                    for edge in outcome.edges_removed:
                        matching.remove(*edge)
                    for edge in outcome.edges_added:
                        matching.add(*edge)
                n_changes = matching.additions + matching.removals - before
                if n_changes and matching.degree(u) > b:
                    raise SimulationError(
                        f"{self.name}: degree bound violated at node {u}"
                    )
                routing += 1.0 if hit else length
                if n_changes:
                    reconf += n_changes * alpha
                served += 1
                if hit:
                    matched += 1
        finally:
            self.total_routing_cost = routing
            self.total_reconfiguration_cost = reconf
            self.requests_served = served
            self.matched_requests = matched

    def _serve_batch_compiled(self, decoded) -> None:
        """Numba-backend segment driver around :func:`hybrid_scan`.

        The kernel advances both virtual experts through requests that
        provably change no matching — robust non-special (dense counter
        bump), predictive non-reconfiguring (period position bump), no
        switch — accumulating all three cost streams in the pure loop's
        exact per-request order.  *Event* requests (special / reconfigure /
        switch) return to Python and run the pure loop's full body through
        the experts' own ``serve``, after the predictor has been fed the
        kernel-committed observations via ``observe_batch`` (bit-exact to
        sequential ``observe`` calls by that method's contract).  No draws
        happen inside the kernel: robust eviction randomness only fires on
        special requests, which are always handled in Python.
        """
        matching = self.matching
        robust = self._robust
        predictive = self._predictive
        predictor = predictive.predictor
        n = self.topology.n_racks
        lo, hi, keys_arr, lengths_arr = decoded
        keys = np.ascontiguousarray(keys_arr, dtype=np.int64)
        lengths = np.ascontiguousarray(lengths_arr, dtype=np.float64)
        # Robust's Theorem 1 thresholds, exactly as RBMA computes them.
        rthresh = np.maximum(
            1, np.ceil(self.config.alpha / np.maximum(lengths, 1.0)).astype(np.int64)
        )
        if robust._counters_arr is None:
            robust._configure_counter_store()
        rcounters = robust._counters_arr
        rmember = robust.matching.member_lut
        pmember = predictive.matching.member_lut
        member = matching.member_lut
        edge_keys = matching.edge_keys
        keys_list = keys.tolist()
        lengths_list = lengths.tolist()
        los = lo.tolist()
        his = hi.tolist()
        # Predictor savings max(l - 1, 0) * size, unit sizes in batch replay.
        savings = np.maximum(lengths - 1.0, 0.0).tolist()

        factor = self.switch_factor
        period = predictive.period
        alpha = self.config.alpha
        b = self.config.b
        routing = self.total_routing_cost
        reconf = self.total_reconfiguration_cost
        served = self.requests_served
        matched = self.matched_requests
        n_requests = len(keys_list)
        i = 0
        flushed = 0
        try:
            while i < n_requests:
                (
                    i, r_routing, r_served, r_matched,
                    p_routing, p_served, p_matched, p_since,
                    routing, served, matched,
                ) = hybrid_scan(
                    keys, lengths, rthresh, rcounters, rmember, pmember, member,
                    1 if self._following is robust else 0,
                    factor, period, predictive._since_reconfig,
                    robust.total_routing_cost, robust.total_reconfiguration_cost,
                    robust.requests_served, robust.matched_requests,
                    predictive.total_routing_cost, predictive.total_reconfiguration_cost,
                    predictive.requests_served, predictive.matched_requests,
                    routing, served, matched, i,
                )
                # Commit the experts' kernel-advanced state before anything
                # can observe it (the event body calls their serve()).
                robust.total_routing_cost = float(r_routing)
                robust.requests_served = int(r_served)
                robust.matched_requests = int(r_matched)
                predictive.total_routing_cost = float(p_routing)
                predictive.requests_served = int(p_served)
                predictive.matched_requests = int(p_matched)
                predictive._since_reconfig = int(p_since)
                if i > flushed:
                    predictor.observe_batch(
                        [(los[j], his[j]) for j in range(flushed, i)],
                        savings[flushed:i],
                    )
                flushed = i + 1  # the event request observes inside serve()
                if i >= n_requests:
                    break
                # Event request: the pure loop's full per-request body.
                key = keys_list[i]
                u = los[i]
                v = his[i]
                hit = key in edge_keys
                request = Request(u, v)
                robust_outcome = robust.serve(request)
                predictive_outcome = predictive.serve(request)
                following = self._following
                other = predictive if following is robust else robust
                before = matching.additions + matching.removals
                if following.total_cost > factor * max(other.total_cost, 1.0):
                    self._following = other
                    self._switches += 1
                    removed_keys, added_keys = lut_diff(
                        member, other.matching.member_lut
                    )
                    for k in removed_keys:
                        matching.remove(k // n, k % n)
                    for k in added_keys:
                        matching.add(k // n, k % n)
                else:
                    outcome = (
                        robust_outcome if following is robust else predictive_outcome
                    )
                    for edge in outcome.edges_removed:
                        matching.remove(*edge)
                    for edge in outcome.edges_added:
                        matching.add(*edge)
                n_changes = matching.additions + matching.removals - before
                if n_changes and matching.degree(u) > b:
                    raise SimulationError(
                        f"{self.name}: degree bound violated at node {u}"
                    )
                routing += 1.0 if hit else lengths_list[i]
                if n_changes:
                    reconf += n_changes * alpha
                served += 1
                if hit:
                    matched += 1
                i += 1
        finally:
            self.total_routing_cost = float(routing)
            self.total_reconfiguration_cost = float(reconf)
            self.requests_served = int(served)
            self.matched_requests = int(matched)

    def _reset_policy_state(self) -> None:
        self._make_experts()

    def _on_matching_rebound(self, backend: str) -> None:
        # The experts' virtual matchings drive the real one's contents; keep
        # all three on the same kernel so a backend comparison exercises the
        # whole combiner.  Rebinding consumes no randomness.
        self._robust.rebind_matching_backend(backend)
        self._predictive.rebind_matching_backend(backend)
