"""Name-based registry of online b-matching algorithms.

The sweep runner and the benchmark harness describe experiments by algorithm
name (``"rbma"``, ``"bma"``, ``"so-bma"``, ``"oblivious"``, ...); the registry
turns those names into configured instances.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

import numpy as np

from ..config import MatchingConfig
from ..errors import ConfigurationError
from ..topology import Topology
from .base import OnlineBMatchingAlgorithm
from .bma import BMA
from .greedy import GreedyBMA
from .hybrid import HybridBMA
from .oblivious import ObliviousRouting
from .predictive import PredictiveBMA
from .rbma import RBMA
from .rotor import RotorBMA
from .static_offline import StaticOfflineBMA
from .uniform import UniformBMatching

__all__ = ["register_algorithm", "make_algorithm", "available_algorithms", "AlgorithmFactory"]

#: Signature of an algorithm factory.
AlgorithmFactory = Callable[..., OnlineBMatchingAlgorithm]

_REGISTRY: Dict[str, AlgorithmFactory] = {}


def register_algorithm(name: str, factory: AlgorithmFactory) -> None:
    """Register an algorithm constructor under ``name`` (lower-cased)."""
    key = name.lower()
    if key in _REGISTRY:
        raise ConfigurationError(f"algorithm {name!r} is already registered")
    _REGISTRY[key] = factory


def available_algorithms() -> list[str]:
    """Names of all registered algorithms, sorted."""
    return sorted(_REGISTRY)


def make_algorithm(
    name: str,
    topology: Topology,
    config: MatchingConfig,
    rng: Optional[np.random.Generator | int] = None,
    **kwargs: Any,
) -> OnlineBMatchingAlgorithm:
    """Instantiate a registered algorithm by name.

    Examples
    --------
    >>> from repro.topology import LeafSpineTopology
    >>> from repro.config import MatchingConfig
    >>> algo = make_algorithm("rbma", LeafSpineTopology(8), MatchingConfig(b=2, alpha=2))
    >>> algo.name
    'rbma'
    """
    key = name.lower()
    if key not in _REGISTRY:
        raise ConfigurationError(
            f"unknown algorithm {name!r}; available: {', '.join(available_algorithms())}"
        )
    return _REGISTRY[key](topology, config, rng, **kwargs)


register_algorithm("rbma", RBMA)
register_algorithm("bma", BMA)
register_algorithm("oblivious", ObliviousRouting)
register_algorithm("greedy", GreedyBMA)
register_algorithm("so-bma", StaticOfflineBMA)
register_algorithm("sobma", StaticOfflineBMA)
register_algorithm("uniform", UniformBMatching)
register_algorithm("predictive", PredictiveBMA)
register_algorithm("rotor", RotorBMA)
register_algorithm("hybrid", HybridBMA)
