"""Name-based registry of online b-matching algorithms.

The sweep runner and the benchmark harness describe experiments by algorithm
name (``"rbma"``, ``"bma"``, ``"so-bma"``, ``"oblivious"``, ...); the registry
turns those names into configured instances.  The registry itself is an
instance of the generic :class:`repro.experiments.Registry`; the module-level
``register_algorithm`` / ``make_algorithm`` / ``available_algorithms``
functions are kept as thin shims over it.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from ..config import MatchingConfig
from ..experiments.registry import Registry
from ..topology import Topology
from .base import OnlineBMatchingAlgorithm
from .bma import BMA
from .greedy import GreedyBMA
from .hybrid import HybridBMA
from .oblivious import ObliviousRouting
from .predictive import PredictiveBMA
from .rbma import RBMA
from .rotor import RotorBMA
from .static_offline import StaticOfflineBMA
from .uniform import UniformBMatching

__all__ = [
    "ALGORITHMS",
    "register_algorithm",
    "make_algorithm",
    "available_algorithms",
    "AlgorithmFactory",
]

#: Signature of an algorithm factory.
AlgorithmFactory = Callable[..., OnlineBMatchingAlgorithm]

#: The algorithm registry — the single source of truth for algorithm names.
ALGORITHMS: Registry[OnlineBMatchingAlgorithm] = Registry("algorithm")


def register_algorithm(name: str, factory: AlgorithmFactory) -> None:
    """Register an algorithm constructor under ``name`` (lower-cased)."""
    ALGORITHMS.register(name, factory)


def available_algorithms() -> list[str]:
    """Names of all registered algorithms, sorted."""
    return ALGORITHMS.names()


def make_algorithm(
    name: str,
    topology: Topology,
    config: MatchingConfig,
    rng: Optional[np.random.Generator | int] = None,
    **kwargs: Any,
) -> OnlineBMatchingAlgorithm:
    """Instantiate a registered algorithm by name.

    Examples
    --------
    >>> from repro.topology import LeafSpineTopology
    >>> from repro.config import MatchingConfig
    >>> algo = make_algorithm("rbma", LeafSpineTopology(8), MatchingConfig(b=2, alpha=2))
    >>> algo.name
    'rbma'
    """
    return ALGORITHMS.build(name, topology, config, rng, **kwargs)


ALGORITHMS.register("rbma", RBMA)
ALGORITHMS.register("bma", BMA)
ALGORITHMS.register("oblivious", ObliviousRouting)
ALGORITHMS.register("greedy", GreedyBMA)
ALGORITHMS.register("so-bma", StaticOfflineBMA, aliases=("sobma",))
ALGORITHMS.register("uniform", UniformBMatching)
ALGORITHMS.register("predictive", PredictiveBMA)
ALGORITHMS.register("rotor", RotorBMA)
ALGORITHMS.register("hybrid", HybridBMA)
