"""Eviction-free greedy heuristic.

A pair is added to the matching once it has accumulated ``threshold`` worth of
fixed-network routing cost *and* both endpoints still have spare matching
capacity; matched edges are never evicted.  The heuristic demonstrates why
eviction matters: it performs well early (it grabs the heaviest pairs first on
skewed traffic) but cannot adapt once the matching fills up, so it falls
behind R-BMA and BMA on workloads whose hot pairs drift over time.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..config import MatchingConfig
from ..topology import Topology
from ..types import NodePair, Request
from .base import OnlineBMatchingAlgorithm

__all__ = ["GreedyBMA"]


class GreedyBMA(OnlineBMatchingAlgorithm):
    """Threshold-triggered, eviction-free greedy online b-matching.

    Parameters
    ----------
    threshold:
        Accumulated fixed-network cost a pair must pay before it is added to
        the matching; defaults to ``α`` (the same break-even point used by
        R-BMA and BMA).
    """

    name = "greedy"

    def __init__(
        self,
        topology: Topology,
        config: MatchingConfig,
        rng: Optional[np.random.Generator | int] = None,
        threshold: Optional[float] = None,
    ):
        super().__init__(topology, config, rng)
        self.threshold = float(config.alpha if threshold is None else threshold)
        self._counters: Dict[NodePair, float] = {}

    def _reconfigure(
        self,
        pair: NodePair,
        length: float,
        served_by_matching: bool,
        request: Request,
    ) -> tuple[Tuple[NodePair, ...], Tuple[NodePair, ...]]:
        if served_by_matching:
            return (), ()
        total = self._counters.get(pair, 0.0) + length * request.size
        self._counters[pair] = total
        if total < self.threshold:
            return (), ()
        if not self.matching.has_capacity(*pair):
            return (), ()
        self.matching.add(*pair)
        self._counters.pop(pair, None)
        return (pair,), ()

    def _reset_policy_state(self) -> None:
        self._counters.clear()
