"""Eviction-free greedy heuristic.

A pair is added to the matching once it has accumulated ``threshold`` worth of
fixed-network routing cost *and* both endpoints still have spare matching
capacity; matched edges are never evicted.  The heuristic demonstrates why
eviction matters: it performs well early (it grabs the heaviest pairs first on
skewed traffic) but cannot adapt once the matching fills up, so it falls
behind R-BMA and BMA on workloads whose hot pairs drift over time.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..config import MatchingConfig
from ..errors import SimulationError
from ..topology import Topology
from ..types import NodePair, Request
from .base import OnlineBMatchingAlgorithm

__all__ = ["GreedyBMA"]


class GreedyBMA(OnlineBMatchingAlgorithm):
    """Threshold-triggered, eviction-free greedy online b-matching.

    Parameters
    ----------
    threshold:
        Accumulated fixed-network cost a pair must pay before it is added to
        the matching; defaults to ``α`` (the same break-even point used by
        R-BMA and BMA).
    """

    name = "greedy"
    supports_batch = True

    def __init__(
        self,
        topology: Topology,
        config: MatchingConfig,
        rng: Optional[np.random.Generator | int] = None,
        threshold: Optional[float] = None,
    ):
        super().__init__(topology, config, rng)
        self.threshold = float(config.alpha if threshold is None else threshold)
        self._counters: Dict[NodePair, float] = {}

    def _reconfigure(
        self,
        pair: NodePair,
        length: float,
        served_by_matching: bool,
        request: Request,
    ) -> tuple[Tuple[NodePair, ...], Tuple[NodePair, ...]]:
        if served_by_matching:
            return (), ()
        total = self._counters.get(pair, 0.0) + length * request.size
        self._counters[pair] = total
        if total < self.threshold:
            return (), ()
        if not self.matching.has_capacity(*pair):
            return (), ()
        self.matching.add(*pair)
        self._counters.pop(pair, None)
        return (pair,), ()

    def serve_batch(self, requests) -> None:
        """Batched replay: counter bookkeeping on int-encoded pairs."""
        matching = self.matching
        edge_keys = getattr(matching, "edge_keys", None)
        decoded = self._batch_arrays(requests)
        if edge_keys is None or decoded is None:
            super().serve_batch(requests)
            return
        lo, hi, keys_arr, lengths_arr = decoded
        keys = keys_arr.tolist()
        lengths = lengths_arr.tolist()
        los = lo.tolist()
        his = hi.tolist()

        counters = self._counters
        threshold = self.threshold
        alpha = self.config.alpha
        b = self.config.b
        routing = self.total_routing_cost
        reconf = self.total_reconfiguration_cost
        served = self.requests_served
        matched = self.matched_requests
        try:
            for key, u, v, length in zip(keys, los, his, lengths):
                if key in edge_keys:
                    routing += 1.0
                    served += 1
                    matched += 1
                    continue
                pair = (u, v)
                total = counters.get(pair, 0.0) + length
                counters[pair] = total
                if total >= threshold and matching.has_capacity(u, v):
                    matching.add(u, v)
                    counters.pop(pair, None)
                    if matching.degree(u) > b:
                        raise SimulationError(
                            f"{self.name}: degree bound violated at node {u}"
                        )
                    routing += length
                    reconf += alpha
                else:
                    routing += length
                served += 1
        finally:
            self.total_routing_cost = routing
            self.total_reconfiguration_cost = reconf
            self.requests_served = served
            self.matched_requests = matched

    def _reset_policy_state(self) -> None:
        self._counters.clear()
