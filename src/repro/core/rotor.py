"""Rotor — demand-oblivious rotating matchings (RotorNet/Sirius-style baseline).

The paper's related work contrasts *demand-aware* reconfigurable networks
(ProjecToR, and the b-matching algorithms studied here) with *demand-oblivious*
ones such as RotorNet [Mellette et al., SIGCOMM 2017] and Sirius, whose
optical switches cycle through a fixed schedule of matchings irrespective of
the traffic.  This module provides that baseline so the benchmarks can
quantify how much demand-awareness itself buys: Rotor pays no online
decision-making cost and no "cache misses", but a request is only served over
an optical link when its pair happens to be in the currently installed
matchings.

The schedule is a round-robin edge colouring of the complete graph on the
racks (the classic circle method), so every pair appears in exactly one of
``n-1`` (or ``n`` for odd ``n``) slots; ``b`` consecutive slots are installed
at any time, and the schedule advances by one slot every ``period`` requests.
Reconfiguration cost is charged for the edges swapped at each rotation,
exactly as for the demand-aware algorithms.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..config import MatchingConfig
from ..errors import ConfigurationError, SimulationError
from ..topology import Topology
from ..types import NodePair, Request, canonical_pair
from .base import OnlineBMatchingAlgorithm

__all__ = ["RotorBMA", "round_robin_schedule"]


def round_robin_schedule(n_nodes: int) -> List[List[NodePair]]:
    """Round-robin (circle method) decomposition of the complete graph K_n.

    Returns ``n-1`` perfect matchings for even ``n`` (each of size ``n/2``),
    or ``n`` near-perfect matchings for odd ``n`` (each of size ``(n-1)/2``).
    Every unordered pair of nodes appears in exactly one matching.
    """
    if n_nodes < 2:
        raise ConfigurationError(f"need at least 2 nodes, got {n_nodes}")
    nodes = list(range(n_nodes))
    dummy = None
    if n_nodes % 2 == 1:
        nodes.append(dummy)
    m = len(nodes)
    rounds: List[List[NodePair]] = []
    fixed = nodes[0]
    rotating = nodes[1:]
    for r in range(m - 1):
        slot: List[NodePair] = []
        ring = [fixed] + rotating[r:] + rotating[:r]
        for i in range(m // 2):
            a, b = ring[i], ring[m - 1 - i]
            if a is dummy or b is dummy:
                continue
            slot.append(canonical_pair(a, b))
        rounds.append(slot)
    return rounds


class RotorBMA(OnlineBMatchingAlgorithm):
    """Demand-oblivious rotating b-matching.

    Parameters
    ----------
    period:
        Number of requests between schedule advances (one slot swapped per
        advance).  Smaller periods emulate faster rotor switches.
    """

    name = "rotor"
    supports_batch = True

    def __init__(
        self,
        topology: Topology,
        config: MatchingConfig,
        rng: Optional[np.random.Generator | int] = None,
        period: int = 500,
    ):
        super().__init__(topology, config, rng)
        if period < 1:
            raise ConfigurationError(f"period must be >= 1, got {period}")
        self.period = int(period)
        self._schedule = round_robin_schedule(topology.n_racks)
        self._cursor = 0
        self._since_rotation = 0
        self._installed_slots: list[int] = []
        self._install_initial()

    # ------------------------------------------------------------------ #
    # Schedule handling
    # ------------------------------------------------------------------ #
    @property
    def n_slots(self) -> int:
        """Number of slots in the rotation schedule."""
        return len(self._schedule)

    @property
    def installed_slots(self) -> Tuple[int, ...]:
        """Indices of the currently installed schedule slots."""
        return tuple(self._installed_slots)

    def _install_initial(self) -> None:
        for offset in range(min(self.config.b, self.n_slots)):
            self._install_slot(offset)
        self._cursor = len(self._installed_slots) % self.n_slots
        # The initial installation models the rotor's pre-existing steady
        # state, not an online decision, so it is not charged as
        # reconfiguration cost.
        self.matching.reset_counters()

    def _install_slot(self, slot: int) -> list[NodePair]:
        added = []
        for pair in self._schedule[slot]:
            if self.matching.has_capacity(*pair):
                self.matching.add(*pair)
                added.append(pair)
        self._installed_slots.append(slot)
        return added

    def _remove_slot(self, slot: int) -> list[NodePair]:
        removed = []
        for pair in self._schedule[slot]:
            if pair in self.matching:
                self.matching.remove(*pair)
                removed.append(pair)
        self._installed_slots.remove(slot)
        return removed

    # ------------------------------------------------------------------ #
    # Policy
    # ------------------------------------------------------------------ #
    def _reconfigure(
        self,
        pair: NodePair,
        length: float,
        served_by_matching: bool,
        request: Request,
    ) -> tuple[Tuple[NodePair, ...], Tuple[NodePair, ...]]:
        self._since_rotation += 1
        if self._since_rotation < self.period or self.n_slots <= self.config.b:
            return (), ()
        self._since_rotation = 0
        return self._advance_schedule()

    def _advance_schedule(self) -> tuple[Tuple[NodePair, ...], Tuple[NodePair, ...]]:
        """Advance: drop the oldest installed slot, install the next slot."""
        removed = self._remove_slot(self._installed_slots[0])
        while self._cursor in self._installed_slots:
            self._cursor = (self._cursor + 1) % self.n_slots
        added = self._install_slot(self._cursor)
        self._cursor = (self._cursor + 1) % self.n_slots
        return tuple(added), tuple(removed)

    def serve_batch(self, requests) -> None:
        """Batched replay: vectorised gathers between schedule rotations.

        The matching only changes at rotation points, which fall every
        ``period`` requests regardless of the traffic, so the segment splits
        into chunks of known size served against a static matching: one
        boolean lookup-table gather resolves membership for a whole chunk,
        and the costs (integer hop counts, unit sizes) sum exactly as the
        sequential accumulation would.
        """
        matching = self.matching
        edge_keys = getattr(matching, "edge_keys", None)
        decoded = self._batch_arrays(requests)
        if edge_keys is None or decoded is None:
            super().serve_batch(requests)
            return
        n = self.topology.n_racks
        _lo, _hi, keys_arr, lengths_arr = decoded
        total = int(keys_arr.size)
        rotates = self.n_slots > self.config.b
        b = self.config.b
        start = 0
        while start < total:
            if rotates:
                # The request on which ``_since_rotation`` reaches ``period``
                # is still served against the old matching; the rotation
                # happens right after it, exactly as in :meth:`serve`.
                stop = min(total, start + self.period - self._since_rotation)
            else:
                stop = total
            keys = keys_arr[start:stop]
            lut = np.zeros(n * n, dtype=bool)
            lut[list(edge_keys)] = True
            hits = lut[keys]
            self.total_routing_cost += float(
                np.where(hits, 1.0, lengths_arr[start:stop]).sum()
            )
            self.requests_served += stop - start
            self.matched_requests += int(hits.sum())
            self._since_rotation += stop - start
            if rotates and self._since_rotation >= self.period:
                self._since_rotation = 0
                before = matching.additions + matching.removals
                self._advance_schedule()
                n_changes = matching.additions + matching.removals - before
                trigger = int(keys_arr[stop - 1]) // n
                if n_changes and matching.degree(trigger) > b:
                    raise SimulationError(
                        f"{self.name}: degree bound violated at node {trigger}"
                    )
                self.total_reconfiguration_cost += n_changes * self.config.alpha
            start = stop

    def _reset_policy_state(self) -> None:
        self._cursor = 0
        self._since_rotation = 0
        self._installed_slots = []
        self._install_initial()
