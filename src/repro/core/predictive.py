"""Prediction-augmented online b-matching (the paper's §5 future-work direction).

The paper closes by noting that real traffic has temporal structure and that
algorithms leveraging *predictions* of future demand are an interesting
extension.  :class:`PredictiveBMA` implements the natural candidate: a
sliding-window frequency predictor estimates per-pair demand, and every
``period`` requests the algorithm reconfigures towards the greedy
maximum-saving b-matching of the predicted demand.  Between reconfiguration
points it behaves obliviously (routing over whatever matching is installed).

This is *not* part of the paper's evaluation; it exists so the ablation
benchmarks can quantify how much headroom predictions offer over the purely
online R-BMA on traces with strong temporal structure.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

import numpy as np

from ..config import MatchingConfig
from ..errors import ConfigurationError
from ..matching import greedy_b_matching
from ..topology import Topology
from ..types import NodePair, Request
from .base import OnlineBMatchingAlgorithm

__all__ = ["SlidingWindowPredictor", "PredictiveBMA"]


class SlidingWindowPredictor:
    """Predicts per-pair demand as the (length-weighted) frequency in a sliding window."""

    def __init__(self, window: int = 2000):
        if window < 1:
            raise ConfigurationError(f"predictor window must be >= 1, got {window}")
        self.window = int(window)
        self._recent: Deque[tuple[NodePair, float]] = deque()
        self._weights: Dict[NodePair, float] = {}

    def observe(self, pair: NodePair, saving: float) -> None:
        """Record one request with its potential routing-cost saving."""
        self._recent.append((pair, saving))
        self._weights[pair] = self._weights.get(pair, 0.0) + saving
        while len(self._recent) > self.window:
            old_pair, old_saving = self._recent.popleft()
            remaining = self._weights.get(old_pair, 0.0) - old_saving
            if remaining <= 1e-12:
                self._weights.pop(old_pair, None)
            else:
                self._weights[old_pair] = remaining

    def predicted_weights(self) -> Dict[NodePair, float]:
        """Current window demand estimate, per pair."""
        return dict(self._weights)

    def reset(self) -> None:
        """Clear the window."""
        self._recent.clear()
        self._weights.clear()


class PredictiveBMA(OnlineBMatchingAlgorithm):
    """Periodically reconfigures to the predicted-best static b-matching.

    Parameters
    ----------
    period:
        Number of requests between reconfiguration points.
    window:
        Size of the sliding window feeding the predictor.
    """

    name = "predictive"

    def __init__(
        self,
        topology: Topology,
        config: MatchingConfig,
        rng: Optional[np.random.Generator | int] = None,
        period: int = 1000,
        window: int = 2000,
    ):
        super().__init__(topology, config, rng)
        if period < 1:
            raise ConfigurationError(f"period must be >= 1, got {period}")
        self.period = int(period)
        self.predictor = SlidingWindowPredictor(window)
        self._since_reconfig = 0

    def _reconfigure(
        self,
        pair: NodePair,
        length: float,
        served_by_matching: bool,
        request: Request,
    ) -> tuple[Tuple[NodePair, ...], Tuple[NodePair, ...]]:
        self.predictor.observe(pair, max(length - 1.0, 0.0) * request.size)
        self._since_reconfig += 1
        if self._since_reconfig < self.period:
            return (), ()
        self._since_reconfig = 0
        return self._install_predicted_matching()

    def _install_predicted_matching(self) -> tuple[Tuple[NodePair, ...], Tuple[NodePair, ...]]:
        target = greedy_b_matching(
            self.predictor.predicted_weights(), self.topology.n_racks, self.config.b
        )
        current = set(self.matching.edges)
        removed = tuple(sorted(current - target))
        added = tuple(sorted(target - current))
        for edge in removed:
            self.matching.remove(*edge)
        for edge in added:
            self.matching.add(*edge)
        return added, removed

    def _reset_policy_state(self) -> None:
        self.predictor.reset()
        self._since_reconfig = 0
