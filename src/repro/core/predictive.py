"""Prediction-augmented online b-matching (the paper's §5 future-work direction).

The paper closes by noting that real traffic has temporal structure and that
algorithms leveraging *predictions* of future demand are an interesting
extension.  :class:`PredictiveBMA` implements the natural candidate: a
sliding-window frequency predictor estimates per-pair demand, and every
``period`` requests the algorithm reconfigures towards the greedy
maximum-saving b-matching of the predicted demand.  Between reconfiguration
points it behaves obliviously (routing over whatever matching is installed).

This is *not* part of the paper's evaluation; it exists so the ablation
benchmarks can quantify how much headroom predictions offer over the purely
online R-BMA on traces with strong temporal structure.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

import numpy as np

from ..config import MatchingConfig
from ..errors import ConfigurationError, SimulationError
from ..matching import greedy_b_matching
from ..topology import Topology
from ..types import NodePair, Request
from .base import OnlineBMatchingAlgorithm

__all__ = ["SlidingWindowPredictor", "PredictiveBMA"]


class SlidingWindowPredictor:
    """Predicts per-pair demand as the (length-weighted) frequency in a sliding window."""

    def __init__(self, window: int = 2000):
        if window < 1:
            raise ConfigurationError(f"predictor window must be >= 1, got {window}")
        self.window = int(window)
        self._recent: Deque[tuple[NodePair, float]] = deque()
        self._weights: Dict[NodePair, float] = {}

    def observe(self, pair: NodePair, saving: float) -> None:
        """Record one request with its potential routing-cost saving."""
        self._recent.append((pair, saving))
        self._weights[pair] = self._weights.get(pair, 0.0) + saving
        while len(self._recent) > self.window:
            old_pair, old_saving = self._recent.popleft()
            remaining = self._weights.get(old_pair, 0.0) - old_saving
            if remaining <= 1e-12:
                self._weights.pop(old_pair, None)
            else:
                self._weights[old_pair] = remaining

    def observe_batch(self, pairs, savings) -> None:
        """Record many requests at once (hoisted-lookup form of :meth:`observe`).

        State after the call — window contents, per-pair weights, and the
        weight dict's insertion order (which the downstream greedy matching's
        tie-breaking can see) — is exactly what repeated :meth:`observe`
        calls would leave behind; only the attribute lookups are hoisted out
        of the loop.
        """
        recent = self._recent
        weights = self._weights
        window = self.window
        append = recent.append
        popleft = recent.popleft
        get = weights.get
        pop = weights.pop
        for pair, saving in zip(pairs, savings):
            append((pair, saving))
            weights[pair] = get(pair, 0.0) + saving
            while len(recent) > window:
                old_pair, old_saving = popleft()
                remaining = get(old_pair, 0.0) - old_saving
                if remaining <= 1e-12:
                    pop(old_pair, None)
                else:
                    weights[old_pair] = remaining

    def predicted_weights(self) -> Dict[NodePair, float]:
        """Current window demand estimate, per pair."""
        return dict(self._weights)

    def reset(self) -> None:
        """Clear the window."""
        self._recent.clear()
        self._weights.clear()


class PredictiveBMA(OnlineBMatchingAlgorithm):
    """Periodically reconfigures to the predicted-best static b-matching.

    Parameters
    ----------
    period:
        Number of requests between reconfiguration points.
    window:
        Size of the sliding window feeding the predictor.
    """

    name = "predictive"
    supports_batch = True

    def __init__(
        self,
        topology: Topology,
        config: MatchingConfig,
        rng: Optional[np.random.Generator | int] = None,
        period: int = 1000,
        window: int = 2000,
    ):
        super().__init__(topology, config, rng)
        if period < 1:
            raise ConfigurationError(f"period must be >= 1, got {period}")
        self.period = int(period)
        self.predictor = SlidingWindowPredictor(window)
        self._since_reconfig = 0

    def _reconfigure(
        self,
        pair: NodePair,
        length: float,
        served_by_matching: bool,
        request: Request,
    ) -> tuple[Tuple[NodePair, ...], Tuple[NodePair, ...]]:
        self.predictor.observe(pair, max(length - 1.0, 0.0) * request.size)
        self._since_reconfig += 1
        if self._since_reconfig < self.period:
            return (), ()
        self._since_reconfig = 0
        return self._install_predicted_matching()

    def _install_predicted_matching(self) -> tuple[Tuple[NodePair, ...], Tuple[NodePair, ...]]:
        target = greedy_b_matching(
            self.predictor.predicted_weights(), self.topology.n_racks, self.config.b
        )
        current = set(self.matching.edges)
        removed = tuple(sorted(current - target))
        added = tuple(sorted(target - current))
        for edge in removed:
            self.matching.remove(*edge)
        for edge in added:
            self.matching.add(*edge)
        return added, removed

    def serve_batch(self, requests) -> None:
        """Batched replay: static-matching gathers plus a windowed bulk observe.

        Between reconfiguration points (every ``period`` requests, regardless
        of traffic) the installed matching is static, so membership for a
        whole chunk is one boolean lookup-table gather and the routing sum is
        exact (integer hop counts, unit sizes).  Savings for the predictor
        are vectorised (``max(ℓ - 1, 0)``), then fed through
        :meth:`SlidingWindowPredictor.observe_batch`, which preserves the
        sequential window/weight semantics bit for bit.
        """
        matching = self.matching
        edge_keys = getattr(matching, "edge_keys", None)
        decoded = self._batch_arrays(requests)
        if edge_keys is None or decoded is None:
            super().serve_batch(requests)
            return
        n = self.topology.n_racks
        _lo, _hi, keys_arr, lengths_arr = decoded
        savings_arr = np.maximum(lengths_arr - 1.0, 0.0)
        total = int(keys_arr.size)
        b = self.config.b
        start = 0
        while start < total:
            # The request on which ``_since_reconfig`` reaches ``period`` is
            # still routed over the old matching; the reconfiguration follows
            # it, exactly as in :meth:`serve`.
            stop = min(total, start + self.period - self._since_reconfig)
            keys = keys_arr[start:stop]
            lut = np.zeros(n * n, dtype=bool)
            lut[list(edge_keys)] = True
            hits = lut[keys]
            self.total_routing_cost += float(
                np.where(hits, 1.0, lengths_arr[start:stop]).sum()
            )
            self.requests_served += stop - start
            self.matched_requests += int(hits.sum())
            pairs = [(k // n, k % n) for k in keys.tolist()]
            self.predictor.observe_batch(pairs, savings_arr[start:stop].tolist())
            self._since_reconfig += stop - start
            if self._since_reconfig >= self.period:
                self._since_reconfig = 0
                before = matching.additions + matching.removals
                self._install_predicted_matching()
                n_changes = matching.additions + matching.removals - before
                trigger = pairs[-1][0]
                if n_changes and matching.degree(trigger) > b:
                    raise SimulationError(
                        f"{self.name}: degree bound violated at node {trigger}"
                    )
                self.total_reconfiguration_cost += n_changes * self.config.alpha
            start = stop

    def _reset_policy_state(self) -> None:
        self.predictor.reset()
        self._since_reconfig = 0
