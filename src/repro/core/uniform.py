"""Uniform-case algorithm Alg1: per-node paging with lazy removals (Theorem 2).

Every rack runs a paging instance with cache size ``b`` whose pages are node
pairs incident to that rack.  When a pair ``e = {u, v}`` is processed, it is
requested at both endpoints' paging instances; every page those instances
evict corresponds to a matching edge that is *marked for removal* (lazy
removal, footnote 2 of the paper).  Finally ``e`` itself becomes a matching
edge, pruning marked edges if an endpoint is at its degree bound.

The invariant maintained is exactly the paper's:

    an *unmarked* matching edge is cached at both of its endpoints,

which guarantees that pruning always finds a marked edge to evict when a node
is full (see the proof sketch in ``DESIGN.md``).

:class:`PerNodePagingMatcher` is the reusable machinery; it operates on a
:class:`~repro.matching.bmatching.BMatching` owned by the caller so that
R-BMA (which forwards only *special* requests, Theorem 1) can reuse it
unchanged.  :class:`UniformBMatching` wraps it as a standalone algorithm that
treats every request as special — the correct behaviour when ``α = 1`` and
all distances are 1.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..config import MatchingConfig
from ..errors import SimulationError
from ..matching import BMatching
from ..paging.base import PagingAlgorithm
from ..paging.registry import PagingFactory, make_paging_factory
from ..topology import Topology
from ..types import NodePair, Request
from .base import OnlineBMatchingAlgorithm

__all__ = ["PerNodePagingMatcher", "UniformBMatching"]


class PerNodePagingMatcher:
    """Maintains per-node paging instances and the matching they induce.

    Parameters
    ----------
    matching:
        The b-matching to operate on (owned by the caller).
    paging_factory:
        Callable ``(capacity, rng) -> PagingAlgorithm`` constructing the
        per-node caches; defaults to the randomized marking algorithm.
    rng:
        Generator used to seed the per-node paging instances; each node gets
        an independent child generator so that runs are reproducible and the
        nodes' random choices are uncorrelated.
    """

    def __init__(
        self,
        matching: BMatching,
        paging_factory: Optional[PagingFactory] = None,
        rng: Optional[np.random.Generator | int] = None,
    ):
        self.matching = matching
        self._factory = paging_factory or make_paging_factory("marking")
        self._rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self._pagers: Dict[int, PagingAlgorithm] = {}

    def pager(self, node: int) -> PagingAlgorithm:
        """The paging instance of ``node``, created lazily on first use."""
        pager = self._pagers.get(node)
        if pager is None:
            child = np.random.default_rng(self._rng.integers(2**63 - 1))
            pager = self._factory(self.matching.b, child)
            self._pagers[node] = pager
        return pager

    @property
    def active_nodes(self) -> frozenset[int]:
        """Nodes whose paging instance has been instantiated."""
        return frozenset(self._pagers)

    def process(self, pair: NodePair) -> Tuple[Tuple[NodePair, ...], Tuple[NodePair, ...]]:
        """Forward ``pair`` to both endpoints' pagers and update the matching.

        Returns the matching edges added and removed during this step.
        """
        u, v = pair
        # 1. Request the pair at both endpoints; collect evicted pages.
        for endpoint in (u, v):
            result = self.pager(endpoint).request(pair)
            for evicted in result.evicted:
                # A page evicted from an endpoint's cache corresponds to a
                # matching edge that may no longer be matched: mark it.
                self.matching.mark_for_removal(*evicted)

        # 2. Ensure the requested pair is a matching edge.
        added: list[NodePair] = []
        removed: list[NodePair] = []
        if pair in self.matching:
            # Requested and cached at both endpoints again: clear any stale mark.
            self.matching.unmark(u, v)
        else:
            for endpoint in (u, v):
                removed.extend(self.matching.prune_to_capacity(endpoint))
            self.matching.add(u, v)
            added.append(pair)
        return tuple(added), tuple(removed)

    def reset(self) -> None:
        """Drop all per-node paging state (the matching is reset by its owner)."""
        self._pagers.clear()


class UniformBMatching(OnlineBMatchingAlgorithm):
    """Alg1 as a standalone algorithm: every request is forwarded to paging.

    This is the right algorithm for uniform instances (``α = 1``, all
    distances 1) and is used directly by the reduction tests; for general
    instances use :class:`~repro.core.rbma.RBMA`, which wraps this machinery
    behind the Theorem 1 request filter.
    """

    name = "uniform"
    supports_batch = True

    def __init__(
        self,
        topology: Topology,
        config: MatchingConfig,
        rng: Optional[np.random.Generator | int] = None,
        paging_policy: str = "marking",
    ):
        super().__init__(topology, config, rng)
        self._paging_policy = paging_policy
        self._matcher = PerNodePagingMatcher(
            self.matching, make_paging_factory(paging_policy), self.rng
        )

    def _reconfigure(
        self,
        pair: NodePair,
        length: float,
        served_by_matching: bool,
        request: Request,
    ) -> tuple[Tuple[NodePair, ...], Tuple[NodePair, ...]]:
        return self._matcher.process(pair)

    def serve_batch(self, requests) -> None:
        """Batched replay: every request drives paging in one tight int loop.

        Unlike R-BMA there is no Theorem 1 filter — each request reaches the
        per-node pagers — so the win over :meth:`serve` is skipping the
        Request/ServeOutcome wrappers and testing matching membership on
        int-encoded pairs.  For the same reason the ``"numba"`` backend has
        no scan to compile here: every request must drive the (Python,
        RNG-consuming) paging machinery, so its acceleration for uniform
        comes only from the compiled kernel's cheaper mark/prune/add
        bookkeeping inside ``process``.  Cost accounting, randomness
        consumption, and raised errors match request-by-request serving
        exactly on every backend.
        """
        matching = self.matching
        edge_keys = getattr(matching, "edge_keys", None)
        decoded = self._batch_arrays(requests)
        if edge_keys is None or decoded is None:
            super().serve_batch(requests)
            return
        n = self.topology.n_racks
        _lo, _hi, keys_arr, lengths_arr = decoded
        keys = keys_arr.tolist()
        lengths = lengths_arr.tolist()

        process = self._matcher.process
        alpha = self.config.alpha
        b = self.config.b
        routing = self.total_routing_cost
        reconf = self.total_reconfiguration_cost
        served = self.requests_served
        matched = self.matched_requests
        try:
            for key, length in zip(keys, lengths):
                hit = key in edge_keys
                before = matching.additions + matching.removals
                pair = (key // n, key % n)
                process(pair)
                n_changes = matching.additions + matching.removals - before
                if n_changes and matching.degree(pair[0]) > b:
                    raise SimulationError(
                        f"{self.name}: degree bound violated at node {pair[0]}"
                    )
                routing += 1.0 if hit else length
                if n_changes:
                    reconf += n_changes * alpha
                served += 1
                if hit:
                    matched += 1
        finally:
            self.total_routing_cost = routing
            self.total_reconfiguration_cost = reconf
            self.requests_served = served
            self.matched_requests = matched

    def _reset_policy_state(self) -> None:
        self._matcher = PerNodePagingMatcher(
            self.matching, make_paging_factory(self._paging_policy), self.rng
        )

    def _on_matching_rebound(self, backend: str) -> None:
        self._matcher.matching = self.matching
