"""Uniform-case algorithm Alg1: per-node paging with lazy removals (Theorem 2).

Every rack runs a paging instance with cache size ``b`` whose pages are node
pairs incident to that rack.  When a pair ``e = {u, v}`` is processed, it is
requested at both endpoints' paging instances; every page those instances
evict corresponds to a matching edge that is *marked for removal* (lazy
removal, footnote 2 of the paper).  Finally ``e`` itself becomes a matching
edge, pruning marked edges if an endpoint is at its degree bound.

The invariant maintained is exactly the paper's:

    an *unmarked* matching edge is cached at both of its endpoints,

which guarantees that pruning always finds a marked edge to evict when a node
is full (see the proof sketch in ``DESIGN.md``).

:class:`PerNodePagingMatcher` is the reusable machinery; it operates on a
:class:`~repro.matching.bmatching.BMatching` owned by the caller so that
R-BMA (which forwards only *special* requests, Theorem 1) can reuse it
unchanged.  :class:`UniformBMatching` wraps it as a standalone algorithm that
treats every request as special — the correct behaviour when ``α = 1`` and
all distances are 1.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..config import MatchingConfig
from ..errors import SimulationError
from ..matching import BMatching
from ..matching.numba_bmatching import paging_steady_scan
from ..paging.base import PagingAlgorithm
from ..paging.registry import PagingFactory, make_paging_factory
from ..topology import Topology
from ..types import NodePair, Request
from .base import OnlineBMatchingAlgorithm
from .rng import CounterRNG

__all__ = ["PerNodePagingMatcher", "UniformBMatching"]

#: Paging policies whose cache *hits* are observationally pure (requesting a
#: cached-and-marked page changes nothing a later request can see), which is
#: what lets the steady-state scan kernel skip them wholesale.  Marking's hit
#: re-marks an already-marked page; random eviction's hit does nothing.  LRU/
#: LFU-style policies mutate recency/frequency state on hits and are not
#: eligible.
_STEADY_SAFE_POLICIES = frozenset({"marking", "random"})


class PerNodePagingMatcher:
    """Maintains per-node paging instances and the matching they induce.

    Parameters
    ----------
    matching:
        The b-matching to operate on (owned by the caller).
    paging_factory:
        Callable ``(capacity, rng) -> PagingAlgorithm`` constructing the
        per-node caches; defaults to the randomized marking algorithm.
    rng:
        Source of the per-node paging randomness.  A stateful generator (or
        seed) gives each node an independent child generator, seeded lazily
        in first-use order — the legacy behaviour.  A
        :class:`~repro.core.rng.CounterRNG` gives each node the stream
        keyed by its node id (``rng.stream(node)``), which consumes nothing
        from any shared state: pager construction order no longer matters
        and replay needs no generator forking.
    steady_n:
        When set (to the rack count), maintain a dense ``n*n`` uint8 LUT of
        *steady* pair keys: ``steady[u*n+v] == 1`` certifies that
        re-requesting ``(u, v)`` right now would change nothing — cached and
        marked at both endpoints, matched and unmarked — so a batched replay
        may serve it as a pure cost update without touching the pagers.
        Only meaningful for hit-pure policies (see
        ``_STEADY_SAFE_POLICIES``); the owner decides.
    """

    def __init__(
        self,
        matching: BMatching,
        paging_factory: Optional[PagingFactory] = None,
        rng: Optional[np.random.Generator | int] = None,
        steady_n: Optional[int] = None,
    ):
        self.matching = matching
        self._factory = paging_factory or make_paging_factory("marking")
        if isinstance(rng, CounterRNG):
            self._rng: Optional[np.random.Generator] = None
            self._crng: Optional[CounterRNG] = rng
        else:
            self._rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
            self._crng = None
        self._pagers: Dict[int, PagingAlgorithm] = {}
        self._steady_n = steady_n
        self.steady_lut: Optional[np.ndarray] = (
            np.zeros(steady_n * steady_n, dtype=np.uint8) if steady_n else None
        )

    def pager(self, node: int) -> PagingAlgorithm:
        """The paging instance of ``node``, created lazily on first use."""
        pager = self._pagers.get(node)
        if pager is None:
            if self._crng is not None:
                child = self._crng.stream(node)
            else:
                child = np.random.default_rng(self._rng.integers(2**63 - 1))
            pager = self._factory(self.matching.b, child)
            self._pagers[node] = pager
        return pager

    @property
    def active_nodes(self) -> frozenset[int]:
        """Nodes whose paging instance has been instantiated."""
        return frozenset(self._pagers)

    def process(self, pair: NodePair) -> Tuple[Tuple[NodePair, ...], Tuple[NodePair, ...]]:
        """Forward ``pair`` to both endpoints' pagers and update the matching.

        Returns the matching edges added and removed during this step.
        """
        u, v = pair
        dirty = False
        # 1. Request the pair at both endpoints; collect evicted pages.
        for endpoint in (u, v):
            result = self.pager(endpoint).request(pair)
            if not result.hit:
                dirty = True
            for evicted in result.evicted:
                # A page evicted from an endpoint's cache corresponds to a
                # matching edge that may no longer be matched: mark it.
                self.matching.mark_for_removal(*evicted)

        # 2. Ensure the requested pair is a matching edge.
        added: list[NodePair] = []
        removed: list[NodePair] = []
        if pair in self.matching:
            # Requested and cached at both endpoints again: clear any stale mark.
            self.matching.unmark(u, v)
        else:
            dirty = True
            for endpoint in (u, v):
                removed.extend(self.matching.prune_to_capacity(endpoint))
            self.matching.add(u, v)
            added.append(pair)

        steady = self.steady_lut
        if steady is not None:
            if dirty:
                # Every state change above — evictions, marks at a phase
                # boundary, mark-for-removal, pruning, adding — touches only
                # pages/edges incident to u or v, so invalidating both
                # endpoints' rows and columns restores the LUT invariant.
                # (Hits change nothing a later request can see for the
                # steady-safe policies; see _STEADY_SAFE_POLICIES.)
                n = self._steady_n
                steady[u * n : (u + 1) * n] = 0
                steady[u::n] = 0
                steady[v * n : (v + 1) * n] = 0
                steady[v::n] = 0
            # Post-process the pair is cached and marked at both endpoints,
            # matched and unmarked — steady by construction.
            steady[u * self._steady_n + v] = 1
        return tuple(added), tuple(removed)

    def reset(self) -> None:
        """Drop all per-node paging state (the matching is reset by its owner)."""
        self._pagers.clear()
        if self.steady_lut is not None:
            self.steady_lut[:] = 0


class UniformBMatching(OnlineBMatchingAlgorithm):
    """Alg1 as a standalone algorithm: every request is forwarded to paging.

    This is the right algorithm for uniform instances (``α = 1``, all
    distances 1) and is used directly by the reduction tests; for general
    instances use :class:`~repro.core.rbma.RBMA`, which wraps this machinery
    behind the Theorem 1 request filter.
    """

    name = "uniform"
    supports_batch = True
    uses_rng = True

    def __init__(
        self,
        topology: Topology,
        config: MatchingConfig,
        rng: Optional[np.random.Generator | int] = None,
        paging_policy: str = "marking",
    ):
        super().__init__(topology, config, rng)
        self._paging_policy = paging_policy
        self._matcher = self._make_matcher()

    def _make_matcher(self) -> PerNodePagingMatcher:
        steady_n = (
            self.topology.n_racks
            if self._paging_policy in _STEADY_SAFE_POLICIES
            else None
        )
        return PerNodePagingMatcher(
            self.matching,
            make_paging_factory(self._paging_policy),
            self._paging_rng(),
            steady_n=steady_n,
        )

    def _reconfigure(
        self,
        pair: NodePair,
        length: float,
        served_by_matching: bool,
        request: Request,
    ) -> tuple[Tuple[NodePair, ...], Tuple[NodePair, ...]]:
        return self._matcher.process(pair)

    def serve_batch(self, requests) -> None:
        """Batched replay: every request drives paging in one tight int loop.

        Unlike R-BMA there is no Theorem 1 filter — each request reaches the
        per-node pagers — so the win over :meth:`serve` is skipping the
        Request/ServeOutcome wrappers and testing matching membership on
        int-encoded pairs.  On the ``"numba"`` backend the matcher's
        steady-pair LUT additionally lets an ``@njit`` scan
        (:func:`~repro.matching.numba_bmatching.paging_steady_scan`) serve
        runs of requests whose pair is certified steady — cached and marked
        at both endpoints, matched — as pure cost updates, entering Python
        only at requests that can change paging or matching state.  Steady
        requests consume no randomness in either rng mode, so the scan is
        exact for both; only the per-pager hit counters (which no consumer
        reads through the matcher) are skipped.  Cost accounting, randomness
        consumption, and raised errors match request-by-request serving
        exactly on every backend.
        """
        matching = self.matching
        edge_keys = getattr(matching, "edge_keys", None)
        decoded = self._batch_arrays(requests)
        if edge_keys is None or decoded is None:
            super().serve_batch(requests)
            return
        if (
            getattr(matching, "member_lut", None) is not None
            and self._matcher.steady_lut is not None
        ):
            self._serve_batch_compiled(decoded)
            return
        n = self.topology.n_racks
        _lo, _hi, keys_arr, lengths_arr = decoded
        keys = keys_arr.tolist()
        lengths = lengths_arr.tolist()

        process = self._matcher.process
        alpha = self.config.alpha
        b = self.config.b
        routing = self.total_routing_cost
        reconf = self.total_reconfiguration_cost
        served = self.requests_served
        matched = self.matched_requests
        try:
            for key, length in zip(keys, lengths):
                hit = key in edge_keys
                before = matching.additions + matching.removals
                pair = (key // n, key % n)
                process(pair)
                n_changes = matching.additions + matching.removals - before
                if n_changes and matching.degree(pair[0]) > b:
                    raise SimulationError(
                        f"{self.name}: degree bound violated at node {pair[0]}"
                    )
                routing += 1.0 if hit else length
                if n_changes:
                    reconf += n_changes * alpha
                served += 1
                if hit:
                    matched += 1
        finally:
            self.total_routing_cost = routing
            self.total_reconfiguration_cost = reconf
            self.requests_served = served
            self.matched_requests = matched

    def _serve_batch_compiled(self, decoded) -> None:
        """The batched loop with steady runs served by the ``@njit`` scan.

        Bit-identical to the pure loop: a steady request's step is exactly
        ``routing += 1.0; served += 1; matched += 1`` (it is a matched hit
        with no reconfiguration and no draws), and every request that could
        change any state reaches :meth:`PerNodePagingMatcher.process`
        through the same Python body the pure loop uses.
        """
        matching = self.matching
        edge_keys = matching.edge_keys
        steady = self._matcher.steady_lut
        n = self.topology.n_racks
        _lo, _hi, keys_arr, lengths_arr = decoded
        n_requests = keys_arr.shape[0]
        keys = keys_arr.tolist()
        lengths = lengths_arr.tolist()

        process = self._matcher.process
        alpha = self.config.alpha
        b = self.config.b
        routing = self.total_routing_cost
        reconf = self.total_reconfiguration_cost
        served = self.requests_served
        matched = self.matched_requests
        i = 0
        try:
            while i < n_requests:
                i, routing, served, matched = paging_steady_scan(
                    keys_arr, steady, i, routing, served, matched
                )
                if i >= n_requests:
                    break
                key = keys[i]
                hit = key in edge_keys
                before = matching.additions + matching.removals
                pair = (key // n, key % n)
                process(pair)
                n_changes = matching.additions + matching.removals - before
                if n_changes and matching.degree(pair[0]) > b:
                    raise SimulationError(
                        f"{self.name}: degree bound violated at node {pair[0]}"
                    )
                routing += 1.0 if hit else lengths[i]
                if n_changes:
                    reconf += n_changes * alpha
                served += 1
                if hit:
                    matched += 1
                i += 1
        finally:
            self.total_routing_cost = float(routing)
            self.total_reconfiguration_cost = reconf
            self.requests_served = int(served)
            self.matched_requests = int(matched)

    def _reset_policy_state(self) -> None:
        self._matcher = self._make_matcher()

    def _on_matching_rebound(self, backend: str) -> None:
        self._matcher.matching = self.matching
