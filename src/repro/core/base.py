"""Common interface of online b-matching algorithms.

Every algorithm sees requests one at a time (:meth:`OnlineBMatchingAlgorithm.serve`)
and maintains a dynamic b-matching over the racks of a fixed topology.  The
cost model is the paper's:

* serving a request ``{s, t}`` costs 1 if the pair is a matching edge and
  ``ℓ_{s,t}`` (the fixed-network shortest path length) otherwise;
* every matching edge added or removed costs ``α``.

Cost accounting is centralised here: subclasses only implement the
reconfiguration policy (:meth:`OnlineBMatchingAlgorithm._reconfigure`), and
the base class derives reconfiguration cost from the matching's
addition/removal counters so that no policy can misreport its own cost.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..config import MatchingConfig
from ..errors import SimulationError
from ..matching import DEFAULT_MATCHING_BACKEND, convert_matching, make_matching
from ..topology import Topology
from ..traffic.base import Trace
from ..types import NodePair, Request

__all__ = ["ServeOutcome", "OnlineBMatchingAlgorithm"]


@dataclass(frozen=True, slots=True)
class ServeOutcome:
    """What happened while serving a single request.

    Attributes
    ----------
    pair:
        The canonical node pair of the request.
    routing_cost:
        Cost paid to route this request (1 or ``ℓ_e``), scaled by the
        request size.
    reconfiguration_cost:
        ``α`` times the number of matching edges added or removed while
        serving this request.
    served_by_matching:
        Whether the request was routed over a matching edge.
    edges_added, edges_removed:
        The matching edges added / removed during this step.
    """

    pair: NodePair
    routing_cost: float
    reconfiguration_cost: float
    served_by_matching: bool
    edges_added: Tuple[NodePair, ...] = ()
    edges_removed: Tuple[NodePair, ...] = ()

    @property
    def total_cost(self) -> float:
        """Routing plus reconfiguration cost of this step."""
        return self.routing_cost + self.reconfiguration_cost


class OnlineBMatchingAlgorithm(ABC):
    """Base class for online (b, a)-matching algorithms.

    Parameters
    ----------
    topology:
        The fixed network providing distances ``ℓ_e``.
    config:
        The matching problem parameters (``b``, ``α``, optionally ``a``).
    rng:
        Seed or generator for the algorithm's internal randomness.
        Deterministic algorithms ignore it.  How randomized algorithms
        *draw* from it is governed by ``config.rng_mode``: in ``"counter"``
        mode (the default) an integer seed keys a stateless
        :class:`~repro.core.rng.CounterRNG` and a passed generator
        contributes one draw that pins the counter key; in ``"stateful"``
        mode the generator itself is threaded through (the legacy
        reference behaviour).
    """

    #: Short machine-readable algorithm name; overridden by subclasses.
    name: str = "abstract"

    #: Whether the algorithm must see the whole trace before serving
    #: (true only for offline baselines such as SO-BMA).
    requires_full_trace: bool = False

    #: Whether the policy consumes randomness (R-BMA's marking pager, the
    #: uniform/hybrid paging layers).  Deterministic algorithms leave this
    #: False, which keeps ``rng_mode`` out of their provenance and their
    #: run-store fingerprints.
    uses_rng: bool = False

    #: Whether :meth:`serve_batch` is a hand-tuned fast path rather than the
    #: default per-request loop.  The engine routes every non-reference
    #: replay through ``serve_batch`` regardless (the default implementation
    #: degrades gracefully to per-request serving); this flag only records —
    #: for introspection and the test that certifies full batched coverage —
    #: that the algorithm ships a tuned implementation.  Every registered
    #: algorithm sets it.
    supports_batch: bool = False

    def __init__(
        self,
        topology: Topology,
        config: MatchingConfig,
        rng: Optional[np.random.Generator | int] = None,
    ):
        self.topology = topology
        self.config = config
        self.rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        # Resolve the rng_mode axis once (config pin > REPRO_RNG_MODE > the
        # library default) and, in counter mode, derive the stateless
        # CounterRNG that randomized policies draw from via _paging_rng().
        from .rng import CounterRNG, resolve_rng_mode

        self.rng_mode = resolve_rng_mode(config.rng_mode)
        self.counter_rng: Optional[CounterRNG] = None
        if self.uses_rng and self.rng_mode == "counter":
            if isinstance(rng, (int, np.integer)):
                root_seed: Optional[int] = int(rng)
            elif isinstance(rng, np.random.Generator):
                # One draw pins the counter key to the generator's state, so
                # generator-constructed algorithms stay deterministic too.
                root_seed = int(rng.integers(2**63 - 1))
            else:
                root_seed = None  # fresh entropy, like default_rng(None)
            self.counter_rng = CounterRNG(root_seed)
        self._matching_backend = DEFAULT_MATCHING_BACKEND
        self.matching = make_matching(topology.n_racks, config.b, self._matching_backend)
        # The topology computes all-pairs distances once; every algorithm
        # shares that dense matrix instead of issuing per-request pairwise
        # lookups through the (validating) Topology.distance API.
        self._distances = topology.distance_matrix
        self.total_routing_cost = 0.0
        self.total_reconfiguration_cost = 0.0
        self.requests_served = 0
        self.matched_requests = 0

    def _paging_rng(self):
        """The randomness source for paging layers under the resolved mode.

        Counter mode hands out the stateless :class:`CounterRNG` (policies
        derive per-pager streams from it); stateful mode hands out the
        carried-state generator, preserving the legacy draw sequence bit for
        bit.
        """
        return self.counter_rng if self.counter_rng is not None else self.rng

    @property
    def rng_provenance(self) -> Optional[dict]:
        """Requested-vs-effective RNG mode, for ``RunResult.extra``.

        ``rng_mode`` is the configured request (``None`` when the library
        default applied); ``rng_kernel`` is the mode the run actually used.
        ``None`` for deterministic algorithms, which consume no randomness.
        """
        if not self.uses_rng:
            return None
        return {"rng_mode": self.config.rng_mode, "rng_kernel": self.rng_mode}

    # ------------------------------------------------------------------ #
    # Cost accessors
    # ------------------------------------------------------------------ #
    @property
    def total_cost(self) -> float:
        """Total routing plus reconfiguration cost so far."""
        return self.total_routing_cost + self.total_reconfiguration_cost

    @property
    def matched_fraction(self) -> float:
        """Fraction of requests served over a matching edge so far."""
        if self.requests_served == 0:
            return 0.0
        return self.matched_requests / self.requests_served

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def fit(self, requests: Sequence[Request]) -> None:
        """Give offline algorithms the full trace before the run.

        Online algorithms ignore this; offline baselines override it.  The
        engine calls it only when :attr:`requires_full_trace` is true.
        """

    def reset(self) -> None:
        """Discard all state so the same instance can serve a fresh trace."""
        self.matching = make_matching(
            self.topology.n_racks, self.config.b, self._matching_backend
        )
        self.total_routing_cost = 0.0
        self.total_reconfiguration_cost = 0.0
        self.requests_served = 0
        self.matched_requests = 0
        self._reset_policy_state()

    def _reset_policy_state(self) -> None:
        """Hook for subclasses to clear their own bookkeeping on reset."""

    # ------------------------------------------------------------------ #
    # Matching backend
    # ------------------------------------------------------------------ #
    @property
    def matching_backend(self) -> str:
        """Name of the kernel backend the matching currently runs on."""
        return self._matching_backend

    def rebind_matching_backend(self, backend: Optional[str]) -> None:
        """Move the (not yet served) matching onto a different kernel backend.

        The swap preserves edges, marks, and counters exactly and consumes no
        randomness, so a rebound algorithm produces bit-identical results to
        one that started on the requested backend.  Policies holding direct
        references to the matching fix them up in
        :meth:`_on_matching_rebound`.
        """
        if backend is None or backend == self._matching_backend:
            return
        if self.requests_served:
            raise SimulationError(
                "cannot switch the matching backend after requests were served; "
                "call reset() or use a fresh instance"
            )
        self.matching = convert_matching(self.matching, backend)
        self._matching_backend = backend
        self._on_matching_rebound(backend)

    def _on_matching_rebound(self, backend: str) -> None:
        """Hook: re-point any policy-held references at :attr:`matching`."""

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def serve(self, request: Request) -> ServeOutcome:
        """Serve one request: pay its routing cost, then (maybe) reconfigure."""
        pair = self.topology.validate_pair(request.src, request.dst)
        length = float(self._distances[pair[0], pair[1]])

        served_by_matching = pair in self.matching
        routing_cost = (1.0 if served_by_matching else length) * request.size

        additions_before = self.matching.additions
        removals_before = self.matching.removals
        added, removed = self._reconfigure(pair, length, served_by_matching, request)

        n_changes = (
            (self.matching.additions - additions_before)
            + (self.matching.removals - removals_before)
        )
        reconfiguration_cost = n_changes * self.config.alpha
        if n_changes and self.matching.degree(pair[0]) > self.config.b:
            raise SimulationError(
                f"{self.name}: degree bound violated at node {pair[0]}"
            )

        self.total_routing_cost += routing_cost
        self.total_reconfiguration_cost += reconfiguration_cost
        self.requests_served += 1
        if served_by_matching:
            self.matched_requests += 1
        return ServeOutcome(
            pair=pair,
            routing_cost=routing_cost,
            reconfiguration_cost=reconfiguration_cost,
            served_by_matching=served_by_matching,
            edges_added=added,
            edges_removed=removed,
        )

    def _batch_arrays(self, requests):
        """Decode a Trace batch into ``(lo, hi, keys, lengths)`` arrays.

        ``lo``/``hi`` are the canonicalised endpoints, ``keys`` the
        int-encoded pairs ``lo * n_racks + hi``, ``lengths`` the fixed-network
        distances — the shared preamble of every hand-tuned ``serve_batch``.
        Returns ``None`` when ``requests`` is not a :class:`Trace` or
        addresses racks beyond this topology; callers then fall back to the
        per-request loop, which reproduces the exact error semantics of
        :meth:`serve`.
        """
        if not isinstance(requests, Trace) or requests.n_nodes > self.topology.n_racks:
            return None
        src = requests.sources.astype(np.int64, copy=False)
        dst = requests.destinations.astype(np.int64, copy=False)
        lo = np.minimum(src, dst)
        hi = np.maximum(src, dst)
        keys = lo * self.topology.n_racks + hi
        return lo, hi, keys, self._distances[lo, hi]

    def serve_batch(self, requests) -> None:
        """Serve a contiguous batch of requests (no per-request outcomes).

        ``requests`` is any iterable of :class:`~repro.types.Request`,
        including a :class:`~repro.traffic.base.Trace` slice.  The default
        implementation simply loops over :meth:`serve`; algorithms that set
        :attr:`supports_batch` override this with a loop that reads the trace
        arrays directly, skipping Request/ServeOutcome allocation while
        keeping the per-request semantics (cost accounting order, randomness,
        and raised errors) exactly identical.
        """
        for request in requests:
            self.serve(request)

    def serve_all(self, requests: Sequence[Request]) -> float:
        """Serve a whole trace and return the total cost incurred for it."""
        start = self.total_cost
        if self.requires_full_trace:
            self.fit(requests)
        for request in requests:
            self.serve(request)
        return self.total_cost - start

    # ------------------------------------------------------------------ #
    # Policy
    # ------------------------------------------------------------------ #
    @abstractmethod
    def _reconfigure(
        self,
        pair: NodePair,
        length: float,
        served_by_matching: bool,
        request: Request,
    ) -> tuple[Tuple[NodePair, ...], Tuple[NodePair, ...]]:
        """Adjust the matching after serving ``pair``.

        Returns the tuple ``(edges_added, edges_removed)``.  Implementations
        mutate :attr:`matching` directly; reconfiguration cost is derived by
        the caller from the matching's counters.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} b={self.config.b} alpha={self.config.alpha} "
            f"served={self.requests_served}>"
        )
