"""BMA — deterministic online b-matching baseline.

Reimplementation of the deterministic, asymptotically optimal
``O(b)``-competitive online b-matching algorithm of Bienkowski, Fuchssteiner,
Marcinkowski and Schmid ("Online dynamic b-matching with applications to
reconfigurable datacenter networks", PERFORMANCE 2020), which the paper we
reproduce uses as its main empirical baseline.

Algorithm (per request to pair ``e = {u, v}``):

1. If ``e`` is matched, serve it at cost 1 and increase its *usefulness* (the
   number of requests it has served since being added).
2. Otherwise pay ``ℓ_e`` and add ``ℓ_e`` to the pair's counter ``C_e``.  When
   ``C_e ≥ α`` the pair *saturates*: it is inserted into the matching.  For
   every endpoint already at its degree bound, the incident matched edge with
   the smallest usefulness (ties: oldest) is evicted and the counters of all
   pending pairs incident to that endpoint are reset to zero — the standard
   amortisation behind the ``O(b)`` guarantee.

Implementation note (relevant to the paper's execution-time figures): the
original artifact keeps all of BMA's bookkeeping — per-pair counters,
usefulness, and the matching itself — as edge attributes of a NetworkX demand
graph ("We implemented all algorithms in Python leveraging the NetworkX
library").  We mirror that choice here: every decision walks the NetworkX
adjacency structure of the affected endpoints.  This is exactly what makes
BMA noticeably slower than R-BMA (whose per-node caches are plain Python
sets) and more sensitive to the cache size ``b``, reproducing the runtime
comparison in the paper.  The algorithmic decisions themselves are
independent of this storage choice.
"""

from __future__ import annotations

from typing import Optional, Tuple

import networkx as nx
import numpy as np

from ..config import MatchingConfig
from ..errors import SimulationError
from ..topology import Topology
from ..types import NodePair, Request
from .base import OnlineBMatchingAlgorithm

__all__ = ["BMA"]


class BMA(OnlineBMatchingAlgorithm):
    """Deterministic counter-based online b-matching (the paper's baseline)."""

    name = "bma"
    supports_batch = True

    def __init__(
        self,
        topology: Topology,
        config: MatchingConfig,
        rng: Optional[np.random.Generator | int] = None,
    ):
        super().__init__(topology, config, rng)
        # Demand graph holding BMA's bookkeeping as NetworkX edge attributes,
        # mirroring the original implementation (see module docstring).
        self._demand = nx.Graph()
        self._demand.add_nodes_from(range(topology.n_racks))
        self._insertion_clock = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def counter(self, pair: NodePair) -> float:
        """Accumulated fixed-network cost of ``pair`` since its last reset."""
        data = self._demand.get_edge_data(*pair)
        return float(data["counter"]) if data else 0.0

    def usefulness(self, pair: NodePair) -> int:
        """Requests served by matched edge ``pair`` since it was added."""
        data = self._demand.get_edge_data(*pair)
        return int(data["usefulness"]) if data else 0

    # ------------------------------------------------------------------ #
    # Policy
    # ------------------------------------------------------------------ #
    def _reconfigure(
        self,
        pair: NodePair,
        length: float,
        served_by_matching: bool,
        request: Request,
    ) -> tuple[Tuple[NodePair, ...], Tuple[NodePair, ...]]:
        u, v = pair
        demand = self._demand
        if served_by_matching:
            demand[u][v]["usefulness"] += 1
            return (), ()

        if demand.has_edge(u, v):
            data = demand[u][v]
            data["counter"] += length * request.size
        else:
            demand.add_edge(
                u, v, counter=length * request.size, usefulness=0, matched=False, inserted=0
            )
            data = demand[u][v]
        if data["counter"] < self.config.alpha:
            return (), ()
        return self._saturate(pair, data)

    def _saturate(self, pair: NodePair, data: dict) -> tuple[Tuple[NodePair, ...], Tuple[NodePair, ...]]:
        """Bring a saturated pair into the matching, evicting where needed."""
        added: list[NodePair] = []
        removed: list[NodePair] = []
        adj = self._demand._adj
        for endpoint in pair:
            if self.matching.degree(endpoint) >= self.config.b:
                victim = self._select_victim(endpoint)
                self.matching.remove(*victim)
                vd = adj[victim[0]][victim[1]]
                vd["matched"] = False
                vd["usefulness"] = 0
                removed.append(victim)
                self._reset_incident_counters(endpoint)
        self.matching.add(*pair)
        self._insertion_clock += 1
        data["matched"] = True
        data["usefulness"] = 0
        data["counter"] = 0.0
        data["inserted"] = self._insertion_clock
        added.append(pair)
        return tuple(added), tuple(removed)

    def serve_batch(self, requests) -> None:
        """Batched replay: demand-graph bookkeeping without NetworkX wrappers.

        Operates on the *same* demand graph as :meth:`serve` — it reads and
        writes ``Graph._adj`` (the dict-of-dicts NetworkX itself maintains),
        so eviction scans and counter resets see identical state in identical
        order; only the per-request wrapper objects (Request, ServeOutcome,
        AtlasView) are skipped.
        """
        matching = self.matching
        edge_keys = getattr(matching, "edge_keys", None)
        decoded = self._batch_arrays(requests)
        if edge_keys is None or decoded is None:
            super().serve_batch(requests)
            return
        lo, hi, keys_arr, lengths_arr = decoded
        keys = keys_arr.tolist()
        lengths = lengths_arr.tolist()
        los = lo.tolist()
        his = hi.tolist()

        adj = self._demand._adj
        saturate = self._saturate
        alpha = self.config.alpha
        b = self.config.b
        routing = self.total_routing_cost
        reconf = self.total_reconfiguration_cost
        served = self.requests_served
        matched = self.matched_requests
        try:
            for key, u, v, length in zip(keys, los, his, lengths):
                if key in edge_keys:
                    adj[u][v]["usefulness"] += 1
                    routing += 1.0
                    served += 1
                    matched += 1
                    continue
                row = adj[u]
                data = row.get(v)
                if data is None:
                    data = {"counter": length, "usefulness": 0, "matched": False, "inserted": 0}
                    row[v] = data
                    adj[v][u] = data
                else:
                    data["counter"] += length
                if data["counter"] < alpha:
                    routing += length
                    served += 1
                    continue
                before = matching.additions + matching.removals
                saturate((u, v), data)
                n_changes = matching.additions + matching.removals - before
                if n_changes and matching.degree(u) > b:
                    raise SimulationError(
                        f"{self.name}: degree bound violated at node {u}"
                    )
                routing += length
                reconf += n_changes * alpha
                served += 1
        finally:
            self.total_routing_cost = routing
            self.total_reconfiguration_cost = reconf
            self.requests_served = served
            self.matched_requests = matched

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _select_victim(self, endpoint: int) -> NodePair:
        """Matched edge at ``endpoint`` with least usefulness (ties: oldest).

        Walks the NetworkX adjacency of the endpoint, as the original
        implementation does, filtering for matched edges.
        """
        best: NodePair | None = None
        best_key: tuple[int, int] | None = None
        for neighbor, data in self._demand._adj[endpoint].items():
            if not data.get("matched"):
                continue
            key = (data["usefulness"], data["inserted"])
            if best_key is None or key < best_key:
                best_key = key
                best = (endpoint, neighbor) if endpoint < neighbor else (neighbor, endpoint)
        assert best is not None, "degree bound reached with no matched incident edge"
        return best

    def _reset_incident_counters(self, endpoint: int) -> None:
        """Zero the counters of every pending pair incident to ``endpoint``."""
        for _neighbor, data in self._demand._adj[endpoint].items():
            if not data.get("matched"):
                data["counter"] = 0.0

    def _reset_policy_state(self) -> None:
        self._demand = nx.Graph()
        self._demand.add_nodes_from(range(self.topology.n_racks))
        self._insertion_clock = 0
