"""BMA — deterministic online b-matching baseline.

Reimplementation of the deterministic, asymptotically optimal
``O(b)``-competitive online b-matching algorithm of Bienkowski, Fuchssteiner,
Marcinkowski and Schmid ("Online dynamic b-matching with applications to
reconfigurable datacenter networks", PERFORMANCE 2020), which the paper we
reproduce uses as its main empirical baseline.

Algorithm (per request to pair ``e = {u, v}``):

1. If ``e`` is matched, serve it at cost 1 and increase its *usefulness* (the
   number of requests it has served since being added).
2. Otherwise pay ``ℓ_e`` and add ``ℓ_e`` to the pair's counter ``C_e``.  When
   ``C_e ≥ α`` the pair *saturates*: it is inserted into the matching.  For
   every endpoint already at its degree bound, the incident matched edge with
   the smallest usefulness (ties: oldest) is evicted and the counters of all
   pending pairs incident to that endpoint are reset to zero — the standard
   amortisation behind the ``O(b)`` guarantee.

Implementation note (relevant to the paper's execution-time figures): the
original artifact keeps all of BMA's bookkeeping — per-pair counters,
usefulness, and the matching itself — as edge attributes of a NetworkX demand
graph ("We implemented all algorithms in Python leveraging the NetworkX
library").  We mirror that choice here: every decision walks the NetworkX
adjacency structure of the affected endpoints.  This is exactly what makes
BMA noticeably slower than R-BMA (whose per-node caches are plain Python
sets) and more sensitive to the cache size ``b``, reproducing the runtime
comparison in the paper.  The algorithmic decisions themselves are
independent of this storage choice.

On the opt-in ``"numba"`` matching backend the same bookkeeping moves into
dense per-pair arrays (:class:`_DenseDemand`) so the accumulation loop can
run inside the compiled :func:`~repro.matching.numba_bmatching.bma_scan`
kernel; the dense store is then the single source of truth for both
``serve`` and ``serve_batch`` and is bit-identical to the NetworkX walk
(victim keys are unique, so scan order is immaterial).  The default
``"fast"`` and ``"reference"`` backends keep the NetworkX storage — and the
paper's runtime character — untouched.
"""

from __future__ import annotations

from typing import Optional, Tuple

import networkx as nx
import numpy as np

from ..config import MatchingConfig
from ..errors import SimulationError
from ..matching.numba_bmatching import (
    bma_reset_counters,
    bma_scan,
    bma_select_victim,
)
from ..topology import Topology
from ..types import NodePair, Request
from .base import OnlineBMatchingAlgorithm

__all__ = ["BMA"]


class _DenseDemand:
    """BMA's demand-graph bookkeeping as flat per-pair arrays (numba backend).

    Indexed by the int-encoded canonical pair ``u * n + v``; the matched
    flag lives in the numba kernel's membership LUT (demand "matched" and
    matching membership are the same set by construction).  ``exists``
    mirrors which pairs the NetworkX demand graph would hold an edge for —
    observationally it only matters for faithfulness of the counter-reset
    sweep, which is a no-op on never-seen pairs either way.
    """

    __slots__ = ("counter", "usefulness", "inserted", "exists")

    def __init__(self, n_nodes: int):
        size = n_nodes * n_nodes
        self.counter = np.zeros(size, dtype=np.float64)
        self.usefulness = np.zeros(size, dtype=np.int64)
        self.inserted = np.zeros(size, dtype=np.int64)
        self.exists = np.zeros(size, dtype=np.uint8)


class BMA(OnlineBMatchingAlgorithm):
    """Deterministic counter-based online b-matching (the paper's baseline)."""

    name = "bma"
    supports_batch = True

    def __init__(
        self,
        topology: Topology,
        config: MatchingConfig,
        rng: Optional[np.random.Generator | int] = None,
    ):
        super().__init__(topology, config, rng)
        # Demand graph holding BMA's bookkeeping as NetworkX edge attributes,
        # mirroring the original implementation (see module docstring).  On
        # the numba matching backend the same bookkeeping lives in dense
        # per-pair arrays instead (:class:`_DenseDemand`), the single store
        # for both serve() and serve_batch() in that mode.
        self._demand = nx.Graph()
        self._demand.add_nodes_from(range(topology.n_racks))
        self._insertion_clock = 0
        self._dense: Optional[_DenseDemand] = None

    def _configure_demand_store(self) -> None:
        """Pick the demand representation matching the current kernel backend.

        Called only while no requests have been served (rebind/reset), so
        both representations are empty and the swap is purely structural.
        """
        if getattr(self.matching, "member_lut", None) is not None:
            self._dense = _DenseDemand(self.topology.n_racks)
        else:
            self._dense = None

    def _pair_key(self, pair: NodePair) -> Optional[int]:
        """Int-encoded canonical key of ``pair``, or None when out of range."""
        u, v = (pair[0], pair[1]) if pair[0] < pair[1] else (pair[1], pair[0])
        n = self.topology.n_racks
        if not (0 <= u < v < n):
            return None
        return u * n + v

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def counter(self, pair: NodePair) -> float:
        """Accumulated fixed-network cost of ``pair`` since its last reset."""
        if self._dense is not None:
            key = self._pair_key(pair)
            return float(self._dense.counter[key]) if key is not None else 0.0
        data = self._demand.get_edge_data(*pair)
        return float(data["counter"]) if data else 0.0

    def usefulness(self, pair: NodePair) -> int:
        """Requests served by matched edge ``pair`` since it was added."""
        if self._dense is not None:
            key = self._pair_key(pair)
            return int(self._dense.usefulness[key]) if key is not None else 0
        data = self._demand.get_edge_data(*pair)
        return int(data["usefulness"]) if data else 0

    # ------------------------------------------------------------------ #
    # Policy
    # ------------------------------------------------------------------ #
    def _reconfigure(
        self,
        pair: NodePair,
        length: float,
        served_by_matching: bool,
        request: Request,
    ) -> tuple[Tuple[NodePair, ...], Tuple[NodePair, ...]]:
        if self._dense is not None:
            return self._reconfigure_dense(pair, length, served_by_matching, request)
        u, v = pair
        demand = self._demand
        if served_by_matching:
            demand[u][v]["usefulness"] += 1
            return (), ()

        if demand.has_edge(u, v):
            data = demand[u][v]
            data["counter"] += length * request.size
        else:
            demand.add_edge(
                u, v, counter=length * request.size, usefulness=0, matched=False, inserted=0
            )
            data = demand[u][v]
        if data["counter"] < self.config.alpha:
            return (), ()
        return self._saturate(pair, data)

    def _reconfigure_dense(
        self,
        pair: NodePair,
        length: float,
        served_by_matching: bool,
        request: Request,
    ) -> tuple[Tuple[NodePair, ...], Tuple[NodePair, ...]]:
        """Per-request policy on the dense demand store (numba backend)."""
        dense = self._dense
        key = pair[0] * self.topology.n_racks + pair[1]
        if served_by_matching:
            dense.usefulness[key] += 1
            return (), ()
        dense.exists[key] = 1
        dense.counter[key] += length * request.size
        if dense.counter[key] < self.config.alpha:
            return (), ()
        return self._saturate_dense(pair)

    def _saturate_dense(self, pair: NodePair) -> tuple[Tuple[NodePair, ...], Tuple[NodePair, ...]]:
        """Dense-store twin of :meth:`_saturate`.

        Victim selection and incident-counter resets run as compiled row
        scans over the membership LUT; the (usefulness, insertion-clock)
        victim key is unique among matched edges, so the scan order cannot
        change which edge is evicted relative to the NetworkX walk.
        """
        dense = self._dense
        matching = self.matching
        member = matching.member_lut
        n = self.topology.n_racks
        added: list[NodePair] = []
        removed: list[NodePair] = []
        for endpoint in pair:
            if matching.degree(endpoint) >= self.config.b:
                other = int(bma_select_victim(
                    endpoint, n, member, dense.usefulness, dense.inserted
                ))
                assert other >= 0, "degree bound reached with no matched incident edge"
                victim = (endpoint, other) if endpoint < other else (other, endpoint)
                matching.remove(*victim)  # clears the LUT's matched flag
                dense.usefulness[victim[0] * n + victim[1]] = 0
                removed.append(victim)
                bma_reset_counters(endpoint, n, member, dense.counter)
        matching.add(*pair)
        self._insertion_clock += 1
        key = pair[0] * n + pair[1]
        dense.exists[key] = 1
        dense.usefulness[key] = 0
        dense.counter[key] = 0.0
        dense.inserted[key] = self._insertion_clock
        added.append(pair)
        return tuple(added), tuple(removed)

    def _saturate(self, pair: NodePair, data: dict) -> tuple[Tuple[NodePair, ...], Tuple[NodePair, ...]]:
        """Bring a saturated pair into the matching, evicting where needed."""
        added: list[NodePair] = []
        removed: list[NodePair] = []
        adj = self._demand._adj
        for endpoint in pair:
            if self.matching.degree(endpoint) >= self.config.b:
                victim = self._select_victim(endpoint)
                self.matching.remove(*victim)
                vd = adj[victim[0]][victim[1]]
                vd["matched"] = False
                vd["usefulness"] = 0
                removed.append(victim)
                self._reset_incident_counters(endpoint)
        self.matching.add(*pair)
        self._insertion_clock += 1
        data["matched"] = True
        data["usefulness"] = 0
        data["counter"] = 0.0
        data["inserted"] = self._insertion_clock
        added.append(pair)
        return tuple(added), tuple(removed)

    def serve_batch(self, requests) -> None:
        """Batched replay: demand-graph bookkeeping without NetworkX wrappers.

        Operates on the *same* demand graph as :meth:`serve` — it reads and
        writes ``Graph._adj`` (the dict-of-dicts NetworkX itself maintains),
        so eviction scans and counter resets see identical state in identical
        order; only the per-request wrapper objects (Request, ServeOutcome,
        AtlasView) are skipped.
        """
        matching = self.matching
        edge_keys = getattr(matching, "edge_keys", None)
        decoded = self._batch_arrays(requests)
        if edge_keys is None or decoded is None:
            super().serve_batch(requests)
            return
        if self._dense is not None:
            self._serve_batch_compiled(decoded)
            return
        lo, hi, keys_arr, lengths_arr = decoded
        keys = keys_arr.tolist()
        lengths = lengths_arr.tolist()
        los = lo.tolist()
        his = hi.tolist()

        adj = self._demand._adj
        saturate = self._saturate
        alpha = self.config.alpha
        b = self.config.b
        routing = self.total_routing_cost
        reconf = self.total_reconfiguration_cost
        served = self.requests_served
        matched = self.matched_requests
        try:
            for key, u, v, length in zip(keys, los, his, lengths):
                if key in edge_keys:
                    adj[u][v]["usefulness"] += 1
                    routing += 1.0
                    served += 1
                    matched += 1
                    continue
                row = adj[u]
                data = row.get(v)
                if data is None:
                    data = {"counter": length, "usefulness": 0, "matched": False, "inserted": 0}
                    row[v] = data
                    adj[v][u] = data
                else:
                    data["counter"] += length
                if data["counter"] < alpha:
                    routing += length
                    served += 1
                    continue
                before = matching.additions + matching.removals
                saturate((u, v), data)
                n_changes = matching.additions + matching.removals - before
                if n_changes and matching.degree(u) > b:
                    raise SimulationError(
                        f"{self.name}: degree bound violated at node {u}"
                    )
                routing += length
                reconf += n_changes * alpha
                served += 1
        finally:
            self.total_routing_cost = routing
            self.total_reconfiguration_cost = reconf
            self.requests_served = served
            self.matched_requests = matched

    def _serve_batch_compiled(self, decoded) -> None:
        """Numba-backend segment driver around :func:`bma_scan`.

        Hits and sub-threshold accumulation run compiled; the scan returns
        only at saturation events, which mutate the matching through
        :meth:`_saturate_dense` in Python (deriving reconfiguration cost
        from the kernel counters exactly as every other path does).
        """
        matching = self.matching
        dense = self._dense
        member = matching.member_lut
        n = self.topology.n_racks
        _lo, _hi, keys_arr, lengths_arr = decoded
        keys = np.ascontiguousarray(keys_arr, dtype=np.int64)
        lengths = np.ascontiguousarray(lengths_arr, dtype=np.float64)

        alpha = float(self.config.alpha)
        b = self.config.b
        routing = self.total_routing_cost
        reconf = self.total_reconfiguration_cost
        served = self.requests_served
        matched = self.matched_requests
        n_requests = len(keys)
        i = 0
        try:
            while i < n_requests:
                i, routing, served, matched = bma_scan(
                    keys, lengths, member, dense.counter, dense.usefulness,
                    dense.exists, alpha, i, routing, served, matched,
                )
                if i >= n_requests:
                    break
                # Saturation event at i: the pair's counter already crossed
                # alpha inside the scan; bring it into the matching.
                key = int(keys[i])
                u, v = key // n, key % n
                before = matching.additions + matching.removals
                self._saturate_dense((u, v))
                n_changes = matching.additions + matching.removals - before
                if n_changes and matching.degree(u) > b:
                    raise SimulationError(
                        f"{self.name}: degree bound violated at node {u}"
                    )
                routing += float(lengths[i])
                reconf += n_changes * alpha
                served += 1
                i += 1
        finally:
            self.total_routing_cost = float(routing)
            self.total_reconfiguration_cost = float(reconf)
            self.requests_served = int(served)
            self.matched_requests = int(matched)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _select_victim(self, endpoint: int) -> NodePair:
        """Matched edge at ``endpoint`` with least usefulness (ties: oldest).

        Walks the NetworkX adjacency of the endpoint, as the original
        implementation does, filtering for matched edges.
        """
        best: NodePair | None = None
        best_key: tuple[int, int] | None = None
        for neighbor, data in self._demand._adj[endpoint].items():
            if not data.get("matched"):
                continue
            key = (data["usefulness"], data["inserted"])
            if best_key is None or key < best_key:
                best_key = key
                best = (endpoint, neighbor) if endpoint < neighbor else (neighbor, endpoint)
        assert best is not None, "degree bound reached with no matched incident edge"
        return best

    def _reset_incident_counters(self, endpoint: int) -> None:
        """Zero the counters of every pending pair incident to ``endpoint``."""
        for _neighbor, data in self._demand._adj[endpoint].items():
            if not data.get("matched"):
                data["counter"] = 0.0

    def _reset_policy_state(self) -> None:
        self._demand = nx.Graph()
        self._demand.add_nodes_from(range(self.topology.n_racks))
        self._insertion_clock = 0
        self._configure_demand_store()

    def _on_matching_rebound(self, backend: str) -> None:
        self._configure_demand_store()
