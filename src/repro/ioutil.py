"""Hardened filesystem IO shared by the run store and the work queue.

Wraps the two primitives everything else is built from — atomic JSON writes
(tmp sibling + ``os.replace``) and JSON reads — with:

* **bounded retry + exponential backoff with jitter** for transient
  :class:`OSError`: ``REPRO_IO_RETRIES`` extra attempts (default 2) with a
  ``REPRO_IO_BACKOFF`` base sleep (default 0.02 s) doubling per attempt.
  ``FileNotFoundError`` is *never* retried — it is the normal cache-miss /
  lost-race signal, not a transient hiccup;
* **fault-injection hooks** (:mod:`repro.faults`): every operation names
  its fault site, so a chaos plan can target store writes, queue claims,
  heartbeats, … independently (zero overhead when no plan is installed);
* **stale tmp-file reaping**: a process crashing between the tmp write and
  the rename leaves a ``.<name>.tmp-<pid>`` sibling forever;
  :func:`reap_stale_tmp` removes those older than a threshold (the run
  store's ``gc`` and the queue's ``requeue_expired`` both call it).
"""

from __future__ import annotations

import json
import os
import time
import warnings
from hashlib import blake2b
from pathlib import Path
from typing import Any, Callable, Iterable, List, Optional, TypeVar

from .faults import fault_point, maybe_corrupt

__all__ = [
    "ENV_IO_RETRIES",
    "ENV_IO_BACKOFF",
    "DEFAULT_IO_RETRIES",
    "DEFAULT_IO_BACKOFF",
    "atomic_write_json",
    "io_backoff",
    "io_retries",
    "read_json",
    "read_text",
    "reap_stale_tmp",
    "stale_tmp_files",
    "with_io_retries",
]

#: Extra attempts after the first failure of a store/queue IO operation.
ENV_IO_RETRIES = "REPRO_IO_RETRIES"
#: Base backoff sleep in seconds (doubles per attempt, with jitter).
ENV_IO_BACKOFF = "REPRO_IO_BACKOFF"

DEFAULT_IO_RETRIES = 2
DEFAULT_IO_BACKOFF = 0.02

#: Glob matching the tmp siblings :func:`atomic_write_json` creates.
_TMP_GLOB = ".*.tmp-*"

T = TypeVar("T")


def _env_number(name: str, default: float, kind: type) -> float:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = kind(raw)
    except ValueError:
        warnings.warn(
            f"ignoring non-numeric {name}={raw!r} (using default {default})",
            RuntimeWarning,
            stacklevel=3,
        )
        return default
    return max(0, value) if kind is int else max(0.0, value)


def io_retries() -> int:
    """Extra attempts for transient IO failures (``REPRO_IO_RETRIES``)."""
    return int(_env_number(ENV_IO_RETRIES, DEFAULT_IO_RETRIES, int))


def io_backoff() -> float:
    """Base backoff sleep in seconds (``REPRO_IO_BACKOFF``)."""
    return float(_env_number(ENV_IO_BACKOFF, DEFAULT_IO_BACKOFF, float))


def _backoff_delay(base: float, attempt: int, site: str) -> float:
    """Exponential backoff with deterministic jitter in [0.5, 1.0)x.

    The jitter draw hashes (site, attempt) rather than sampling a clock or
    a global RNG: sleeps never influence results, but keeping them
    deterministic keeps chaos runs exactly reproducible end to end.
    """
    digest = blake2b(f"{site}|{attempt}".encode("utf-8"), digest_size=8).digest()
    jitter = 0.5 + 0.5 * (int.from_bytes(digest, "big") / 2.0**64)
    return base * (2.0**attempt) * jitter


def with_io_retries(op: Callable[[], T], site: str) -> T:
    """Run ``op`` with bounded retry on transient :class:`OSError`.

    ``FileNotFoundError`` propagates immediately (a miss or a lost rename
    race is a *signal*, not a hiccup).  After the retry budget is exhausted
    the last error propagates — callers decide whether that is fatal,
    degraded, or a requeue.
    """
    attempts = io_retries() + 1
    base = io_backoff()
    for attempt in range(attempts):
        try:
            return op()
        except FileNotFoundError:
            raise
        except OSError:
            if attempt + 1 >= attempts:
                raise
            if base > 0:
                time.sleep(_backoff_delay(base, attempt, site))
    raise AssertionError("unreachable")  # pragma: no cover


def atomic_write_json(path, payload: Any, site: str = "store.write") -> None:
    """Write JSON durably: full content to a tmp sibling, then rename.

    Retries transient failures (see :func:`with_io_retries`); each attempt
    rewrites the tmp file from scratch so a half-written attempt can never
    be renamed into place.  ``site`` names the fault-injection site.
    """
    path = Path(path)
    text = json.dumps(payload, indent=2) + "\n"

    def op() -> None:
        fault_point(site)
        data = maybe_corrupt(site, text)
        tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
        tmp.write_text(data, encoding="utf-8")
        os.replace(tmp, path)

    with_io_retries(op, site)


def read_text(path, site: str = "store.read") -> str:
    """Read a text file with transient-failure retries (see module docs)."""

    def op() -> str:
        fault_point(site)
        return Path(path).read_text(encoding="utf-8")

    return with_io_retries(op, site)


def read_json(path, site: str = "store.read") -> Any:
    """Read and parse a JSON file with transient-failure retries.

    :class:`json.JSONDecodeError` propagates untouched — torn or corrupt
    content is a *different* failure class from a transient read error,
    and callers handle it differently (quarantine vs. retry).
    """
    return json.loads(read_text(path, site))


def stale_tmp_files(
    directories: Iterable, max_age_seconds: float, now: Optional[float] = None
) -> List[Path]:
    """Tmp siblings under ``directories`` (recursive) older than the threshold.

    A fresh tmp file may belong to a live writer mid-rename; one older than
    ``max_age_seconds`` is orphaned wreckage from a crashed process.
    """
    reference = time.time() if now is None else now
    stale: List[Path] = []
    for directory in directories:
        directory = Path(directory)
        if not directory.is_dir():
            continue
        for path in sorted(directory.rglob(_TMP_GLOB)):
            try:
                age = reference - path.stat().st_mtime
            except OSError:
                continue  # vanished mid-scan: someone else cleaned it up
            if age > max_age_seconds:
                stale.append(path)
    return stale


def reap_stale_tmp(
    directories: Iterable,
    max_age_seconds: float,
    dry_run: bool = False,
    now: Optional[float] = None,
) -> List[Path]:
    """Delete (or, with ``dry_run``, just report) stale tmp files."""
    stale = stale_tmp_files(directories, max_age_seconds, now=now)
    if not dry_run:
        for path in stale:
            try:
                path.unlink()
            except OSError:
                continue  # lost a race or unwritable: the next sweep retries
    return stale
