"""Compiled (numba) b-matching kernel and batch-scan kernels.

This module is **import-optional**: it imports cleanly whether or not numba
is installed.  When numba is present the hot batch loops below are
``@njit``-compiled on first use; when it is absent the same functions run as
plain Python over numpy arrays — bit-identical, merely slow — which is how
the differential harness certifies the kernel logic on hosts without numba.

Three module-level switches govern whether the ``"numba"`` backend name
resolves to :class:`NumbaBMatching` (see :func:`numba_backend_active`):

``REPRO_NO_NUMBA``
    When set to anything but ``""``/``"0"``, the backend is masked even if
    numba is installed.  This is the knob behind the *nonumba* CI tier
    (``scripts/test_nonumba.sh``): it guarantees the pure-Python fallback
    path stays exercised on hosts where numba installs fine.
``numba availability``
    Detected once at import time (:data:`NUMBA_AVAILABLE`).
``REPRO_NUMBA_PUREPY``
    When set (and numba is absent), the backend is active anyway and the
    scan kernels run uncompiled.  Tests use this to drive the full
    differential + golden matrix over the numba code path on numba-less
    containers; it is never enabled implicitly.

When the backend is *inactive*, :func:`repro.matching.make_matching` falls
back to the pure-Python :class:`~repro.matching.fast_bmatching.FastBMatching`
kernel with a one-time warning, so experiment specs that pin
``matching_backend="numba"`` stay runnable everywhere.

Design
------
:class:`NumbaBMatching` subclasses :class:`FastBMatching` — every operation
keeps the reference semantics (same return values, same exception types and
messages) by construction — and additionally maintains a dense uint8
*membership LUT* indexed by the int-encoded canonical pair ``u * n + v``.
That LUT, together with dense per-pair counter arrays owned by the
algorithms, is exactly what the ``@njit`` scan kernels below operate on:

* :func:`rbma_scan` — R-BMA's Theorem 1 filter loop: advances through a
  trace segment, updating per-pair request counters and accumulating
  routing cost, until it reaches the next *special* request (which must
  touch the Python paging machinery and its RNG, so it returns to the
  driver).
* :func:`bma_scan` — BMA's demand-graph accumulation loop: matched-edge
  hits bump usefulness, misses accumulate fixed-network cost, and the scan
  returns at the next *saturation* event (matching mutation, handled by the
  driver with :func:`bma_select_victim` / :func:`bma_reset_counters`).
* :func:`lut_diff` — the full edge-set diff HybridBMA needs on (rare)
  expert-switch steps, over two membership LUTs, in ascending (= canonical
  sorted) key order.
* :func:`paging_steady_scan` — the uniform algorithm's steady-state loop:
  serves runs of requests whose pair is certified *steady* by the matcher's
  LUT (cached and marked at both endpoints, matched — a pure cost update
  that consumes no randomness in either rng mode), returning to Python at
  the first request that can change paging or matching state.
* :func:`hybrid_scan` — HybridBMA's expert-stepping loop: advances both
  virtual experts through requests that provably change no matching
  (robust non-special, predictive non-reconfiguring, no switch), returning
  to Python at the first *event* request.

The drivers in :mod:`repro.core` call these only when the algorithm's
matching actually is a :class:`NumbaBMatching` (detected via
:attr:`NumbaBMatching.member_lut`), so the ``"fast"`` and ``"reference"``
backends are untouched.  RNG *state* never crosses into compiled code:
every eviction draw stays in Python (stateful mode) or is a pure function
of its draw index (counter mode, :mod:`repro.core.rng`), and the scans only
ever cover requests that consume no draws — which is what makes the
backend bit-identical to the other two by design and by test.
"""

from __future__ import annotations

import os

import numpy as np

from .fast_bmatching import FastBMatching

__all__ = [
    "NUMBA_AVAILABLE",
    "NumbaBMatching",
    "numba_backend_active",
    "bma_reset_counters",
    "bma_scan",
    "bma_select_victim",
    "hybrid_scan",
    "lut_diff",
    "paging_steady_scan",
    "rbma_scan",
    "warmup_kernels",
]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - the default in slim containers
    NUMBA_AVAILABLE = False

    def njit(*args, **kwargs):
        """No-numba stand-in: ``@njit(...)`` becomes the identity decorator."""
        if len(args) == 1 and callable(args[0]) and not kwargs:
            return args[0]

        def decorate(func):
            return func

        return decorate


def _env_flag(name: str) -> bool:
    """Whether an environment flag is set to something truthy."""
    return os.environ.get(name, "").strip() not in ("", "0")


def numba_backend_active() -> bool:
    """Whether ``matching_backend="numba"`` resolves to the compiled kernel.

    Precedence: ``REPRO_NO_NUMBA`` masks the backend unconditionally (the
    *nonumba* CI tier); otherwise numba availability enables it; otherwise
    ``REPRO_NUMBA_PUREPY`` enables the uncompiled-but-identical test mode.
    Environment flags are re-read on every call so tests and CI tiers can
    flip them without reimporting.
    """
    if _env_flag("REPRO_NO_NUMBA"):
        return False
    if NUMBA_AVAILABLE:
        return True
    return _env_flag("REPRO_NUMBA_PUREPY")


class NumbaBMatching(FastBMatching):
    """Dynamic b-matching kernel backing the compiled batch scans.

    Observationally identical to :class:`FastBMatching` (and therefore to
    the reference :class:`~repro.matching.bmatching.BMatching`) — it *is* a
    ``FastBMatching`` for every operation — plus a dense membership LUT
    (:attr:`member_lut`) kept in sync by ``add``/``remove`` so the ``@njit``
    scan kernels can test edge membership with one array load instead of a
    Python set lookup.
    """

    #: Name under which this kernel is registered in ``MATCHING_BACKENDS``.
    backend_name = "numba"

    def __init__(self, n_nodes: int, b: int):
        super().__init__(n_nodes, b)
        self._member = np.zeros(self._n * self._n, dtype=np.uint8)

    @property
    def member_lut(self) -> np.ndarray:
        """Dense uint8 membership LUT over int-encoded pairs (do not mutate)."""
        return self._member

    def add(self, u: int, v: int):
        pair = super().add(u, v)
        self._member[pair[0] * self._n + pair[1]] = 1
        return pair

    def remove(self, u: int, v: int):
        pair = super().remove(u, v)
        self._member[pair[0] * self._n + pair[1]] = 0
        return pair


# --------------------------------------------------------------------------- #
# Batch-scan kernels
# --------------------------------------------------------------------------- #
# All kernels are pure functions of int64/float64/uint8 arrays and scalars:
# no Python objects, no randomness, no allocation in the hot loop.  Float
# accumulation happens in the same per-request order as the pure-Python
# loops, so the sums are bit-identical IEEE doubles.


@njit(cache=False)
def rbma_scan(keys, lengths, thresholds, member, counters, start, routing, served, matched):
    """Advance R-BMA through filtered requests; stop at the next special one.

    Returns ``(index, routing, served, matched)``.  ``index`` is either the
    position of the next *special* request — whose counter has already been
    reset, exactly as the pure-Python loop does before forwarding the pair
    to the uniform-case machinery — or ``len(keys)`` when the segment ends.
    """
    n_requests = keys.shape[0]
    i = start
    while i < n_requests:
        key = keys[i]
        count = counters[key] + 1
        if count >= thresholds[i]:
            counters[key] = 0
            break
        counters[key] = count
        if member[key]:
            routing += 1.0
            matched += 1
        else:
            routing += lengths[i]
        served += 1
        i += 1
    return i, routing, served, matched


@njit(cache=False)
def bma_scan(keys, lengths, member, counter, usefulness, exists, alpha, start, routing, served, matched):
    """Advance BMA until the next saturation event (``C_e`` reaching alpha).

    Matched-edge hits bump the edge's usefulness and pay routing cost 1;
    misses accumulate the fixed-network length into the pair's counter.
    Returns ``(index, routing, served, matched)`` with ``index`` the
    position of the saturating request (its counter already updated, its
    routing cost *not* yet paid — the driver accounts for the event), or
    ``len(keys)`` when the segment ends without an event.
    """
    n_requests = keys.shape[0]
    i = start
    while i < n_requests:
        key = keys[i]
        if member[key]:
            usefulness[key] += 1
            routing += 1.0
            served += 1
            matched += 1
        else:
            value = counter[key] + lengths[i]
            counter[key] = value
            exists[key] = 1
            if value >= alpha:
                break
            routing += lengths[i]
            served += 1
        i += 1
    return i, routing, served, matched


@njit(cache=False)
def bma_select_victim(endpoint, n, member, usefulness, inserted):
    """Matched edge at ``endpoint`` with least usefulness (ties: oldest).

    The (usefulness, insertion-clock) key is unique among matched edges —
    the clock is a strictly increasing counter — so the scan order cannot
    influence the result and the dense row scan selects exactly the victim
    the reference NetworkX adjacency walk selects.  Returns the victim's
    other endpoint, or -1 when no incident matched edge exists.
    """
    best_v = -1
    best_use = 0
    best_ins = 0
    for v in range(n):
        if v == endpoint:
            continue
        if endpoint < v:
            key = endpoint * n + v
        else:
            key = v * n + endpoint
        if member[key]:
            use = usefulness[key]
            ins = inserted[key]
            if best_v < 0 or use < best_use or (use == best_use and ins < best_ins):
                best_v = v
                best_use = use
                best_ins = ins
    return best_v


@njit(cache=False)
def bma_reset_counters(endpoint, n, member, counter):
    """Zero the demand counters of every unmatched pair incident to ``endpoint``.

    Zeroing pairs the demand graph never saw is a no-op (their counters are
    already 0.0), so the dense sweep is equivalent to the reference walk
    over existing demand edges.
    """
    for v in range(n):
        if v == endpoint:
            continue
        if endpoint < v:
            key = endpoint * n + v
        else:
            key = v * n + endpoint
        if not member[key]:
            counter[key] = 0.0


@njit(cache=False)
def lut_diff(current, target):
    """Edge-set diff between two membership LUTs, in ascending key order.

    Returns ``(removed_keys, added_keys)``: the int-encoded pairs present
    only in ``current`` and only in ``target`` respectively.  Ascending key
    order equals sorted canonical-pair order, matching the pure-Python
    ``sorted(set - set)`` diff exactly.
    """
    size = current.shape[0]
    n_removed = 0
    n_added = 0
    for key in range(size):
        if current[key] and not target[key]:
            n_removed += 1
        elif target[key] and not current[key]:
            n_added += 1
    removed = np.empty(n_removed, dtype=np.int64)
    added = np.empty(n_added, dtype=np.int64)
    i_removed = 0
    i_added = 0
    for key in range(size):
        if current[key] and not target[key]:
            removed[i_removed] = key
            i_removed += 1
        elif target[key] and not current[key]:
            added[i_added] = key
            i_added += 1
    return removed, added


@njit(cache=False)
def paging_steady_scan(keys, steady, start, routing, served, matched):
    """Advance the uniform algorithm through *steady* requests.

    ``steady[key] == 1`` certifies (see
    :class:`~repro.core.uniform.PerNodePagingMatcher`) that the pair is
    cached and marked at both endpoints' pagers and is a matching edge, so
    serving it is exactly ``routing += 1.0; served += 1; matched += 1`` —
    a matched hit with no evictions, no reconfiguration, and no draws.
    Returns ``(index, routing, served, matched)`` with ``index`` the first
    non-steady request (handled by the Python driver through the full
    paging machinery) or ``len(keys)`` when the segment ends.
    """
    n_requests = keys.shape[0]
    i = start
    while i < n_requests:
        if steady[keys[i]] == 0:
            break
        routing += 1.0
        served += 1
        matched += 1
        i += 1
    return i, routing, served, matched


@njit(cache=False)
def hybrid_scan(
    keys, lengths, rthresh, rcounters, rmember, pmember, member,
    follow_robust, factor, period, p_since,
    r_routing, r_reconf, r_served, r_matched,
    p_routing, p_reconf, p_served, p_matched,
    routing, served, matched, start,
):
    """Advance HybridBMA's experts until the next *event* request.

    A request is an event — and is left entirely to the Python driver —
    when it is a robust special request (Theorem 1 counter about to reach
    its threshold), a predictive reconfiguration step (period about to
    elapse), or a switch step (the followed expert's post-request total
    cost would exceed ``factor * max(other, 1.0)``).  Every other request
    changes no matching in any of the three algorithms, so the kernel can
    commit it wholesale: bump the robust pair counter, pay both experts'
    and the combiner's routing costs in the exact per-request order of the
    pure loop, and advance the predictive period position.  (Predictor
    *observations* for committed requests are replayed by the driver via
    ``observe_batch``, which is bit-exact by contract, before the event's
    own serve.)

    Returns ``(index, r_routing, r_served, r_matched, p_routing, p_served,
    p_matched, p_since, routing, served, matched)`` with ``index`` the
    event position or ``len(keys)``.
    """
    n_requests = keys.shape[0]
    i = start
    while i < n_requests:
        key = keys[i]
        length = lengths[i]
        if rcounters[key] + 1 >= rthresh[i]:
            break
        if p_since + 1 >= period:
            break
        if rmember[key]:
            r_step = 1.0
        else:
            r_step = length
        if pmember[key]:
            p_step = 1.0
        else:
            p_step = length
        if follow_robust == 1:
            f_total = r_routing + r_step + r_reconf
            o_total = p_routing + p_step + p_reconf
        else:
            f_total = p_routing + p_step + p_reconf
            o_total = r_routing + r_step + r_reconf
        if o_total < 1.0:
            o_total = 1.0
        if f_total > factor * o_total:
            break
        rcounters[key] = rcounters[key] + 1
        r_routing = r_routing + r_step
        r_served += 1
        if rmember[key]:
            r_matched += 1
        p_routing = p_routing + p_step
        p_served += 1
        if pmember[key]:
            p_matched += 1
        p_since += 1
        if member[key]:
            routing = routing + 1.0
            matched += 1
        else:
            routing = routing + length
        served += 1
        i += 1
    return (
        i, r_routing, r_served, r_matched,
        p_routing, p_served, p_matched, p_since,
        routing, served, matched,
    )


def warmup_kernels() -> bool:
    """Force-compile every scan kernel on a tiny input; returns whether numba ran.

    Useful before timing (first-call JIT compilation would otherwise land
    inside the measured region).  Safe — and a cheap no-op — without numba.
    """
    keys = np.zeros(1, dtype=np.int64)
    lengths = np.ones(1, dtype=np.float64)
    thresholds = np.full(1, 2, dtype=np.int64)
    member = np.zeros(4, dtype=np.uint8)
    counters = np.zeros(4, dtype=np.int64)
    rbma_scan(keys, lengths, thresholds, member, counters, 0, 0.0, 0, 0)
    counter = np.zeros(4, dtype=np.float64)
    usefulness = np.zeros(4, dtype=np.int64)
    inserted = np.zeros(4, dtype=np.int64)
    exists = np.zeros(4, dtype=np.uint8)
    bma_scan(keys, lengths, member, counter, usefulness, exists, 100.0, 0, 0.0, 0, 0)
    bma_select_victim(0, 2, member, usefulness, inserted)
    bma_reset_counters(0, 2, member, counter)
    lut_diff(member, member)
    steady = np.zeros(4, dtype=np.uint8)
    paging_steady_scan(keys, steady, 0, 0.0, 0, 0)
    hybrid_scan(
        keys, lengths, thresholds, counters, member, member, member,
        1, 2.0, 10, 0,
        0.0, 0.0, 0, 0,
        0.0, 0.0, 0, 0,
        0.0, 0, 0, 0,
    )
    return NUMBA_AVAILABLE
