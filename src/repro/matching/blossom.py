"""Array-native maximum-weight matching (Galil's O(n^3) blossom algorithm).

This is the ``"array"`` / ``"numba"`` solver-backend kernel behind
:func:`repro.matching.static_solver.iterated_max_weight_b_matching`: a port
of the Galil (1986) primal-dual blossom method — the same algorithm NetworkX
ships as ``max_weight_matching`` — onto flat, int-indexed structures:

* edges live in three parallel arrays (``endpoint_u``, ``endpoint_v``,
  ``weight``) addressed by a machine-int edge id, with per-vertex adjacency
  lists of edge ids — no ``nx.Graph``, no AtlasView, no per-edge attribute
  dicts on the hot ``slack`` path;
* vertices are ``0..n-1`` and non-trivial blossoms are ints ``>= n``
  allocated in creation order, so the blossom bookkeeping is dicts over
  small ints instead of object graphs;
* the per-stage ``allowedge`` set becomes a flat per-edge flag array.

Output fidelity
---------------
The port is deliberately *behaviour-identical* to NetworkX 3.x
``max_weight_matching`` (itself derived from Joris van Rantwijk's
``mwmatching.py``): every loop — the LIFO queue, neighbour scans in edge
insertion order, the delta2/delta3/delta4 scans in vertex-then-creation
order, blossom leaf enumeration — iterates in the exact order the NetworkX
implementation does, and all dual-variable arithmetic performs the same
operations on the same values.  Given the same vertex count and the same
edge list *in the same order*, the two implementations therefore return the
same matching, not merely one of equal weight.  The differential harness in
``tests/test_solver_backends.py`` certifies this, and it is what makes
SO-BMA figure costs bit-identical across solver backends.

Like the NetworkX implementation, integer edge weights are processed in
exact integer arithmetic and float weights in IEEE double arithmetic, so
ties resolve identically.

The optional compiled leg (``compiled=True``, used by the ``"numba"``
solver backend when :func:`repro.matching.numba_bmatching.numba_backend_active`
says so) batches the neighbour slack computation of each scanned S-vertex
through an ``@njit`` kernel over CSR adjacency arrays.  Dual variables do
not change while a vertex's neighbours are scanned, so the precomputed
slacks equal the on-demand ones bit for bit; weights are staged as float64,
which is exact for every weight the library produces (and for integers up
to 2**53).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from ..types import NodePair
from .numba_bmatching import njit

__all__ = ["max_weight_matching_arrays"]

#: Sentinel for "no vertex" (all real vertex/blossom ids are >= 0).
_NO_NODE = -1


@njit(cache=True)
def _scan_slacks(adj_edges, lo, hi, eu, ev, ew, dualvar, out):  # pragma: no cover
    """Slack of every adjacency-list edge of one vertex, in list order.

    ``out[i] = dualvar[u] + dualvar[v] - 2 * w`` for the ``i``-th incident
    edge — the same expression the scalar ``slack`` closure evaluates, over
    the same float64 values, so results are bit-identical.  Covered via the
    compiled/PUREPY differential legs, not line coverage.
    """
    for idx in range(lo, hi):
        k = adj_edges[idx]
        out[idx - lo] = dualvar[eu[k]] + dualvar[ev[k]] - 2.0 * ew[k]


@njit(cache=True)
def _delta12_scan(vlab, bek, eu, ev, ew, dualvar, maxcardinality):  # pragma: no cover
    """delta1 + delta2 of the dual-update substage, over staged arrays.

    ``vlab[v]`` is the label of ``v``'s top-level blossom (0 when free) and
    ``bek[v]`` the edge id of ``bestedge[v]`` (-1 when absent), staged by
    the driver right before the scan; labels and best edges do not change
    between the scan and the dual update, so one staging pass serves both
    kernels.  delta1 keeps the *first* minimum vertex dual (strict ``<``,
    like the builtin ``min``); delta2's slack is the same expression
    :func:`_scan_slacks` evaluates, over the same float64 values, and also
    keeps the first minimum — so the selected ``(deltatype, delta,
    vertex)`` is bit-identical to the scalar loops.  Returns ``(deltatype,
    delta, best_v)`` with ``best_v`` the delta2 vertex or -1.
    """
    n = dualvar.shape[0]
    deltatype = -1
    delta = 0.0
    best_v = -1
    if maxcardinality == 0:
        deltatype = 1
        delta = dualvar[0]
        for v in range(1, n):
            if dualvar[v] < delta:
                delta = dualvar[v]
    for v in range(n):
        if vlab[v] == 0 and bek[v] >= 0:
            k = bek[v]
            d = dualvar[eu[k]] + dualvar[ev[k]] - 2.0 * ew[k]
            if deltatype == -1 or d < delta:
                delta = d
                deltatype = 2
                best_v = v
    return deltatype, delta, best_v


@njit(cache=True)
def _apply_delta(vlab, dualvar, delta):  # pragma: no cover
    """The substage's vertex dual update: S-vertices pay delta, T-vertices gain.

    Same staged labels as :func:`_delta12_scan`; the arithmetic is the
    scalar loop's ``dualvar[v] -= delta`` / ``+= delta`` on the same
    float64 values, so the updated duals are bit-identical.
    """
    n = dualvar.shape[0]
    for v in range(n):
        if vlab[v] == 1:
            dualvar[v] -= delta
        elif vlab[v] == 2:
            dualvar[v] += delta


def max_weight_matching_arrays(
    n_nodes: int,
    edges: Sequence[Tuple[int, int, float]],
    maxcardinality: bool = False,
    compiled: bool = False,
) -> Set[NodePair]:
    """Maximum-weight matching over vertices ``0..n_nodes-1``.

    Parameters
    ----------
    n_nodes:
        Number of vertices; isolated vertices are allowed (and, as in the
        NetworkX implementation, participate in the dual problem).
    edges:
        ``(u, v, weight)`` triples with ``u != v``; *order matters* — it is
        the tie-breaking order, chosen to mirror a NetworkX graph built by
        inserting the same edges in the same order.
    maxcardinality:
        If true, restrict to maximum-cardinality matchings (kept for parity
        with NetworkX; the solver tier always uses ``False``).
    compiled:
        Use the ``@njit`` batched slack scan (the ``"numba"`` solver leg).

    Returns
    -------
    The matching as a set of canonical ``(min, max)`` vertex pairs.
    """
    n = int(n_nodes)
    if n == 0:
        return set()

    nedge = len(edges)
    endpoint_u: List[int] = [0] * nedge
    endpoint_v: List[int] = [0] * nedge
    weight_of: List[float] = [0] * nedge
    # adjacency[v] holds (edge id, neighbour) pairs in edge insertion order —
    # the same neighbour order a NetworkX adjacency dict would iterate in.
    adjacency: List[List[Tuple[int, int]]] = [[] for _ in range(n)]

    # Mirrors the NetworkX preamble: find the maximum edge weight and decide
    # whether all weights are integers (exact integer arithmetic mode).
    maxweight = 0
    allinteger = True
    seen_pairs: set = set()
    for k, (i, j, wt) in enumerate(edges):
        i = int(i)
        j = int(j)
        if i == j or not (0 <= i < n and 0 <= j < n):
            raise ValueError(f"invalid edge ({i}, {j}) for n={n}")
        # A NetworkX graph would silently overwrite a re-added edge, which
        # flat parallel arrays cannot mirror — reject duplicates so the
        # behaviour-identity contract in the module docstring stays honest.
        pair_key = i * n + j if i < j else j * n + i
        if pair_key in seen_pairs:
            raise ValueError(f"duplicate edge ({i}, {j})")
        seen_pairs.add(pair_key)
        endpoint_u[k] = i
        endpoint_v[k] = j
        weight_of[k] = wt
        adjacency[i].append((k, j))
        adjacency[j].append((k, i))
        if wt > maxweight:
            maxweight = wt
        allinteger = allinteger and type(wt).__name__ in ("int", "long")

    if compiled:
        # The compiled leg runs on float64 arrays; integer weights would be
        # staged through float64 anyway, so drop to the float code path
        # (identical values and branches for every weight < 2**53).
        allinteger = False
        eu_np = np.asarray(endpoint_u, dtype=np.int64)
        ev_np = np.asarray(endpoint_v, dtype=np.int64)
        ew_np = np.asarray(weight_of, dtype=np.float64)
        adj_lens = np.asarray([len(a) for a in adjacency], dtype=np.int64)
        adj_start = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(adj_lens, out=adj_start[1:])
        adj_edges = np.empty(2 * nedge, dtype=np.int64)
        for v in range(n):
            ids = [k for k, _w in adjacency[v]]
            adj_edges[adj_start[v] : adj_start[v] + len(ids)] = ids
        slack_buffer = np.empty(int(adj_lens.max()) if nedge else 1, dtype=np.float64)
        dualvar = np.full(n, float(maxweight), dtype=np.float64)
        # Per-substage staging for the compiled delta scan / dual update.
        vlab_buffer = np.zeros(n, dtype=np.int64)
        bek_buffer = np.empty(n, dtype=np.int64)
    else:
        # dualvar[v] = 2 * u(v); starting at maxweight keeps integer weights
        # in integer arithmetic throughout, exactly as NetworkX does.
        dualvar = [maxweight] * n

    # mate[v] = partner vertex of a matched vertex (absent when single);
    # matek[v] = the id of the matching edge at v (the port's substitute for
    # recovering edge data from vertex pairs).
    mate: Dict[int, int] = {}
    matek: Dict[int, int] = {}

    # Blossom bookkeeping.  Non-trivial blossoms get ids n, n+1, ... in
    # creation order (never reused), so iterating the plain dicts below
    # visits vertices first and then blossoms in creation order — the same
    # order the NetworkX dict-of-objects version iterates, which matters for
    # delta tie-breaking.
    next_blossom_id = n
    childs: Dict[int, List[int]] = {}
    bedges: Dict[int, List[Tuple[int, int, int]]] = {}
    mybestedges: Dict[int, object] = {}
    label: Dict[int, object] = {}
    labeledge: Dict[int, object] = {}
    inblossom: List[int] = list(range(n))
    blossomparent: Dict[int, object] = {v: None for v in range(n)}
    blossombase: Dict[int, int] = {v: v for v in range(n)}
    bestedge: Dict[int, object] = {}
    blossomdual: Dict[int, float] = {}
    allowedge: List[bool] = [False] * nedge
    queue: List[int] = []

    def slack(k: int):
        """2 * slack of edge ``k`` (does not work inside blossoms)."""
        return dualvar[endpoint_u[k]] + dualvar[endpoint_v[k]] - 2 * weight_of[k]

    def leaves(b: int):
        """The blossom's leaf vertices, in NetworkX's stack order."""
        stack = list(childs[b])
        while stack:
            t = stack.pop()
            if t >= n:
                stack.extend(childs[t])
            else:
                yield t

    def assign_label(w: int, t: int, v: int, k: int) -> None:
        """Label the top-level blossom of ``w`` with ``t`` via edge (v, w, k)."""
        b = inblossom[w]
        assert label.get(w) is None and label.get(b) is None
        label[w] = label[b] = t
        if v != _NO_NODE:
            labeledge[w] = labeledge[b] = (v, w, k)
        else:
            labeledge[w] = labeledge[b] = None
        bestedge[w] = bestedge[b] = None
        if t == 1:
            # b became an S-vertex/blossom; add it(s vertices) to the queue.
            if b >= n:
                queue.extend(leaves(b))
            else:
                queue.append(b)
        elif t == 2:
            # b became a T-vertex/blossom; assign label S to its mate.
            base = blossombase[b]
            assign_label(mate[base], 1, base, matek[base])

    def scan_blossom(v: int, w: int) -> int:
        """Trace back from v and w; return a new blossom's base or _NO_NODE."""
        path = []
        base = _NO_NODE
        while v != _NO_NODE:
            b = inblossom[v]
            if label[b] & 4:
                base = blossombase[b]
                break
            assert label[b] == 1
            path.append(b)
            label[b] = 5
            # Trace one step back.
            if labeledge[b] is None:
                assert blossombase[b] not in mate
                v = _NO_NODE
            else:
                assert labeledge[b][0] == mate[blossombase[b]]
                v = labeledge[b][0]
                b = inblossom[v]
                assert label[b] == 2
                v = labeledge[b][0]
            # Swap v and w so that we alternate between both paths.
            if w != _NO_NODE:
                v, w = w, v
        for b in path:
            label[b] = 1
        return base

    def add_blossom(base: int, v: int, w: int, k: int) -> None:
        """Construct a new S-blossom with the given base through edge (v, w, k)."""
        nonlocal next_blossom_id
        bb = inblossom[base]
        bv = inblossom[v]
        bw = inblossom[w]
        b = next_blossom_id
        next_blossom_id += 1
        blossombase[b] = base
        blossomparent[b] = None
        blossomparent[bb] = b
        childs[b] = path = []
        bedges[b] = edgs = [(v, w, k)]
        mybestedges[b] = None
        # Trace back from v to base.
        while bv != bb:
            blossomparent[bv] = b
            path.append(bv)
            edgs.append(labeledge[bv])
            assert label[bv] == 2 or (
                label[bv] == 1 and labeledge[bv][0] == mate[blossombase[bv]]
            )
            v = labeledge[bv][0]
            bv = inblossom[v]
        path.append(bb)
        path.reverse()
        edgs.reverse()
        # Trace back from w to base.
        while bw != bb:
            blossomparent[bw] = b
            path.append(bw)
            edgs.append((labeledge[bw][1], labeledge[bw][0], labeledge[bw][2]))
            assert label[bw] == 2 or (
                label[bw] == 1 and labeledge[bw][0] == mate[blossombase[bw]]
            )
            w = labeledge[bw][0]
            bw = inblossom[w]
        assert label[bb] == 1
        label[b] = 1
        labeledge[b] = labeledge[bb]
        blossomdual[b] = 0
        # Relabel vertices.
        for v in leaves(b):
            if label[inblossom[v]] == 2:
                queue.append(v)
            inblossom[v] = b
        # Compute the blossom's least-slack edges to neighbouring S-blossoms.
        bestedgeto: Dict[int, Tuple[int, int, int]] = {}
        for bv in path:
            if bv >= n:
                if mybestedges[bv] is not None:
                    nblist = mybestedges[bv]
                    mybestedges[bv] = None
                else:
                    nblist = [
                        (lv, lw, lk)
                        for lv in leaves(bv)
                        for lk, lw in adjacency[lv]
                    ]
            else:
                nblist = [(bv, lw, lk) for lk, lw in adjacency[bv]]
            for edge in nblist:
                i, j, kk = edge
                if inblossom[j] == b:
                    i, j = j, i
                bj = inblossom[j]
                if (
                    bj != b
                    and label.get(bj) == 1
                    and ((bj not in bestedgeto) or slack(kk) < slack(bestedgeto[bj][2]))
                ):
                    bestedgeto[bj] = edge
            bestedge[bv] = None
        mybestedges[b] = list(bestedgeto.values())
        mybestedge = None
        mybestslack = None
        bestedge[b] = None
        for edge in mybestedges[b]:
            kslack = slack(edge[2])
            if mybestedge is None or kslack < mybestslack:
                mybestedge = edge
                mybestslack = kslack
        bestedge[b] = mybestedge

    def expand_blossom(b: int, endstage: bool) -> None:
        """Expand the given top-level blossom (trampolined recursion)."""

        def _recurse(b: int, endstage: bool):
            for s in childs[b]:
                blossomparent[s] = None
                if s >= n:
                    if endstage and blossomdual[s] == 0:
                        yield s
                    else:
                        for v in leaves(s):
                            inblossom[v] = s
                else:
                    inblossom[s] = s
            # Relabel sub-blossoms when expanding a T-blossom mid-stage.
            if (not endstage) and label.get(b) == 2:
                entrychild = inblossom[labeledge[b][1]]
                j = childs[b].index(entrychild)
                if j & 1:
                    j -= len(childs[b])
                    jstep = 1
                else:
                    jstep = -1
                v, w, lk = labeledge[b]
                while j != 0:
                    if jstep == 1:
                        p, q, pk = bedges[b][j]
                    else:
                        q, p, pk = bedges[b][j - 1]
                    label[w] = None
                    label[q] = None
                    assign_label(w, 2, v, lk)
                    allowedge[pk] = True
                    j += jstep
                    if jstep == 1:
                        v, w, lk = bedges[b][j]
                    else:
                        w, v, lk = bedges[b][j - 1]
                    allowedge[lk] = True
                    j += jstep
                # Relabel the base T-sub-blossom without stepping to its mate.
                bw = childs[b][j]
                label[w] = label[bw] = 2
                labeledge[w] = labeledge[bw] = (v, w, lk)
                bestedge[bw] = None
                j += jstep
                while childs[b][j] != entrychild:
                    bv = childs[b][j]
                    if label.get(bv) == 1:
                        j += jstep
                        continue
                    if bv >= n:
                        for v in leaves(bv):
                            if label.get(v):
                                break
                    else:
                        v = bv
                    if label.get(v):
                        assert label[v] == 2
                        assert inblossom[v] == bv
                        label[v] = None
                        label[mate[blossombase[bv]]] = None
                        assign_label(v, 2, labeledge[v][0], labeledge[v][2])
                    j += jstep
            # Remove the expanded blossom entirely.
            label.pop(b, None)
            labeledge.pop(b, None)
            bestedge.pop(b, None)
            del blossomparent[b]
            del blossombase[b]
            del blossomdual[b]
            del childs[b]
            del bedges[b]
            del mybestedges[b]

        stack = [_recurse(b, endstage)]
        while stack:
            top = stack[-1]
            for s in top:
                stack.append(_recurse(s, endstage))
                break
            else:
                stack.pop()

    def augment_blossom(b: int, v: int) -> None:
        """Swap matched/unmatched edges from v to the base of blossom b."""

        def _recurse(b: int, v: int):
            # Bubble up through the blossom tree to an immediate child of b.
            t = v
            while blossomparent[t] != b:
                t = blossomparent[t]
            if t >= n:
                yield (t, v)
            i = j = childs[b].index(t)
            if i & 1:
                j -= len(childs[b])
                jstep = 1
            else:
                jstep = -1
            while j != 0:
                j += jstep
                t = childs[b][j]
                if jstep == 1:
                    w, x, kk = bedges[b][j]
                else:
                    x, w, kk = bedges[b][j - 1]
                if t >= n:
                    yield (t, w)
                j += jstep
                t = childs[b][j]
                if t >= n:
                    yield (t, x)
                mate[w] = x
                mate[x] = w
                matek[w] = matek[x] = kk
            # Rotate the child list to put the new base at the front.
            childs[b] = childs[b][i:] + childs[b][:i]
            bedges[b] = bedges[b][i:] + bedges[b][:i]
            blossombase[b] = blossombase[childs[b][0]]
            assert blossombase[b] == v

        stack = [_recurse(b, v)]
        while stack:
            top = stack[-1]
            for args in top:
                stack.append(_recurse(*args))
                break
            else:
                stack.pop()

    def augment_matching(v: int, w: int, k: int) -> None:
        """Augment over the path through S-vertices v and w (edge k)."""
        for s, j, kk in ((v, w, k), (w, v, k)):
            while 1:
                bs = inblossom[s]
                assert label[bs] == 1
                assert (labeledge[bs] is None and blossombase[bs] not in mate) or (
                    labeledge[bs][0] == mate[blossombase[bs]]
                )
                if bs >= n:
                    augment_blossom(bs, s)
                mate[s] = j
                matek[s] = kk
                if labeledge[bs] is None:
                    break
                t = labeledge[bs][0]
                bt = inblossom[t]
                assert label[bt] == 2
                s, j, kk = labeledge[bt]
                assert blossombase[bt] == t
                if bt >= n:
                    augment_blossom(bt, j)
                mate[j] = s
                matek[j] = kk

    def verify_optimum() -> None:
        """Assert the dual certificate (only used for integer weights)."""
        if maxcardinality:
            vdualoffset = max(0, -min(dualvar))
        else:
            vdualoffset = 0
        assert min(dualvar) + vdualoffset >= 0
        assert len(blossomdual) == 0 or min(blossomdual.values()) >= 0
        for k in range(nedge):
            i = endpoint_u[k]
            j = endpoint_v[k]
            s = dualvar[i] + dualvar[j] - 2 * weight_of[k]
            iblossoms = [i]
            jblossoms = [j]
            while blossomparent[iblossoms[-1]] is not None:
                iblossoms.append(blossomparent[iblossoms[-1]])
            while blossomparent[jblossoms[-1]] is not None:
                jblossoms.append(blossomparent[jblossoms[-1]])
            iblossoms.reverse()
            jblossoms.reverse()
            for bi, bj in zip(iblossoms, jblossoms):
                if bi != bj:
                    break
                s += 2 * blossomdual[bi]
            assert s >= 0
            if mate.get(i) == j or mate.get(j) == i:
                assert mate[i] == j and mate[j] == i
                assert s == 0
        for v in range(n):
            assert (v in mate) or dualvar[v] + vdualoffset == 0
        for b in blossomdual:
            if blossomdual[b] > 0:
                assert len(bedges[b]) % 2 == 1
                for i, j, _kk in bedges[b][1::2]:
                    assert mate[i] == j and mate[j] == i

    # Main loop: one stage per augmentation.
    while 1:
        label.clear()
        labeledge.clear()
        bestedge.clear()
        for b in blossomdual:
            mybestedges[b] = None
        for k in range(nedge):
            allowedge[k] = False
        queue[:] = []

        # Label single blossoms/vertices with S and put them in the queue.
        for v in range(n):
            if (v not in mate) and label.get(inblossom[v]) is None:
                assign_label(v, 1, _NO_NODE, -1)

        augmented = 0
        while 1:
            # Substage: grow the structure until augmentation or a dual update.
            while queue and not augmented:
                v = queue.pop()
                assert label[inblossom[v]] == 1

                adj_v = adjacency[v]
                if compiled and adj_v:
                    lo = int(adj_start[v])
                    _scan_slacks(
                        adj_edges, lo, int(adj_start[v + 1]),
                        eu_np, ev_np, ew_np, dualvar, slack_buffer,
                    )
                for idx, (k, w) in enumerate(adj_v):
                    bv = inblossom[v]
                    bw = inblossom[w]
                    if bv == bw:
                        # this edge is internal to a blossom; ignore it
                        continue
                    if not allowedge[k]:
                        # Inlined slack(k): addition is commutative, so
                        # summing from v's side is bit-identical.
                        kslack = (
                            slack_buffer[idx]
                            if compiled
                            else dualvar[v] + dualvar[w] - 2 * weight_of[k]
                        )
                        if kslack <= 0:
                            allowedge[k] = True
                    if allowedge[k]:
                        if label.get(bw) is None:
                            # w is free; label w with T and its mate with S.
                            assign_label(w, 2, v, k)
                        elif label.get(bw) == 1:
                            # w is an S-vertex: new blossom or augmenting path.
                            base = scan_blossom(v, w)
                            if base != _NO_NODE:
                                add_blossom(base, v, w, k)
                            else:
                                augment_matching(v, w, k)
                                augmented = 1
                                break
                        elif label.get(w) is None:
                            assert label[bw] == 2
                            label[w] = 2
                            labeledge[w] = (v, w, k)
                    elif label.get(bw) == 1:
                        # Track the least-slack edge to a different S-blossom.
                        if bestedge.get(bv) is None or kslack < slack(bestedge[bv][2]):
                            bestedge[bv] = (v, w, k)
                    elif label.get(w) is None:
                        # Track the least-slack edge reaching the free vertex w.
                        if bestedge.get(w) is None or kslack < slack(bestedge[w][2]):
                            bestedge[w] = (v, w, k)

            if augmented:
                break

            # No augmenting path; compute delta and update the duals.
            deltatype = -1
            delta = deltaedge = deltablossom = None

            if compiled:
                # Stage per-vertex top-blossom labels and best-edge ids once;
                # they do not change until after the dual update, so the same
                # arrays also drive _apply_delta below.
                for v in range(n):
                    t = label.get(inblossom[v])
                    vlab_buffer[v] = 0 if t is None else t
                    be = bestedge.get(v)
                    bek_buffer[v] = -1 if be is None else be[2]
                # delta1 + delta2 in one compiled scan.
                deltatype, delta_c, best_v = _delta12_scan(
                    vlab_buffer, bek_buffer, eu_np, ev_np, ew_np, dualvar,
                    1 if maxcardinality else 0,
                )
                deltatype = int(deltatype)
                if deltatype != -1:
                    delta = delta_c
                if best_v >= 0:
                    deltaedge = bestedge[int(best_v)]
            else:
                # delta1: the minimum value of any vertex dual.
                if not maxcardinality:
                    deltatype = 1
                    delta = min(dualvar)

                # delta2: minimum slack on any edge from an S-vertex to a
                # free one.
                for v in range(n):
                    if label.get(inblossom[v]) is None and bestedge.get(v) is not None:
                        d = slack(bestedge[v][2])
                        if deltatype == -1 or d < delta:
                            delta = d
                            deltatype = 2
                            deltaedge = bestedge[v]

            # delta3: half the minimum slack between a pair of S-blossoms.
            for b in blossomparent:
                if (
                    blossomparent[b] is None
                    and label.get(b) == 1
                    and bestedge.get(b) is not None
                ):
                    kslack = slack(bestedge[b][2])
                    if allinteger:
                        assert (kslack % 2) == 0
                        d = kslack // 2
                    else:
                        d = kslack / 2.0
                    if deltatype == -1 or d < delta:
                        delta = d
                        deltatype = 3
                        deltaedge = bestedge[b]

            # delta4: minimum dual of any T-blossom.
            for b in blossomdual:
                if (
                    blossomparent[b] is None
                    and label.get(b) == 2
                    and (deltatype == -1 or blossomdual[b] < delta)
                ):
                    delta = blossomdual[b]
                    deltatype = 4
                    deltablossom = b

            if deltatype == -1:
                # Max-cardinality optimum reached; make the optimum verifiable.
                assert maxcardinality
                deltatype = 1
                delta = max(0, min(dualvar))

            # Update dual variables according to delta.
            if compiled:
                # Labels have not changed since staging; the scalar loop's
                # -=/+= on the same float64 values, compiled.
                _apply_delta(vlab_buffer, dualvar, float(delta))
            else:
                for v in range(n):
                    vlabel = label.get(inblossom[v])
                    if vlabel == 1:
                        dualvar[v] -= delta
                    elif vlabel == 2:
                        dualvar[v] += delta
            for b in blossomdual:
                if blossomparent[b] is None:
                    if label.get(b) == 1:
                        blossomdual[b] += delta
                    elif label.get(b) == 2:
                        blossomdual[b] -= delta

            # Take action at the point where the minimum delta occurred.
            if deltatype == 1:
                break
            elif deltatype == 2:
                v, w, k = deltaedge
                assert label[inblossom[v]] == 1
                allowedge[k] = True
                queue.append(v)
            elif deltatype == 3:
                v, w, k = deltaedge
                allowedge[k] = True
                assert label[inblossom[v]] == 1
                queue.append(v)
            elif deltatype == 4:
                expand_blossom(deltablossom, False)

        # Paranoia check that the matching is symmetric.
        for v in mate:
            assert mate[mate[v]] == v

        if not augmented:
            break

        # End of a stage; expand all S-blossoms which have zero dual.
        for b in list(blossomdual.keys()):
            if b not in blossomdual:
                continue  # already expanded
            if blossomparent[b] is None and label.get(b) == 1 and blossomdual[b] == 0:
                expand_blossom(b, True)

    if allinteger:
        verify_optimum()

    return {(v, mate[v]) for v in mate if v < mate[v]}
