"""Dynamic b-matching with support for lazy ("marked") removals.

The structure tracks, for every rack, the set of incident matching edges and
enforces the degree bound ``b`` on *insertion*.  Following footnote 2 of the
paper, removals may be *lazy*: an edge can be *marked for removal* without
being removed; marked edges are only pruned when a rack's degree would exceed
``b``.  Keeping marked edges around can only reduce routing cost (an extra
matching edge never hurts) while preserving feasibility.

The structure itself is policy-free; the online algorithms decide what to
add, mark, and prune.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterator, Set

from ..errors import DegreeConstraintError, MatchingError
from ..types import NodePair, canonical_pair

__all__ = ["BMatching"]


class BMatching:
    """A degree-bounded dynamic edge set over ``n`` racks.

    Parameters
    ----------
    n_nodes:
        Number of racks.
    b:
        Maximum number of matching edges incident to any rack.
    """

    #: Name under which this kernel is registered in ``MATCHING_BACKENDS``.
    backend_name = "reference"

    def __init__(self, n_nodes: int, b: int):
        if n_nodes < 2:
            raise MatchingError(f"need at least 2 nodes, got {n_nodes}")
        if b < 1:
            raise MatchingError(f"degree bound b must be >= 1, got {b}")
        self._n = int(n_nodes)
        self._b = int(b)
        self._edges: Set[NodePair] = set()
        self._incident: Dict[int, Set[NodePair]] = defaultdict(set)
        self._marked: Set[NodePair] = set()
        # Cumulative counters used for reconfiguration-cost accounting.
        self._additions = 0
        self._removals = 0

    # ------------------------------------------------------------------ #
    # Read access
    # ------------------------------------------------------------------ #
    @property
    def n_nodes(self) -> int:
        """Number of racks."""
        return self._n

    @property
    def b(self) -> int:
        """Per-rack degree bound."""
        return self._b

    @property
    def edges(self) -> FrozenSet[NodePair]:
        """Snapshot of the current matching edges (including marked ones)."""
        return frozenset(self._edges)

    @property
    def marked_edges(self) -> FrozenSet[NodePair]:
        """Edges currently marked for lazy removal."""
        return frozenset(self._marked)

    @property
    def additions(self) -> int:
        """Total number of edge insertions so far."""
        return self._additions

    @property
    def removals(self) -> int:
        """Total number of edge removals so far."""
        return self._removals

    def __len__(self) -> int:
        return len(self._edges)

    def __iter__(self) -> Iterator[NodePair]:
        return iter(self._edges)

    def __contains__(self, pair: tuple[int, int]) -> bool:
        return canonical_pair(*pair) in self._edges

    def degree(self, node: int) -> int:
        """Number of matching edges incident to ``node``."""
        self._check_node(node)
        return len(self._incident[node])

    def edges_at(self, node: int) -> FrozenSet[NodePair]:
        """Matching edges incident to ``node``."""
        self._check_node(node)
        return frozenset(self._incident[node])

    def is_full(self, node: int) -> bool:
        """Whether ``node`` has reached its degree bound."""
        self._check_node(node)
        return len(self._incident[node]) >= self._b

    def has_capacity(self, u: int, v: int) -> bool:
        """Whether the pair ``{u, v}`` could be added without pruning."""
        pair = canonical_pair(u, v)
        self._check_node(pair[0])
        self._check_node(pair[1])
        if pair in self._edges:
            return False
        # Read the incident sets directly: going through degree() would
        # re-validate both nodes on what is a per-request hot path.
        incident = self._incident
        return len(incident[pair[0]]) < self._b and len(incident[pair[1]]) < self._b

    def is_marked(self, u: int, v: int) -> bool:
        """Whether the edge ``{u, v}`` is marked for lazy removal."""
        return canonical_pair(u, v) in self._marked

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, u: int, v: int) -> NodePair:
        """Insert the edge ``{u, v}``.

        Raises
        ------
        MatchingError
            If the edge is already present.
        DegreeConstraintError
            If either endpoint is at its degree bound; callers wanting lazy
            behaviour should call :meth:`prune_to_capacity` first.
        """
        pair = canonical_pair(u, v)
        self._check_node(pair[0])
        self._check_node(pair[1])
        if pair in self._edges:
            raise MatchingError(f"edge {pair} is already in the matching")
        for endpoint in pair:
            if len(self._incident[endpoint]) >= self._b:
                raise DegreeConstraintError(
                    f"adding {pair} would exceed degree bound b={self._b} at node {endpoint}"
                )
        self._edges.add(pair)
        self._incident[pair[0]].add(pair)
        self._incident[pair[1]].add(pair)
        self._additions += 1
        return pair

    def remove(self, u: int, v: int) -> NodePair:
        """Remove the edge ``{u, v}`` (whether marked or not)."""
        pair = canonical_pair(u, v)
        if pair not in self._edges:
            raise MatchingError(f"edge {pair} is not in the matching")
        self._edges.remove(pair)
        self._incident[pair[0]].discard(pair)
        self._incident[pair[1]].discard(pair)
        self._marked.discard(pair)
        self._removals += 1
        return pair

    def mark_for_removal(self, u: int, v: int) -> bool:
        """Mark the edge ``{u, v}`` for lazy removal; no-op if absent.

        Returns whether the edge was present (and is now marked).
        """
        pair = canonical_pair(u, v)
        if pair not in self._edges:
            return False
        self._marked.add(pair)
        return True

    def unmark(self, u: int, v: int) -> bool:
        """Clear the removal mark from edge ``{u, v}``; returns whether it was marked."""
        pair = canonical_pair(u, v)
        if pair in self._marked:
            self._marked.discard(pair)
            return True
        return False

    def prune_to_capacity(self, node: int) -> list[NodePair]:
        """Remove marked edges at ``node`` until it has spare capacity.

        Removes marked edges incident to ``node`` (in deterministic order)
        while the node's degree is at or above the bound ``b``, i.e. until a
        new edge could be added at ``node``.  Returns the removed edges.

        Raises
        ------
        DegreeConstraintError
            If the node is full and has no marked incident edges to prune.
        """
        self._check_node(node)
        removed: list[NodePair] = []
        if len(self._incident[node]) < self._b:
            return removed
        # Marks cannot appear during pruning (remove() only clears them), so
        # the marked incident edges are sorted once instead of on every loop
        # iteration (previously O(d^2 log d) worst case per prune call).
        marked_here = sorted(p for p in self._incident[node] if p in self._marked)
        next_victim = 0
        while len(self._incident[node]) >= self._b:
            if next_victim >= len(marked_here):
                raise DegreeConstraintError(
                    f"node {node} is at degree bound b={self._b} with no marked edges to prune"
                )
            victim = marked_here[next_victim]
            next_victim += 1
            self.remove(*victim)
            removed.append(victim)
        return removed

    def clear(self) -> None:
        """Remove every edge (counts towards :attr:`removals`)."""
        for pair in list(self._edges):
            self.remove(*pair)

    def reset_counters(self) -> None:
        """Zero the addition/removal counters without touching the edges.

        Used by algorithms whose initial matching models a pre-existing
        steady state (e.g. the demand-oblivious rotor baseline) so that the
        setup is not charged as online reconfiguration cost.
        """
        self._additions = 0
        self._removals = 0

    def copy(self) -> "BMatching":
        """Deep copy of the structure (used by tests and history collection)."""
        clone = BMatching(self._n, self._b)
        for pair in self._edges:
            clone.add(*pair)
        for pair in self._marked:
            clone.mark_for_removal(*pair)
        clone._additions = self._additions
        clone._removals = self._removals
        return clone

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _check_node(self, node: int) -> None:
        if not (0 <= node < self._n):
            raise MatchingError(f"node {node} out of range for n={self._n}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BMatching n={self._n} b={self._b} edges={len(self._edges)} "
            f"marked={len(self._marked)}>"
        )
