"""Static maximum-weight b-matching solvers.

The paper's offline baseline SO-BMA computes a maximum weight matching over
the aggregate demand of the whole trace using the blossom algorithm (Galil /
Edmonds).  For ``b > 1`` we provide:

* :func:`iterated_max_weight_b_matching` — runs the blossom algorithm ``b``
  times, removing chosen edges between rounds.  Each round is a (1-)matching,
  so the union trivially satisfies the degree bound; this mirrors how the
  optical switches are provisioned (one matching per switch) and is the
  solver used by SO-BMA.
* :func:`solve_b_rounds` — the same iterated construction, but returning
  *every* nested prefix ``b = 1..b_max`` from a single pass.  Round ``i``
  depends only on rounds ``1..i-1``, so a sweep over ``b`` needs ``b_max``
  blossom rounds instead of ``1 + 2 + ... + b_max``.
* :func:`greedy_b_matching` — the classic 1/2-approximate greedy that scans
  edges by decreasing weight; much faster, used for large ablations.
* :func:`exact_max_weight_b_matching` — exhaustive search for tiny instances,
  used by the tests to certify the quality of the two heuristics.

Solver backends
---------------
The per-round blossom solve is pluggable through :data:`SOLVER_BACKENDS`
(a :class:`~repro.experiments.registry.Registry`, so misspelled names get
"did you mean ...?" suggestions), mirroring the dynamic-kernel
``MATCHING_BACKENDS`` tier:

``"nx"``
    The original NetworkX path (kept as the reference): builds a
    :class:`_DirectAccessGraph` per round and calls
    ``nx.max_weight_matching``.
``"array"`` (default)
    :func:`repro.matching.blossom.max_weight_matching_arrays` — the same
    Galil algorithm on flat int-indexed arrays, behaviour-identical to the
    NetworkX implementation (same matchings, not merely equal weight), about
    2x faster per round before memoisation.
``"numba"``
    The array kernel with its ``@njit`` batched slack scan, active only when
    :func:`~repro.matching.numba_bmatching.numba_backend_active` says so;
    otherwise it falls back to ``"array"`` with a one-time warning, so specs
    pinning the numba solver stay runnable everywhere.

Demand-fingerprint memoisation
------------------------------
Iterated solves are memoised in a small process-local LRU keyed by a stable
hash of (canonical weights in insertion order, ``n_nodes``, effective
backend).  The cache stores the *incremental sweep state* (solved rounds
plus residual weights), so a request for ``b = 6`` after ``b = 9`` is a pure
cache hit and a request for ``b = 9`` after ``b = 3`` only solves rounds
4..9 — repetitions, benchmark arms, and ``b``-grids that aggregate the same
trace pay for each blossom round at most once per process.  ``REPRO_SOLVER_CACHE``
sets the entry limit (default 16; ``0`` disables memoisation).
"""

from __future__ import annotations

import hashlib
import os
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

import networkx as nx
import numpy as np

from ..errors import SolverError
from ..experiments.registry import Registry
from ..types import NodePair, canonical_pair
from .blossom import max_weight_matching_arrays
from .numba_bmatching import NUMBA_AVAILABLE, numba_backend_active
from .validation import check_b_matching

__all__ = [
    "SOLVER_BACKENDS",
    "DEFAULT_SOLVER_BACKEND",
    "resolve_solver_backend",
    "matching_weight",
    "greedy_b_matching",
    "iterated_max_weight_b_matching",
    "solve_b_rounds",
    "exact_max_weight_b_matching",
    "solver_cache_info",
    "solver_cache_clear",
    "export_solver_rounds",
    "import_solver_rounds",
]


def _canonical_weights(weights: Mapping[NodePair, float]) -> Dict[NodePair, float]:
    """Canonicalise pair keys and drop non-positive weights."""
    canon: Dict[NodePair, float] = {}
    for (u, v), w in weights.items():
        if w <= 0:
            continue
        pair = canonical_pair(u, v)
        canon[pair] = canon.get(pair, 0.0) + float(w)
    return canon


def matching_weight(edges: Iterable[NodePair], weights: Mapping[NodePair, float]) -> float:
    """Total weight of an edge set under ``weights`` (missing edges weigh 0).

    Only the *queried* edges are canonicalised — ``O(|edges|)`` — instead of
    rebuilding a canonical copy of the whole weight mapping per call, which
    made this ``O(|weights|)`` inside solver-quality checks and analysis
    loops.  When a mapping pathologically contains both orientations of a
    pair, the canonical ``(min, max)`` key wins.
    """
    total = 0.0
    for u, v in edges:
        a, b = canonical_pair(u, v)
        w = weights.get((a, b))
        if w is None:
            w = weights.get((b, a), 0.0)
        total += w
    return float(total)


def greedy_b_matching(
    weights: Mapping[NodePair, float], n_nodes: int, b: int
) -> Set[NodePair]:
    """Greedy b-matching: scan pairs by decreasing weight, keep if both ends have capacity.

    This is a 1/2-approximation of the maximum-weight b-matching and runs in
    ``O(m log m)`` for ``m`` weighted pairs.
    """
    if b < 1:
        raise SolverError(f"b must be >= 1, got {b}")
    canon = _canonical_weights(weights)
    degrees = [0] * n_nodes
    chosen: Set[NodePair] = set()
    # Sort by weight descending; ties broken by the pair itself so the result
    # is deterministic across runs and platforms.
    for pair, _w in sorted(canon.items(), key=lambda kv: (-kv[1], kv[0])):
        u, v = pair
        if u >= n_nodes or v >= n_nodes:
            raise SolverError(f"pair {pair} out of range for n={n_nodes}")
        if degrees[u] < b and degrees[v] < b:
            chosen.add(pair)
            degrees[u] += 1
            degrees[v] += 1
    return chosen


class _DirectAccessGraph(nx.Graph):
    """``nx.Graph`` whose ``G[v]`` skips the AtlasView wrapper.

    The blossom algorithm's inner ``slack()`` reads ``G[v][w]["weight"]``
    millions of times; the stock ``__getitem__`` allocates a read-only
    AtlasView per call.  Returning the underlying adjacency dict yields the
    very same edge-data mappings (so results are identical) without the
    wrapper allocation, roughly halving solver time on dense demand graphs.
    """

    def __getitem__(self, n):
        return self._adj[n]


# --------------------------------------------------------------------------- #
# Solver backends: one maximum-weight matching round over residual weights
# --------------------------------------------------------------------------- #

#: Name -> round-solver registry.  A round solver takes the residual weight
#: dict (canonical pairs, insertion order = tie-breaking order) and the node
#: count, and returns one maximum-weight (1-)matching as canonical pairs.
SOLVER_BACKENDS: Registry = Registry("solver backend")

#: Backend used when nothing is specified (``MatchingConfig.solver_backend``
#: left at ``None``).
DEFAULT_SOLVER_BACKEND = "array"

#: One-time-warning latch for the numba -> array fallback (per process).
_NUMBA_FALLBACK_WARNED = False


@SOLVER_BACKENDS.register("nx")
def _solve_round_nx(remaining: Mapping[NodePair, float], n_nodes: int) -> Set[NodePair]:
    """One blossom round via NetworkX (the original SO-BMA code path)."""
    g = _DirectAccessGraph()
    g.add_nodes_from(range(n_nodes))
    for (u, v), w in remaining.items():
        g.add_edge(u, v, weight=w)
    matching = nx.max_weight_matching(g, maxcardinality=False, weight="weight")
    return {canonical_pair(u, v) for u, v in matching}


@SOLVER_BACKENDS.register("array")
def _solve_round_array(remaining: Mapping[NodePair, float], n_nodes: int) -> Set[NodePair]:
    """One blossom round on the flat-array kernel (behaviour-identical)."""
    return max_weight_matching_arrays(
        n_nodes, [(u, v, w) for (u, v), w in remaining.items()]
    )


@SOLVER_BACKENDS.register("numba")
def _solve_round_numba(remaining: Mapping[NodePair, float], n_nodes: int) -> Set[NodePair]:
    """The array kernel with the ``@njit`` batched slack scan."""
    return max_weight_matching_arrays(
        n_nodes, [(u, v, w) for (u, v), w in remaining.items()], compiled=True
    )


def resolve_solver_backend(backend: Optional[str]) -> str:
    """Validated effective backend name for a requested solver backend.

    ``None`` means :data:`DEFAULT_SOLVER_BACKEND`.  Requesting ``"numba"``
    on a host where the compiled backend is inactive (numba missing, or
    masked via ``REPRO_NO_NUMBA``) resolves to ``"array"`` with a one-time
    warning — the same graceful-degradation contract as
    :func:`repro.matching.make_matching`.  Unknown names raise
    :class:`~repro.errors.ConfigurationError` with "did you mean ...?"
    suggestions.
    """
    global _NUMBA_FALLBACK_WARNED
    name = DEFAULT_SOLVER_BACKEND if backend is None else backend
    SOLVER_BACKENDS.resolve(name)  # raises with suggestions on unknown names
    name = SOLVER_BACKENDS.canonical(name)
    if name == "numba" and not numba_backend_active():
        if not _NUMBA_FALLBACK_WARNED:
            _NUMBA_FALLBACK_WARNED = True
            reason = (
                "masked by REPRO_NO_NUMBA" if NUMBA_AVAILABLE else "numba is not installed"
            )
            warnings.warn(
                f"solver backend 'numba' is unavailable ({reason}); "
                "falling back to the pure-Python 'array' kernel",
                RuntimeWarning,
                stacklevel=3,
            )
        return "array"
    return name


# --------------------------------------------------------------------------- #
# Demand-fingerprint memoisation of the iterated construction
# --------------------------------------------------------------------------- #


@dataclass
class _SweepState:
    """Incremental state of one iterated solve: rounds done so far.

    ``cumulative[i]`` is the union of rounds ``1..i+1``; ``remaining`` is the
    residual weight dict those rounds have not claimed.  Extending the state
    by more rounds never changes the rounds already recorded, which is what
    makes prefix sharing across ``b`` values exact.
    """

    remaining: Dict[NodePair, float]
    cumulative: List[Set[NodePair]] = field(default_factory=list)
    exhausted: bool = False


_SOLVE_CACHE: "OrderedDict[Tuple[str, int, str], _SweepState]" = OrderedDict()
_CACHE_STATS = {"hits": 0, "misses": 0, "evictions": 0}


def _cache_limit() -> int:
    """Max memo entries (``REPRO_SOLVER_CACHE``; 0 disables memoisation)."""
    try:
        return max(0, int(os.environ.get("REPRO_SOLVER_CACHE", "16")))
    except ValueError:
        return 16


def _demand_fingerprint(canon: Mapping[NodePair, float], n_nodes: int) -> str:
    """Stable digest of canonical weights *in insertion order* plus ``n``.

    Insertion order is part of the key because it is the solver's
    tie-breaking order: two weight dicts with equal content but different
    order may legitimately produce different (equal-weight) matchings.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(np.int64(n_nodes).tobytes())
    if canon:
        keys = np.fromiter(
            (u * n_nodes + v for u, v in canon), dtype=np.int64, count=len(canon)
        )
        vals = np.fromiter(canon.values(), dtype=np.float64, count=len(canon))
        h.update(keys.tobytes())
        h.update(vals.tobytes())
    return h.hexdigest()


def _validated_canonical_weights(
    weights: Mapping[NodePair, float], n_nodes: int
) -> Dict[NodePair, float]:
    """Canonical weights with every pair checked against ``n_nodes``."""
    canon = _canonical_weights(weights)
    for u, v in canon:
        if not (0 <= u < n_nodes and 0 <= v < n_nodes):
            raise SolverError(f"pair {(u, v)} out of range for n={n_nodes}")
    return canon


def _sweep_state(
    weights: Mapping[NodePair, float], n_nodes: int, backend: str
) -> _SweepState:
    """The (possibly cached) sweep state for this demand and backend."""
    canon = _validated_canonical_weights(weights, n_nodes)
    limit = _cache_limit()
    if limit == 0:
        return _SweepState(remaining=canon)
    key = (backend, n_nodes, _demand_fingerprint(canon, n_nodes))
    state = _SOLVE_CACHE.get(key)
    if state is None:
        _CACHE_STATS["misses"] += 1
        state = _SweepState(remaining=canon)
        _SOLVE_CACHE[key] = state
    else:
        _CACHE_STATS["hits"] += 1
        _SOLVE_CACHE.move_to_end(key)
    while len(_SOLVE_CACHE) > limit:
        _SOLVE_CACHE.popitem(last=False)
        _CACHE_STATS["evictions"] += 1
    return state


def _extend_state(state: _SweepState, b: int, backend: str, n_nodes: int) -> None:
    """Solve further rounds until ``b`` rounds are recorded (or exhausted)."""
    solve_round = SOLVER_BACKENDS.resolve(backend)
    while len(state.cumulative) < b and not state.exhausted:
        if not state.remaining:
            state.exhausted = True
            break
        round_matching = solve_round(state.remaining, n_nodes)
        if not round_matching:
            state.exhausted = True
            break
        union = set(state.cumulative[-1]) if state.cumulative else set()
        union.update(round_matching)
        for pair in round_matching:
            state.remaining.pop(pair, None)
        state.cumulative.append(union)


def _prefix_result(state: _SweepState, b: int) -> Set[NodePair]:
    if not state.cumulative:
        return set()
    return set(state.cumulative[min(b, len(state.cumulative)) - 1])


def solver_cache_info() -> Dict[str, int]:
    """Hit/miss/eviction counters and current size of the solver memo."""
    return {
        **_CACHE_STATS,
        "currsize": len(_SOLVE_CACHE),
        "maxsize": _cache_limit(),
    }


def solver_cache_clear() -> None:
    """Drop all memoised sweep states and zero the counters."""
    _SOLVE_CACHE.clear()
    for k in _CACHE_STATS:
        _CACHE_STATS[k] = 0


def iterated_max_weight_b_matching(
    weights: Mapping[NodePair, float],
    n_nodes: int,
    b: int,
    backend: Optional[str] = None,
) -> Set[NodePair]:
    """b rounds of maximum-weight (1-)matching via the blossom algorithm.

    Round ``i`` computes a maximum-weight matching on the pairs not selected
    in earlier rounds; the union of the ``b`` rounds is returned.  With
    ``b = 1`` this is exactly the paper's SO-BMA construction.

    ``backend`` selects the per-round kernel from :data:`SOLVER_BACKENDS`
    (``None`` = :data:`DEFAULT_SOLVER_BACKEND`); all backends produce the
    same matchings.  Results are memoised per process on a fingerprint of
    the canonical weights, and nested prefixes share work: solving the same
    demand at a smaller ``b`` afterwards is a pure cache hit, a larger ``b``
    only solves the additional rounds.
    """
    if b < 1:
        raise SolverError(f"b must be >= 1, got {b}")
    effective = resolve_solver_backend(backend)
    state = _sweep_state(weights, n_nodes, effective)
    _extend_state(state, b, effective, n_nodes)
    chosen = _prefix_result(state, b)
    check_b_matching(chosen, n_nodes, b)
    return chosen


def solve_b_rounds(
    weights: Mapping[NodePair, float],
    n_nodes: int,
    b_max: int,
    backend: Optional[str] = None,
) -> List[Set[NodePair]]:
    """All nested iterated b-matchings for ``b = 1..b_max`` in one pass.

    ``solve_b_rounds(w, n, b_max)[k - 1] == iterated_max_weight_b_matching(w, n, k)``
    for every ``k <= b_max``, but the whole sweep costs ``b_max`` blossom
    rounds instead of ``1 + 2 + ... + b_max``.  Shares the same memo as
    :func:`iterated_max_weight_b_matching`.
    """
    if b_max < 1:
        raise SolverError(f"b_max must be >= 1, got {b_max}")
    effective = resolve_solver_backend(backend)
    state = _sweep_state(weights, n_nodes, effective)
    _extend_state(state, b_max, effective, n_nodes)
    results = [_prefix_result(state, k) for k in range(1, b_max + 1)]
    for k, chosen in enumerate(results, start=1):
        check_b_matching(chosen, n_nodes, k)
    return results


def export_solver_rounds(
    weights: Mapping[NodePair, float],
    n_nodes: int,
    b_max: int,
    backend: Optional[str] = None,
) -> Dict[str, object]:
    """Solve ``b_max`` rounds and return a JSON-safe snapshot of the memo state.

    The payload carries everything :func:`import_solver_rounds` needs to seed
    another process's solver memo: the demand fingerprint (insertion order
    included, since it is the tie-breaking order), the per-round incremental
    matchings, and the residual weights *in insertion order* so further
    rounds extend identically.  An execution planner can therefore solve the
    shared SO-BMA demand once in the parent and ship the rounds to every
    worker, instead of each per-process memo re-solving the same aggregate.
    """
    if b_max < 1:
        raise SolverError(f"b_max must be >= 1, got {b_max}")
    effective = resolve_solver_backend(backend)
    canon = _validated_canonical_weights(weights, n_nodes)
    state = _sweep_state(weights, n_nodes, effective)
    _extend_state(state, b_max, effective, n_nodes)
    rounds: List[List[List[int]]] = []
    prev: Set[NodePair] = set()
    for union in state.cumulative:
        rounds.append(sorted([int(u), int(v)] for u, v in union - prev))
        prev = union
    return {
        "version": 1,
        "backend": effective,
        "n_nodes": int(n_nodes),
        "fingerprint": _demand_fingerprint(canon, n_nodes),
        "rounds": rounds,
        "remaining": [[int(u), int(v), float(w)] for (u, v), w in state.remaining.items()],
        "exhausted": bool(state.exhausted),
    }


def import_solver_rounds(payload: Mapping[str, object]) -> bool:
    """Seed the solver memo from an :func:`export_solver_rounds` payload.

    Returns ``True`` when the memo was seeded, ``False`` when the import was
    skipped — memoisation disabled (``REPRO_SOLVER_CACHE=0``), or an existing
    entry already holds at least as many solved rounds.  After a successful
    import, solving the same demand on the same backend is a pure cache hit
    up to the exported ``b``; larger ``b`` values extend from the shipped
    residual weights exactly as the exporting process would have.
    """
    if _cache_limit() == 0:
        return False
    if payload.get("version") != 1:
        raise SolverError(
            f"unsupported solver-rounds payload version: {payload.get('version')!r}"
        )
    backend = str(payload["backend"])
    n_nodes = int(payload["n_nodes"])  # type: ignore[arg-type]
    key = (backend, n_nodes, str(payload["fingerprint"]))
    rounds = payload["rounds"]
    existing = _SOLVE_CACHE.get(key)
    if existing is not None and len(existing.cumulative) >= len(rounds):  # type: ignore[arg-type]
        _SOLVE_CACHE.move_to_end(key)
        return False
    cumulative: List[Set[NodePair]] = []
    union: Set[NodePair] = set()
    for round_pairs in rounds:  # type: ignore[union-attr]
        union = set(union)
        union.update((int(u), int(v)) for u, v in round_pairs)
        cumulative.append(union)
    remaining: Dict[NodePair, float] = {
        (int(u), int(v)): float(w) for u, v, w in payload["remaining"]  # type: ignore[union-attr]
    }
    _SOLVE_CACHE[key] = _SweepState(
        remaining=remaining, cumulative=cumulative, exhausted=bool(payload["exhausted"])
    )
    _SOLVE_CACHE.move_to_end(key)
    limit = _cache_limit()
    while len(_SOLVE_CACHE) > limit:
        _SOLVE_CACHE.popitem(last=False)
        _CACHE_STATS["evictions"] += 1
    return True


def exact_max_weight_b_matching(
    weights: Mapping[NodePair, float], n_nodes: int, b: int, max_edges: int = 20
) -> Set[NodePair]:
    """Exhaustive maximum-weight b-matching for tiny instances.

    Enumerates subsets of the positively weighted pairs — exponential in the
    number of pairs, so ``max_edges`` guards against accidental use on large
    inputs.  Intended for tests certifying the heuristics.  Subsets are
    enumerated in the same (size-major, lexicographic) order as the original
    ``itertools.combinations`` formulation so equal-weight ties resolve
    identically, but branches whose prefix already violates the degree bound
    are cut immediately and sizes beyond ``n * b / 2`` (the most edges any
    b-matching can hold) are skipped entirely — which keeps the certifier
    usable at ``max_edges = 20`` instead of timing out.
    """
    if b < 1:
        raise SolverError(f"b must be >= 1, got {b}")
    canon = _canonical_weights(weights)
    if len(canon) > max_edges:
        raise SolverError(
            f"exact solver limited to {max_edges} weighted pairs, got {len(canon)}"
        )
    pairs = sorted(canon)
    m = len(pairs)
    degrees = [0] * n_nodes
    best: Set[NodePair] = set()
    best_weight = 0.0
    chosen: List[NodePair] = []

    def extend(start: int, size: int, total: float) -> None:
        nonlocal best, best_weight
        if size == 0:
            if total > best_weight:
                best_weight = total
                best = set(chosen)
            return
        # Not enough pairs left to reach the requested size.
        for i in range(start, m - size + 1):
            u, v = pairs[i]
            if degrees[u] >= b or degrees[v] >= b:
                continue  # every extension of this prefix is infeasible too
            degrees[u] += 1
            degrees[v] += 1
            chosen.append((u, v))
            extend(i + 1, size - 1, total + canon[(u, v)])
            chosen.pop()
            degrees[u] -= 1
            degrees[v] -= 1

    for r in range(min(m, n_nodes * b // 2) + 1):
        extend(0, r, 0.0)
    return best
