"""Static maximum-weight b-matching solvers.

The paper's offline baseline SO-BMA computes a maximum weight matching over
the aggregate demand of the whole trace using NetworkX's blossom
implementation (Galil / Edmonds).  For ``b > 1`` we provide:

* :func:`iterated_max_weight_b_matching` — runs the blossom algorithm ``b``
  times, removing chosen edges between rounds.  Each round is a (1-)matching,
  so the union trivially satisfies the degree bound; this mirrors how the
  optical switches are provisioned (one matching per switch) and is the
  solver used by SO-BMA.
* :func:`greedy_b_matching` — the classic 1/2-approximate greedy that scans
  edges by decreasing weight; much faster, used for large ablations.
* :func:`exact_max_weight_b_matching` — exhaustive search for tiny instances,
  used by the tests to certify the quality of the two heuristics.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterable, Mapping, Set

import networkx as nx

from ..errors import SolverError
from ..types import NodePair, canonical_pair
from .validation import check_b_matching

__all__ = [
    "matching_weight",
    "greedy_b_matching",
    "iterated_max_weight_b_matching",
    "exact_max_weight_b_matching",
]


def _canonical_weights(weights: Mapping[NodePair, float]) -> Dict[NodePair, float]:
    """Canonicalise pair keys and drop non-positive weights."""
    canon: Dict[NodePair, float] = {}
    for (u, v), w in weights.items():
        if w <= 0:
            continue
        pair = canonical_pair(u, v)
        canon[pair] = canon.get(pair, 0.0) + float(w)
    return canon


def matching_weight(edges: Iterable[NodePair], weights: Mapping[NodePair, float]) -> float:
    """Total weight of an edge set under ``weights`` (missing edges weigh 0)."""
    canon = {canonical_pair(u, v): w for (u, v), w in weights.items()}
    return float(sum(canon.get(canonical_pair(u, v), 0.0) for u, v in edges))


def greedy_b_matching(
    weights: Mapping[NodePair, float], n_nodes: int, b: int
) -> Set[NodePair]:
    """Greedy b-matching: scan pairs by decreasing weight, keep if both ends have capacity.

    This is a 1/2-approximation of the maximum-weight b-matching and runs in
    ``O(m log m)`` for ``m`` weighted pairs.
    """
    if b < 1:
        raise SolverError(f"b must be >= 1, got {b}")
    canon = _canonical_weights(weights)
    degrees = [0] * n_nodes
    chosen: Set[NodePair] = set()
    # Sort by weight descending; ties broken by the pair itself so the result
    # is deterministic across runs and platforms.
    for pair, _w in sorted(canon.items(), key=lambda kv: (-kv[1], kv[0])):
        u, v = pair
        if u >= n_nodes or v >= n_nodes:
            raise SolverError(f"pair {pair} out of range for n={n_nodes}")
        if degrees[u] < b and degrees[v] < b:
            chosen.add(pair)
            degrees[u] += 1
            degrees[v] += 1
    return chosen


class _DirectAccessGraph(nx.Graph):
    """``nx.Graph`` whose ``G[v]`` skips the AtlasView wrapper.

    The blossom algorithm's inner ``slack()`` reads ``G[v][w]["weight"]``
    millions of times; the stock ``__getitem__`` allocates a read-only
    AtlasView per call.  Returning the underlying adjacency dict yields the
    very same edge-data mappings (so results are identical) without the
    wrapper allocation, roughly halving solver time on dense demand graphs.
    """

    def __getitem__(self, n):
        return self._adj[n]


def iterated_max_weight_b_matching(
    weights: Mapping[NodePair, float], n_nodes: int, b: int
) -> Set[NodePair]:
    """b rounds of maximum-weight (1-)matching via NetworkX blossom.

    Round ``i`` computes a maximum-weight matching on the pairs not selected
    in earlier rounds; the union of the ``b`` rounds is returned.  With
    ``b = 1`` this is exactly the paper's SO-BMA construction.
    """
    if b < 1:
        raise SolverError(f"b must be >= 1, got {b}")
    remaining = _canonical_weights(weights)
    chosen: Set[NodePair] = set()
    for _round in range(b):
        if not remaining:
            break
        g = _DirectAccessGraph()
        g.add_nodes_from(range(n_nodes))
        for (u, v), w in remaining.items():
            if u >= n_nodes or v >= n_nodes:
                raise SolverError(f"pair {(u, v)} out of range for n={n_nodes}")
            g.add_edge(u, v, weight=w)
        round_matching = nx.max_weight_matching(g, maxcardinality=False, weight="weight")
        if not round_matching:
            break
        for u, v in round_matching:
            pair = canonical_pair(u, v)
            chosen.add(pair)
            remaining.pop(pair, None)
    check_b_matching(chosen, n_nodes, b)
    return chosen


def exact_max_weight_b_matching(
    weights: Mapping[NodePair, float], n_nodes: int, b: int, max_edges: int = 20
) -> Set[NodePair]:
    """Exhaustive maximum-weight b-matching for tiny instances.

    Enumerates subsets of the positively weighted pairs, so it is exponential
    in the number of pairs; ``max_edges`` guards against accidental use on
    large inputs.  Intended for tests certifying the heuristics.
    """
    canon = _canonical_weights(weights)
    if len(canon) > max_edges:
        raise SolverError(
            f"exact solver limited to {max_edges} weighted pairs, got {len(canon)}"
        )
    pairs = sorted(canon)
    best: Set[NodePair] = set()
    best_weight = 0.0
    for r in range(len(pairs) + 1):
        for subset in combinations(pairs, r):
            degrees = [0] * n_nodes
            feasible = True
            for u, v in subset:
                degrees[u] += 1
                degrees[v] += 1
                if degrees[u] > b or degrees[v] > b:
                    feasible = False
                    break
            if not feasible:
                continue
            total = sum(canon[p] for p in subset)
            if total > best_weight:
                best_weight = total
                best = set(subset)
    return best
