"""Array-backed fast b-matching kernel.

:class:`FastBMatching` is an observationally identical drop-in replacement for
the reference :class:`~repro.matching.bmatching.BMatching`:

* edges are stored as *int-encoded canonical pairs* ``u * n + v`` (with
  ``u < v``), so hot-path membership tests hash a single machine int instead
  of a tuple, and ``min()`` over keys equals the lexicographic minimum over
  canonical pairs (the reference pruning order);
* per-node degrees live in a numpy integer array, read without re-validating
  the node on every access;
* marked (lazily removed) edges are kept in a *per-node marked index*, so
  :meth:`prune_to_capacity` selects victims without re-scanning or re-sorting
  the incident set on every iteration.

Every public method matches the reference class in return values, mutation
semantics, and raised exception types *and messages*; the differential
harness in ``tests/test_differential_matching.py`` certifies this on
randomized operation sequences and full trace replays.  Hot loops inside
:mod:`repro.core` may additionally read :attr:`FastBMatching.edge_keys` and
:meth:`FastBMatching.encode` to skip tuple construction entirely.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, List, Set

import numpy as np

from ..errors import DegreeConstraintError, MatchingError
from ..types import NodePair, canonical_pair

__all__ = ["FastBMatching"]


class FastBMatching:
    """A degree-bounded dynamic edge set over ``n`` racks (fast kernel).

    Parameters
    ----------
    n_nodes:
        Number of racks.
    b:
        Maximum number of matching edges incident to any rack.
    """

    #: Name under which this kernel is registered in ``MATCHING_BACKENDS``.
    backend_name = "fast"

    def __init__(self, n_nodes: int, b: int):
        if n_nodes < 2:
            raise MatchingError(f"need at least 2 nodes, got {n_nodes}")
        if b < 1:
            raise MatchingError(f"degree bound b must be >= 1, got {b}")
        self._n = int(n_nodes)
        self._b = int(b)
        self._degree = np.zeros(self._n, dtype=np.int64)
        self._edge_keys: Set[int] = set()
        self._incident: List[Set[int]] = [set() for _ in range(self._n)]
        self._marked_keys: Set[int] = set()
        self._marked_at: List[Set[int]] = [set() for _ in range(self._n)]
        # Cumulative counters used for reconfiguration-cost accounting.
        self._additions = 0
        self._removals = 0

    # ------------------------------------------------------------------ #
    # Key encoding
    # ------------------------------------------------------------------ #
    def encode(self, u: int, v: int) -> int:
        """Int key of the canonical pair ``{u, v}`` (``u * n + v`` with u < v)."""
        if u == v:
            raise ValueError(
                f"a node pair must consist of two distinct nodes, got ({u}, {v})"
            )
        return u * self._n + v if u < v else v * self._n + u

    def decode(self, key: int) -> NodePair:
        """Canonical pair of an int key."""
        return (key // self._n, key % self._n)

    @property
    def edge_keys(self) -> Set[int]:
        """Live set of int-encoded edges (hot-path read access; do not mutate)."""
        return self._edge_keys

    @property
    def degree_array(self) -> np.ndarray:
        """Live numpy array of per-node degrees (hot-path read access)."""
        return self._degree

    # ------------------------------------------------------------------ #
    # Read access
    # ------------------------------------------------------------------ #
    @property
    def n_nodes(self) -> int:
        """Number of racks."""
        return self._n

    @property
    def b(self) -> int:
        """Per-rack degree bound."""
        return self._b

    @property
    def edges(self) -> FrozenSet[NodePair]:
        """Snapshot of the current matching edges (including marked ones)."""
        n = self._n
        return frozenset((k // n, k % n) for k in self._edge_keys)

    @property
    def marked_edges(self) -> FrozenSet[NodePair]:
        """Edges currently marked for lazy removal."""
        n = self._n
        return frozenset((k // n, k % n) for k in self._marked_keys)

    @property
    def additions(self) -> int:
        """Total number of edge insertions so far."""
        return self._additions

    @property
    def removals(self) -> int:
        """Total number of edge removals so far."""
        return self._removals

    def __len__(self) -> int:
        return len(self._edge_keys)

    def __iter__(self) -> Iterator[NodePair]:
        n = self._n
        return iter([(k // n, k % n) for k in self._edge_keys])

    def __contains__(self, pair: tuple[int, int]) -> bool:
        u, v = canonical_pair(*pair)
        return u * self._n + v in self._edge_keys

    def degree(self, node: int) -> int:
        """Number of matching edges incident to ``node``."""
        self._check_node(node)
        return int(self._degree[node])

    def edges_at(self, node: int) -> FrozenSet[NodePair]:
        """Matching edges incident to ``node``."""
        self._check_node(node)
        n = self._n
        return frozenset((k // n, k % n) for k in self._incident[node])

    def is_full(self, node: int) -> bool:
        """Whether ``node`` has reached its degree bound."""
        self._check_node(node)
        return int(self._degree[node]) >= self._b

    def has_capacity(self, u: int, v: int) -> bool:
        """Whether the pair ``{u, v}`` could be added without pruning."""
        a, c = canonical_pair(u, v)
        self._check_node(a)
        self._check_node(c)
        if a * self._n + c in self._edge_keys:
            return False
        degree = self._degree
        return bool(degree[a] < self._b and degree[c] < self._b)

    def is_marked(self, u: int, v: int) -> bool:
        """Whether the edge ``{u, v}`` is marked for lazy removal."""
        a, c = canonical_pair(u, v)
        return a * self._n + c in self._marked_keys

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, u: int, v: int) -> NodePair:
        """Insert the edge ``{u, v}`` (same contract as the reference kernel)."""
        pair = canonical_pair(u, v)
        self._check_node(pair[0])
        self._check_node(pair[1])
        key = pair[0] * self._n + pair[1]
        if key in self._edge_keys:
            raise MatchingError(f"edge {pair} is already in the matching")
        for endpoint in pair:
            if self._degree[endpoint] >= self._b:
                raise DegreeConstraintError(
                    f"adding {pair} would exceed degree bound b={self._b} at node {endpoint}"
                )
        self._edge_keys.add(key)
        self._incident[pair[0]].add(key)
        self._incident[pair[1]].add(key)
        self._degree[pair[0]] += 1
        self._degree[pair[1]] += 1
        self._additions += 1
        return pair

    def remove(self, u: int, v: int) -> NodePair:
        """Remove the edge ``{u, v}`` (whether marked or not)."""
        pair = canonical_pair(u, v)
        key = pair[0] * self._n + pair[1]
        if key not in self._edge_keys:
            raise MatchingError(f"edge {pair} is not in the matching")
        self._edge_keys.discard(key)
        self._incident[pair[0]].discard(key)
        self._incident[pair[1]].discard(key)
        self._degree[pair[0]] -= 1
        self._degree[pair[1]] -= 1
        if key in self._marked_keys:
            self._marked_keys.discard(key)
            self._marked_at[pair[0]].discard(key)
            self._marked_at[pair[1]].discard(key)
        self._removals += 1
        return pair

    def mark_for_removal(self, u: int, v: int) -> bool:
        """Mark the edge ``{u, v}`` for lazy removal; no-op if absent.

        Returns whether the edge was present (and is now marked).
        """
        pair = canonical_pair(u, v)
        key = pair[0] * self._n + pair[1]
        if key not in self._edge_keys:
            return False
        if key not in self._marked_keys:
            self._marked_keys.add(key)
            self._marked_at[pair[0]].add(key)
            self._marked_at[pair[1]].add(key)
        return True

    def unmark(self, u: int, v: int) -> bool:
        """Clear the removal mark from edge ``{u, v}``; returns whether it was marked."""
        pair = canonical_pair(u, v)
        key = pair[0] * self._n + pair[1]
        if key in self._marked_keys:
            self._marked_keys.discard(key)
            self._marked_at[pair[0]].discard(key)
            self._marked_at[pair[1]].discard(key)
            return True
        return False

    def prune_to_capacity(self, node: int) -> list[NodePair]:
        """Remove marked edges at ``node`` until it has spare capacity.

        Victims are chosen in ascending canonical-pair order, exactly as the
        reference kernel does — int keys order identically to canonical
        pairs — but via the per-node marked index instead of re-scanning the
        incident set each iteration.
        """
        self._check_node(node)
        removed: list[NodePair] = []
        n = self._n
        while self._degree[node] >= self._b:
            marked_here = self._marked_at[node]
            if not marked_here:
                raise DegreeConstraintError(
                    f"node {node} is at degree bound b={self._b} with no marked edges to prune"
                )
            key = min(marked_here)
            victim = (key // n, key % n)
            self.remove(*victim)
            removed.append(victim)
        return removed

    def clear(self) -> None:
        """Remove every edge (counts towards :attr:`removals`)."""
        n = self._n
        for key in list(self._edge_keys):
            self.remove(key // n, key % n)

    def reset_counters(self) -> None:
        """Zero the addition/removal counters without touching the edges."""
        self._additions = 0
        self._removals = 0

    def copy(self) -> "FastBMatching":
        """Deep copy of the structure (used by tests and history collection).

        Builds ``type(self)`` so subclasses (the numba kernel) clone onto
        their own class, keeping any auxiliary state their ``add`` maintains.
        """
        clone = type(self)(self._n, self._b)
        for pair in self.edges:
            clone.add(*pair)
        for pair in self.marked_edges:
            clone.mark_for_removal(*pair)
        clone._additions = self._additions
        clone._removals = self._removals
        return clone

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _check_node(self, node: int) -> None:
        if not (0 <= node < self._n):
            raise MatchingError(f"node {node} out of range for n={self._n}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FastBMatching n={self._n} b={self._b} edges={len(self._edge_keys)} "
            f"marked={len(self._marked_keys)}>"
        )
