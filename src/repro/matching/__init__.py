"""b-matching data structures and static solvers.

A *b-matching* over racks ``0..n-1`` is a set of node pairs (the reconfigurable
optical links) in which every rack is incident to at most ``b`` pairs.  The
online algorithms in :mod:`repro.core` maintain a dynamic b-matching; the
offline baseline SO-BMA uses the static maximum-weight solvers in
:mod:`repro.matching.static_solver`.

Three kernel backends
---------------------
The dynamic structure exists in three observationally identical
implementations, selected by name through :data:`MATCHING_BACKENDS` /
:func:`make_matching` and wired into experiments via
``SimulationConfig.matching_backend``:

``"reference"`` — :class:`~repro.matching.bmatching.BMatching`
    The original, readable kernel: plain sets of canonical pair tuples.  It is
    the semantic ground truth; when run through the simulation engine it also
    forces the engine's per-request replay loop, so a reference run exercises
    the exact pre-optimization code path.

``"fast"`` (default) — :class:`~repro.matching.fast_bmatching.FastBMatching`
    The array-backed kernel: int-encoded edges (``u * n + v``), numpy degree
    arrays, and a per-node marked-edge index so lazy-removal pruning never
    re-sorts.  It additionally exposes ``edge_keys``/``encode`` so the batched
    ``serve_batch`` loops in :mod:`repro.core` can test membership on machine
    ints.

``"numba"`` — :class:`~repro.matching.numba_bmatching.NumbaBMatching`
    The compiled kernel: a ``FastBMatching`` that additionally maintains a
    dense membership LUT which the ``@njit`` batch-scan kernels in
    :mod:`repro.matching.numba_bmatching` (R-BMA's Theorem 1 filter loop,
    BMA's demand-graph accumulation, Hybrid's switch-step diff) read
    directly.  Import-optional: when numba is unavailable (or masked via
    ``REPRO_NO_NUMBA``), :func:`make_matching` falls back to the ``"fast"``
    kernel with a one-time warning, so specs pinning the numba backend stay
    runnable everywhere (see :func:`numba_backend_active`).

All backends are guarded by a differential harness
(``tests/test_differential_matching.py``) that replays randomized operation
sequences and whole traces through them in lockstep and requires identical
edges, marks, counters, exceptions, and bit-identical run costs, plus
golden-trace pins (``tests/test_regression_pins.py``) that fail loudly if
any kernel's observable behaviour drifts.

Static solver backends
----------------------
The *static* maximum-weight solvers behind SO-BMA follow the same tier
pattern through :data:`SOLVER_BACKENDS` / ``MatchingConfig.solver_backend``:
``"nx"`` (the original NetworkX blossom path, kept as reference),
``"array"`` (default — the flat-array Galil kernel in
:mod:`repro.matching.blossom`, behaviour-identical to NetworkX), and
``"numba"`` (the array kernel's compiled slack scan, falling back to
``"array"`` when inactive).  Iterated solves are memoised on a demand
fingerprint and ``b``-sweeps share nested prefixes; see
:mod:`repro.matching.static_solver` and ``tests/test_solver_backends.py``.
"""

import warnings
from typing import Optional

from .bmatching import BMatching
from .fast_bmatching import FastBMatching
from .numba_bmatching import NUMBA_AVAILABLE, NumbaBMatching, numba_backend_active
from .static_solver import (
    DEFAULT_SOLVER_BACKEND,
    SOLVER_BACKENDS,
    exact_max_weight_b_matching,
    greedy_b_matching,
    iterated_max_weight_b_matching,
    matching_weight,
    resolve_solver_backend,
    solve_b_rounds,
    solver_cache_clear,
    solver_cache_info,
)
from .validation import check_b_matching, is_valid_b_matching
from ..errors import MatchingError

__all__ = [
    "BMatching",
    "FastBMatching",
    "NumbaBMatching",
    "NUMBA_AVAILABLE",
    "numba_backend_active",
    "MATCHING_BACKENDS",
    "DEFAULT_MATCHING_BACKEND",
    "make_matching",
    "convert_matching",
    "SOLVER_BACKENDS",
    "DEFAULT_SOLVER_BACKEND",
    "resolve_solver_backend",
    "greedy_b_matching",
    "iterated_max_weight_b_matching",
    "solve_b_rounds",
    "exact_max_weight_b_matching",
    "solver_cache_info",
    "solver_cache_clear",
    "matching_weight",
    "is_valid_b_matching",
    "check_b_matching",
]

#: Name -> class map of the dynamic b-matching kernels.  ``"numba"`` is
#: always registered (so configs and specs naming it validate everywhere);
#: :func:`make_matching` decides at construction time whether it resolves to
#: the compiled kernel or falls back to ``"fast"``.
MATCHING_BACKENDS = {
    BMatching.backend_name: BMatching,
    FastBMatching.backend_name: FastBMatching,
    NumbaBMatching.backend_name: NumbaBMatching,
}

#: Backend used when nothing is specified.
DEFAULT_MATCHING_BACKEND = FastBMatching.backend_name

#: One-time-warning latch for the numba -> fast fallback (per process).
_NUMBA_FALLBACK_WARNED = False


def _resolve_backend(name: str) -> str:
    """Apply the numba -> fast fallback (warning once) to a backend name."""
    global _NUMBA_FALLBACK_WARNED
    if name == NumbaBMatching.backend_name and not numba_backend_active():
        if not _NUMBA_FALLBACK_WARNED:
            _NUMBA_FALLBACK_WARNED = True
            reason = (
                "masked by REPRO_NO_NUMBA" if NUMBA_AVAILABLE else "numba is not installed"
            )
            warnings.warn(
                f"matching backend 'numba' is unavailable ({reason}); "
                "falling back to the pure-Python 'fast' kernel",
                RuntimeWarning,
                stacklevel=3,
            )
        return FastBMatching.backend_name
    return name


def make_matching(n_nodes: int, b: int, backend: Optional[str] = None):
    """Construct a dynamic b-matching using the named kernel backend.

    ``backend`` is one of :data:`MATCHING_BACKENDS` (``None`` means
    :data:`DEFAULT_MATCHING_BACKEND`).  Requesting ``"numba"`` on a host
    where the compiled backend is inactive (numba missing, or masked via
    ``REPRO_NO_NUMBA``) returns a ``"fast"`` kernel instead, warning once
    per process, so pinned specs degrade gracefully rather than fail.
    """
    name = _resolve_backend(DEFAULT_MATCHING_BACKEND if backend is None else backend)
    try:
        cls = MATCHING_BACKENDS[name]
    except KeyError:
        raise MatchingError(
            f"unknown matching backend {name!r} "
            f"(available: {', '.join(sorted(MATCHING_BACKENDS))})"
        ) from None
    return cls(n_nodes, b)


def convert_matching(matching, backend: str):
    """The same matching state rebuilt on the named backend.

    Edges, marks, and the addition/removal counters carry over exactly; the
    input structure is left untouched.  Returns the input unchanged when it
    is already on the requested backend (after the numba -> fast fallback,
    so converting to an unavailable ``"numba"`` backend is the identity on
    an already-``"fast"`` matching).
    """
    backend = _resolve_backend(backend)
    if matching.backend_name == backend:
        return matching
    clone = make_matching(matching.n_nodes, matching.b, backend)
    for pair in sorted(matching.edges):
        clone.add(*pair)
    for pair in sorted(matching.marked_edges):
        clone.mark_for_removal(*pair)
    clone._additions = matching.additions
    clone._removals = matching.removals
    return clone
