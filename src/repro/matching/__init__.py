"""b-matching data structures and static solvers.

A *b-matching* over racks ``0..n-1`` is a set of node pairs (the reconfigurable
optical links) in which every rack is incident to at most ``b`` pairs.  The
online algorithms in :mod:`repro.core` maintain a dynamic b-matching; the
offline baseline SO-BMA uses the static maximum-weight solvers in
:mod:`repro.matching.static_solver`.

Two kernel backends
-------------------
The dynamic structure exists in two observationally identical implementations,
selected by name through :data:`MATCHING_BACKENDS` / :func:`make_matching` and
wired into experiments via ``SimulationConfig.matching_backend``:

``"reference"`` — :class:`~repro.matching.bmatching.BMatching`
    The original, readable kernel: plain sets of canonical pair tuples.  It is
    the semantic ground truth; when run through the simulation engine it also
    forces the engine's per-request replay loop, so a reference run exercises
    the exact pre-optimization code path.

``"fast"`` (default) — :class:`~repro.matching.fast_bmatching.FastBMatching`
    The array-backed kernel: int-encoded edges (``u * n + v``), numpy degree
    arrays, and a per-node marked-edge index so lazy-removal pruning never
    re-sorts.  It additionally exposes ``edge_keys``/``encode`` so the batched
    ``serve_batch`` loops in :mod:`repro.core` can test membership on machine
    ints.

The two backends are guarded by a differential harness
(``tests/test_differential_matching.py``) that replays randomized operation
sequences and whole traces through both and requires identical edges, marks,
counters, exceptions, and bit-identical run costs, plus golden-trace pins
(``tests/test_regression_pins.py``) that fail loudly if either kernel's
observable behaviour drifts.
"""

from typing import Optional

from .bmatching import BMatching
from .fast_bmatching import FastBMatching
from .static_solver import (
    exact_max_weight_b_matching,
    greedy_b_matching,
    iterated_max_weight_b_matching,
    matching_weight,
)
from .validation import check_b_matching, is_valid_b_matching
from ..errors import MatchingError

__all__ = [
    "BMatching",
    "FastBMatching",
    "MATCHING_BACKENDS",
    "DEFAULT_MATCHING_BACKEND",
    "make_matching",
    "convert_matching",
    "greedy_b_matching",
    "iterated_max_weight_b_matching",
    "exact_max_weight_b_matching",
    "matching_weight",
    "is_valid_b_matching",
    "check_b_matching",
]

#: Name -> class map of the dynamic b-matching kernels.
MATCHING_BACKENDS = {
    BMatching.backend_name: BMatching,
    FastBMatching.backend_name: FastBMatching,
}

#: Backend used when nothing is specified.
DEFAULT_MATCHING_BACKEND = FastBMatching.backend_name


def make_matching(n_nodes: int, b: int, backend: Optional[str] = None):
    """Construct a dynamic b-matching using the named kernel backend.

    ``backend`` is one of :data:`MATCHING_BACKENDS` (``None`` means
    :data:`DEFAULT_MATCHING_BACKEND`).
    """
    name = DEFAULT_MATCHING_BACKEND if backend is None else backend
    try:
        cls = MATCHING_BACKENDS[name]
    except KeyError:
        raise MatchingError(
            f"unknown matching backend {name!r} "
            f"(available: {', '.join(sorted(MATCHING_BACKENDS))})"
        ) from None
    return cls(n_nodes, b)


def convert_matching(matching, backend: str):
    """The same matching state rebuilt on the named backend.

    Edges, marks, and the addition/removal counters carry over exactly; the
    input structure is left untouched.  Returns the input unchanged when it
    is already on the requested backend.
    """
    if matching.backend_name == backend:
        return matching
    clone = make_matching(matching.n_nodes, matching.b, backend)
    for pair in sorted(matching.edges):
        clone.add(*pair)
    for pair in sorted(matching.marked_edges):
        clone.mark_for_removal(*pair)
    clone._additions = matching.additions
    clone._removals = matching.removals
    return clone
