"""b-matching data structures and static solvers.

A *b-matching* over racks ``0..n-1`` is a set of node pairs (the reconfigurable
optical links) in which every rack is incident to at most ``b`` pairs.  The
online algorithms in :mod:`repro.core` maintain a dynamic
:class:`~repro.matching.bmatching.BMatching`; the offline baseline SO-BMA uses
the static maximum-weight solvers in :mod:`repro.matching.static_solver`.
"""

from .bmatching import BMatching
from .static_solver import (
    exact_max_weight_b_matching,
    greedy_b_matching,
    iterated_max_weight_b_matching,
    matching_weight,
)
from .validation import check_b_matching, is_valid_b_matching

__all__ = [
    "BMatching",
    "greedy_b_matching",
    "iterated_max_weight_b_matching",
    "exact_max_weight_b_matching",
    "matching_weight",
    "is_valid_b_matching",
    "check_b_matching",
]
