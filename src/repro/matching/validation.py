"""Validation helpers for b-matchings.

Used throughout the tests (including the hypothesis property tests) and by
the simulation engine's optional consistency checks to assert that every
algorithm maintains a feasible matching at all times.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Mapping

from ..errors import MatchingError
from ..types import NodePair, canonical_pair

__all__ = ["is_valid_b_matching", "check_b_matching", "degree_histogram"]


def degree_histogram(edges: Iterable[NodePair], n_nodes: int) -> list[int]:
    """Per-node matching degree for an edge set."""
    degrees = [0] * n_nodes
    for u, v in edges:
        degrees[u] += 1
        degrees[v] += 1
    return degrees


def is_valid_b_matching(edges: Iterable[NodePair], n_nodes: int, b: int) -> bool:
    """Whether ``edges`` forms a valid b-matching over ``n_nodes`` racks."""
    try:
        check_b_matching(edges, n_nodes, b)
    except MatchingError:
        return False
    return True


def check_b_matching(edges: Iterable[NodePair], n_nodes: int, b: int) -> None:
    """Raise :class:`MatchingError` describing the first violated constraint.

    Checks: canonical distinct endpoints in range, no duplicate edges, and
    per-node degree at most ``b``.
    """
    seen: set[NodePair] = set()
    degrees: Counter[int] = Counter()
    for edge in edges:
        u, v = edge
        if u == v:
            raise MatchingError(f"self-loop {edge} in matching")
        if not (0 <= u < n_nodes and 0 <= v < n_nodes):
            raise MatchingError(f"edge {edge} has endpoint out of range (n={n_nodes})")
        pair = canonical_pair(u, v)
        if pair in seen:
            raise MatchingError(f"duplicate edge {pair} in matching")
        seen.add(pair)
        degrees[u] += 1
        degrees[v] += 1
    for node, deg in degrees.items():
        if deg > b:
            raise MatchingError(f"node {node} has matching degree {deg} > b={b}")
