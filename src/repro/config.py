"""Experiment configuration objects.

Configurations are immutable dataclasses with validation in
``__post_init__`` so that a mis-parameterised experiment fails at
construction time rather than deep inside a simulation run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
from typing import Any, Mapping, Optional, Sequence, Tuple

from .errors import ConfigurationError

__all__ = [
    "MatchingConfig",
    "SimulationConfig",
    "SweepConfig",
]


@dataclass(frozen=True, slots=True)
class MatchingConfig:
    """Parameters of the online (b, a)-matching problem instance.

    Attributes
    ----------
    b:
        Maximum number of reconfigurable (matching) edges incident to any
        node for the online algorithm — the number of optical circuit
        switches in the datacenter.
    a:
        Degree bound of the offline optimum in the resource-augmented
        ``(b, a)`` setting.  Defaults to ``b`` (the classic setting).
    alpha:
        Reconfiguration cost per matching edge added or removed.
    solver_backend:
        Which static blossom kernel SO-BMA's iterated maximum-weight solve
        uses: ``"array"`` (the flat-array Galil kernel, the library
        default), ``"nx"`` (the original NetworkX path, kept as reference),
        or ``"numba"`` (the array kernel's compiled slack scan;
        import-optional — it falls back to ``"array"`` with a one-time
        warning when numba is missing or masked).  All backends produce
        identical matchings; ``None`` means the library default.  Only
        algorithms that run a static solve (SO-BMA) read this.
    rng_mode:
        How randomized algorithms (R-BMA's marking pager, the ``uniform``
        and ``hybrid`` paging layers) draw their randomness: ``"counter"``
        (the default — a counter-based Philox draw that is a pure function
        of ``(root_seed, stream_id, request_index, draw_counter)``, so
        replay is RNG-stateless and the batch loops can compile) or
        ``"stateful"`` (the legacy carried-state ``numpy.random.Generator``,
        kept as the reference; golden pins are recorded in this mode).
        ``None`` means the library default (overridable per process via
        ``REPRO_RNG_MODE``).  Deterministic algorithms ignore this.
    """

    b: int
    alpha: float = 1.0
    a: Optional[int] = None
    solver_backend: Optional[str] = None
    rng_mode: Optional[str] = None

    def __post_init__(self) -> None:
        if self.b < 1:
            raise ConfigurationError(f"b must be >= 1, got {self.b}")
        if self.alpha < 1:
            raise ConfigurationError(f"alpha must be >= 1, got {self.alpha}")
        a = self.b if self.a is None else self.a
        if not (1 <= a <= self.b):
            raise ConfigurationError(f"a must satisfy 1 <= a <= b={self.b}, got {a}")
        if self.solver_backend is not None:
            from .matching import SOLVER_BACKENDS  # local import: config loads first

            # Raises ConfigurationError with "did you mean ...?" suggestions.
            SOLVER_BACKENDS.resolve(self.solver_backend)
        if self.rng_mode is not None:
            from .core.rng import RNG_MODES  # local import: config loads first

            RNG_MODES.resolve(self.rng_mode)

    @property
    def effective_a(self) -> int:
        """The offline degree bound, defaulting to ``b``."""
        return self.b if self.a is None else self.a

    def augmentation_ratio(self) -> float:
        """``b / (b - a + 1)`` — the argument of the logarithm in the bound."""
        return self.b / (self.b - self.effective_a + 1)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form suitable for JSON serialisation."""
        d = asdict(self)
        d["a"] = self.effective_a
        # Emitted only when pinned, so pre-rng_mode serialisations (and any
        # byte-identity expectations on them) are unchanged.
        if d.get("rng_mode") is None:
            del d["rng_mode"]
        return d


@dataclass(frozen=True, slots=True)
class SimulationConfig:
    """Parameters controlling a single simulation run.

    Attributes
    ----------
    checkpoints:
        Number of evenly spaced points at which the cumulative routing cost
        and wall-clock time are recorded (the x-axis of the paper's plots).

        Contract: a run over ``n`` requests records exactly
        ``min(checkpoints, n)`` checkpoints at strictly increasing request
        counts, the last of which is always ``n``.  Traces shorter than
        ``checkpoints`` therefore yield one checkpoint per request; they are
        never silently collapsed below that.
    checkpoint_positions:
        Explicit checkpoint positions (1-based request counts), overriding
        the evenly spaced default — e.g. the output of
        :func:`~repro.simulation.engine.log_spaced_checkpoints` for figures
        with a logarithmic x-axis.  Must be strictly increasing and at least
        1; the engine additionally rejects positions beyond the trace
        length.  Positions may stop short of the trace end, in which case
        the remaining requests are still served but not recorded in the
        series (run totals always cover the whole trace).  When set,
        ``checkpoints`` is ignored.
    matching_backend:
        Which dynamic b-matching kernel the run uses: ``"fast"`` (the
        default array-backed kernel, served through the engine's batched
        replay path), ``"reference"`` (the original set-of-tuples kernel,
        replayed request by request — the pre-optimization code path kept
        for differential testing and kernel benchmarks), or ``"numba"``
        (the compiled kernel: the fast kernel plus ``@njit`` batch-scan
        loops for rbma/bma/hybrid).  ``"numba"`` is import-optional — on
        hosts without numba (or with ``REPRO_NO_NUMBA`` set) it falls back
        to ``"fast"`` with a one-time warning, so pinned specs stay
        runnable everywhere.  The engine rebinds a freshly constructed
        algorithm onto the requested backend before the first request; all
        backends produce bit-identical results.
    seed:
        Seed for the algorithm's internal randomness.  Trace generation has
        its own seed so that algorithm randomness and workload randomness
        can be varied independently.
    repetitions:
        Number of independent repetitions averaged by the runner (the paper
        averages five runs).
    collect_matching_history:
        If true, the engine records the matching after every reconfiguration
        (memory-heavy; used only by tests and small analyses).
    """

    checkpoints: int = 20
    matching_backend: str = "fast"
    seed: Optional[int] = None
    repetitions: int = 1
    collect_matching_history: bool = False
    checkpoint_positions: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.checkpoints < 1:
            raise ConfigurationError(f"checkpoints must be >= 1, got {self.checkpoints}")
        if self.repetitions < 1:
            raise ConfigurationError(f"repetitions must be >= 1, got {self.repetitions}")
        if self.checkpoint_positions is not None:
            coerced = []
            for p in self.checkpoint_positions:
                # int(10.7) would silently truncate and could even break the
                # strictly-increasing contract after the fact; accept only
                # integral values (10 and 10.0 alike, as JSON round-trips
                # may deliver either).
                try:
                    as_int = int(p)
                except (TypeError, ValueError) as exc:
                    raise ConfigurationError(
                        f"checkpoint positions must be integers, got {p!r}"
                    ) from exc
                if as_int != p:
                    raise ConfigurationError(
                        f"checkpoint positions must be integers, got {p!r} "
                        "(refusing to silently truncate)"
                    )
                coerced.append(as_int)
            positions = tuple(coerced)
            if not positions:
                raise ConfigurationError(
                    "checkpoint_positions must be non-empty (or None for the "
                    "evenly spaced default)"
                )
            if positions[0] < 1:
                raise ConfigurationError(
                    f"checkpoint positions must be >= 1, got {positions[0]}"
                )
            if any(b <= a for a, b in zip(positions, positions[1:])):
                raise ConfigurationError(
                    f"checkpoint_positions must be strictly increasing, got {positions}"
                )
            object.__setattr__(self, "checkpoint_positions", positions)
        from .matching import MATCHING_BACKENDS  # local import: config loads first

        if self.matching_backend not in MATCHING_BACKENDS:
            raise ConfigurationError(
                f"unknown matching_backend {self.matching_backend!r} "
                f"(available: {', '.join(sorted(MATCHING_BACKENDS))})"
            )

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form suitable for JSON serialisation."""
        data = asdict(self)
        if data["checkpoint_positions"] is not None:
            data["checkpoint_positions"] = list(data["checkpoint_positions"])
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimulationConfig":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        unknown = set(data) - {
            "checkpoints",
            "matching_backend",
            "seed",
            "repetitions",
            "collect_matching_history",
            "checkpoint_positions",
        }
        if unknown:
            raise ConfigurationError(
                f"unknown SimulationConfig keys: {', '.join(sorted(unknown))}"
            )
        return cls(**dict(data))


@dataclass(frozen=True)
class SweepConfig:
    """A cross-product parameter sweep over algorithm and problem settings.

    Attributes
    ----------
    b_values:
        Degree bounds to sweep over (e.g. ``(6, 12, 18)`` for the Facebook
        figures, ``(3, 6, 9)`` for the Microsoft figure).
    alpha_values:
        Reconfiguration costs to sweep over.
    algorithms:
        Names of algorithms (as registered in :mod:`repro.core.registry`).
    extra:
        Free-form per-sweep metadata propagated into results.
    """

    b_values: Sequence[int] = (6, 12, 18)
    alpha_values: Sequence[float] = (1.0,)
    algorithms: Sequence[str] = ("rbma", "bma", "oblivious")
    extra: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.b_values:
            raise ConfigurationError("b_values must be non-empty")
        if not self.alpha_values:
            raise ConfigurationError("alpha_values must be non-empty")
        if not self.algorithms:
            raise ConfigurationError("algorithms must be non-empty")
        if any(b < 1 for b in self.b_values):
            raise ConfigurationError(f"all b values must be >= 1, got {self.b_values}")
        if any(a < 1 for a in self.alpha_values):
            raise ConfigurationError(f"all alpha values must be >= 1, got {self.alpha_values}")

    def combinations(self) -> list[tuple[str, int, float]]:
        """All (algorithm, b, alpha) combinations in deterministic order."""
        return [
            (alg, b, alpha)
            for alg in self.algorithms
            for b in self.b_values
            for alpha in self.alpha_values
        ]
