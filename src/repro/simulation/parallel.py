"""Process-pool sharding of run specs.

The simulation itself is a sequential replay (exactly as in the paper:
"Each simulation is run sequentially. Hence, no parallelism is used during
the execution of the proposed algorithm"), but every figure panel and
ablation is a grid of independent (algorithm × degree-bound × repetition)
runs — embarrassingly parallel work.  This module is the single fan-out
point behind :func:`~repro.simulation.sweep.run_experiments`,
:meth:`~repro.simulation.runner.ExperimentRunner.compare_on_shared_trace`,
and the benchmark harness.

Sharding model
--------------
* **Specs travel, objects don't.**  A unit of work is one picklable spec
  (:class:`~repro.experiments.specs.ExperimentSpec` or the legacy
  :class:`~repro.simulation.runner.RunSpec`) — plain names and numbers.
  Traces, topologies, and algorithms are rebuilt *inside* the worker from
  the spec's spawned seeds, so a sharded run is bit-identical to the same
  specs executed sequentially: trace generation depends only on
  ``(traffic spec, trace seed)`` and algorithm randomness only on the
  spawned algorithm seed.  :func:`run_specs_parallel` preserves input order
  in its results.
* **Workers start clean.**  The pool uses an explicit spawn-safe
  initializer (:func:`_init_worker`): it imports the registries in the
  child — so the fan-out works identically whether the platform forks or
  spawns, without relying on inherited module state — and it seeds
  nothing, so worker identity can never leak into results.
* **Per-process caches stay warm.**  Within one worker, consecutive specs
  that share a workload reuse the generated trace (a small LRU keyed by
  traffic spec and trace seed), and :meth:`TopologySpec.build
  <repro.experiments.specs.TopologySpec.build>` memoises built topologies
  per process.  The default ``chunksize`` hands each worker several
  consecutive specs at a time so those caches actually hit when many small
  specs are submitted (figure panels enumerate all algorithms of one
  repetition consecutively, sharing one trace).
* **The parent owns the run store.**  With a store active, fingerprints
  are looked up in the parent before dispatch (hits never reach the pool)
  and miss results are written back by the parent after they return —
  workers compute and return, they never touch store files, so the
  spawn-safe "specs travel, objects don't" contract is untouched and no
  cross-process write coordination is needed.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import pickle
from collections import OrderedDict
from dataclasses import replace
from typing import Any, List, Optional, Sequence

from ..errors import SimulationError, WorkerExecutionError
from ..store.fingerprint import fingerprint_spec
from ..store.run_store import resolve_store
from .results import RunResult
from .runner import AnySpec, _store_eligible, as_experiment_spec, execute_experiment_spec

__all__ = ["run_specs_parallel", "default_worker_count", "default_chunksize"]


def default_worker_count() -> int:
    """A reasonable default worker count: CPU count minus one, at least one."""
    return max(1, (os.cpu_count() or 2) - 1)


def default_chunksize(n_specs: int, n_workers: int) -> int:
    """Specs handed to a worker at a time when the caller does not pin one.

    Large enough that many small specs amortise task dispatch (and hit the
    per-worker trace/topology caches on consecutive specs), small enough
    that every worker gets several chunks for load balancing.
    """
    return max(1, n_specs // (max(1, n_workers) * 4))


#: Per-process LRU of generated traces, keyed by (workload name, generator
#: params, trace seed).  Figure panels run every algorithm against the same
#: workload, so with chunked dispatch a worker regenerates each trace once
#: instead of once per spec.  Bounded: traces can be millions of requests.
_TRACE_CACHE: "OrderedDict[tuple, Any]" = OrderedDict()
_TRACE_CACHE_MAX = 4


def _init_worker() -> None:
    """Spawn-safe pool initializer.

    Imports the domain registries in the child process (a no-op under fork,
    required under spawn) and starts from empty per-process caches.  It
    deliberately seeds nothing: all randomness must flow from the specs'
    spawned seeds so results are independent of which worker ran a spec.
    """
    from .. import core, topology, traffic  # noqa: F401  (registry population)

    _TRACE_CACHE.clear()


def _cached_trace(spec) -> Any:
    """The spec's trace, rebuilt deterministically and memoised per process."""
    trace_seed = spec.run_seeds()[0]
    if trace_seed is None:
        # Unseeded specs draw fresh entropy per run; caching would turn
        # independent workloads into copies of one draw.
        return spec.build_trace(trace_seed)
    try:
        key = (
            spec.traffic.name,
            tuple(sorted(spec.traffic.params.items())),
            trace_seed,
        )
        trace = _TRACE_CACHE.get(key)
    except TypeError:  # unhashable generator params: rebuild every time
        return spec.build_trace(trace_seed)
    if trace is None:
        trace = spec.build_trace(trace_seed)
        _TRACE_CACHE[key] = trace
    else:
        _TRACE_CACHE.move_to_end(key)
    while len(_TRACE_CACHE) > _TRACE_CACHE_MAX:
        _TRACE_CACHE.popitem(last=False)
    return trace


def _describe_spec(spec) -> str:
    """The spec's JSON (algorithm/topology/seed, ...) for error context."""
    try:
        return json.dumps(spec.to_dict(), sort_keys=True, default=repr)
    except Exception:  # pragma: no cover - description must never mask the real error
        return repr(spec)


def _worker(spec: AnySpec) -> RunResult:
    """Execute one spec, attaching the spec's identity to any failure.

    A bare exception escaping a pool worker reaches the caller stripped of
    its worker-side traceback and cause, with no hint of *which* of
    possibly hundreds of specs failed; re-raising as
    :class:`~repro.errors.WorkerExecutionError` with the spec's JSON in the
    message makes a sweep failure diagnosable from the parent process
    alone.  Used by both the pool path and the in-process ``n_workers=1``
    fallback so failures read the same either way.
    """
    experiment = as_experiment_spec(spec)
    try:
        return execute_experiment_spec(experiment, trace=_cached_trace(experiment))
    except WorkerExecutionError:
        raise
    except Exception as exc:
        raise WorkerExecutionError(
            f"worker failed with {type(exc).__name__}: {exc}; "
            f"failing spec: {_describe_spec(experiment)}"
        ) from exc


def _check_picklable(specs: Sequence[AnySpec]) -> None:
    """Fail fast, with the offending spec named, before the pool dispatches."""
    for i, spec in enumerate(specs):
        try:
            clone = pickle.loads(pickle.dumps(spec))
        except Exception as exc:
            raise SimulationError(
                f"spec #{i} ({spec!r}) cannot be shipped to a worker process: "
                f"pickling failed with {type(exc).__name__}: {exc}"
            ) from exc
        if clone != spec:
            raise SimulationError(
                f"spec #{i} ({spec!r}) does not round-trip through pickle; "
                "parallel execution would run a different experiment"
            )


def _execute_batch(
    specs: Sequence[AnySpec], workers: int, chunksize: Optional[int]
) -> List[RunResult]:
    """Run ``specs`` in-process or across a pool, preserving input order."""
    if workers == 1 or len(specs) == 1:
        # In-process fallback goes through the same _worker wrapper as the
        # pool so failures carry identical spec context (and consecutive
        # specs sharing a workload hit the same trace cache).
        return [_worker(spec) for spec in specs]
    _check_picklable(specs)
    if chunksize is None:
        chunksize = default_chunksize(len(specs), workers)
    ctx = mp.get_context("spawn") if os.name == "nt" else mp.get_context()
    with ctx.Pool(processes=workers, initializer=_init_worker) as pool:
        return list(pool.map(_worker, list(specs), chunksize=chunksize))


def run_specs_parallel(
    specs: Sequence[AnySpec],
    n_workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    store=None,
) -> List[RunResult]:
    """Execute run specs across a process pool, preserving input order.

    Parameters
    ----------
    specs:
        The runs to execute (legacy or structured specs).  Every spec must
        round-trip through pickle (checked up front).
    n_workers:
        Pool size; defaults to :func:`default_worker_count`.  A value of 1
        falls back to in-process execution (useful under debuggers and on
        single-CPU hosts, where a pool would only add overhead).
    chunksize:
        Number of specs handed to a worker at a time; defaults to
        :func:`default_chunksize`, which keeps per-worker caches warm when
        many small specs are submitted.
    store:
        Run-store policy (see :func:`repro.store.resolve_store`; ``None``
        defers to ``REPRO_RUN_STORE``, ``False`` forces cold runs).  With a
        store, every eligible spec (seeded, no matching-history collection)
        is looked up in the *parent* before dispatch: hits are served from
        disk without touching the pool — a fully warm grid performs zero
        simulation work and never even spins the pool up — and only misses
        are executed.  The parent writes miss results back after they
        return; workers never see the store, so sharded runs stay
        bit-identical to sequential ones.
    """
    if not specs:
        return []
    if n_workers is not None and n_workers < 1:
        raise SimulationError(f"n_workers must be >= 1, got {n_workers}")
    workers = n_workers or default_worker_count()
    run_store = resolve_store(store)
    if run_store is None:
        return _execute_batch(specs, workers, chunksize)

    experiments = [as_experiment_spec(spec) for spec in specs]
    results: List[Optional[RunResult]] = [None] * len(specs)
    fingerprints: List[Optional[str]] = [None] * len(specs)
    pending: List[int] = []
    for i, experiment in enumerate(experiments):
        if _store_eligible(experiment, run_store):
            fingerprints[i] = fingerprint_spec(experiment)
            cached = run_store.get(fingerprints[i])
            if cached is not None:
                results[i] = replace(cached, spec=experiment.to_dict())
                continue
        pending.append(i)
    if pending:
        # Dispatch the original spec objects (not the normalised copies) so
        # legacy RunSpec inputs keep their established pickle/error paths.
        computed = _execute_batch([specs[i] for i in pending], workers, chunksize)
        for i, result in zip(pending, computed):
            if fingerprints[i] is not None:
                run_store.put(result, fingerprint=fingerprints[i])
            results[i] = result
    return results  # type: ignore[return-value]  # every slot is filled above
