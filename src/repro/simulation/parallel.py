"""Process-pool sharding of run specs.

The simulation itself is a sequential replay (exactly as in the paper:
"Each simulation is run sequentially. Hence, no parallelism is used during
the execution of the proposed algorithm"), but every figure panel and
ablation is a grid of independent (algorithm × degree-bound × repetition)
runs — embarrassingly parallel work.  This module is the single fan-out
point behind :func:`~repro.simulation.sweep.run_experiments`,
:meth:`~repro.simulation.runner.ExperimentRunner.compare_on_shared_trace`,
and the benchmark harness.

Sharding model
--------------
* **Specs travel, objects don't.**  A unit of work is one picklable spec
  (:class:`~repro.experiments.specs.ExperimentSpec` or the legacy
  :class:`~repro.simulation.runner.RunSpec`) — plain names and numbers.
  Traces, topologies, and algorithms are rebuilt *inside* the worker from
  the spec's spawned seeds, so a sharded run is bit-identical to the same
  specs executed sequentially: trace generation depends only on
  ``(traffic spec, trace seed)`` and algorithm randomness only on the
  spawned algorithm seed.  :func:`run_specs_parallel` preserves input order
  in its results.
* **Workers start clean.**  The pool uses an explicit spawn-safe
  initializer (:func:`_init_worker`): it imports the registries in the
  child — so the fan-out works identically whether the platform forks or
  spawns, without relying on inherited module state — and it seeds
  nothing, so worker identity can never leak into results.
* **Per-process caches stay warm.**  Within one worker, consecutive specs
  that share a workload reuse the generated trace (a small LRU keyed by
  traffic spec and trace seed), and :meth:`TopologySpec.build
  <repro.experiments.specs.TopologySpec.build>` memoises built topologies
  per process.  The default ``chunksize`` hands each worker several
  consecutive specs at a time so those caches actually hit when many small
  specs are submitted (figure panels enumerate all algorithms of one
  repetition consecutively, sharing one trace).
* **The parent owns the run store.**  With a store active, fingerprints
  are looked up in the parent before dispatch (hits never reach the pool)
  and miss results are written back by the parent after they return —
  workers compute and return, they never touch store files, so the
  spawn-safe "specs travel, objects don't" contract is untouched and no
  cross-process write coordination is needed.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import pickle
import warnings
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import SimulationError, WorkerExecutionError
from .results import RunResult
from .runner import AnySpec, as_experiment_spec, execute_experiment_spec

__all__ = ["run_specs_parallel", "default_worker_count", "default_chunksize"]

#: Environment default for worker counts, in the family of ``REPRO_RUN_STORE``
#: and ``REPRO_RNG_MODE``: consulted only when no explicit ``n_workers`` is
#: passed (an explicit argument always wins).
ENV_WORKERS = "REPRO_WORKERS"

#: Tokens treated as "unset" so ``REPRO_WORKERS=off`` reads naturally in
#: wrapper scripts (matching the run store's disable convention).
_ENV_FALSEY = {"", "0", "off", "false", "no", "none", "disabled"}


def _env_worker_count() -> Optional[int]:
    """The ``REPRO_WORKERS`` default, or ``None`` when unset/disabled."""
    raw = os.environ.get(ENV_WORKERS)
    if raw is None or raw.strip().lower() in _ENV_FALSEY:
        return None
    try:
        value = int(raw)
    except ValueError:
        warnings.warn(
            f"ignoring {ENV_WORKERS}={raw!r}: not an integer",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    if value < 1:
        warnings.warn(
            f"ignoring {ENV_WORKERS}={raw!r}: worker count must be >= 1",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    return value


def default_worker_count() -> int:
    """Default worker count: ``REPRO_WORKERS`` if set, else CPU count minus one."""
    env = _env_worker_count()
    if env is not None:
        return env
    return max(1, (os.cpu_count() or 2) - 1)


def default_chunksize(n_specs: int, n_workers: int) -> int:
    """Specs handed to a worker at a time when the caller does not pin one.

    Large enough that many small specs amortise task dispatch (and hit the
    per-worker trace/topology caches on consecutive specs), small enough
    that every worker gets several chunks for load balancing.
    """
    return max(1, n_specs // (max(1, n_workers) * 4))


#: Per-process LRU of generated traces, keyed by (workload name, generator
#: params, trace seed).  Figure panels run every algorithm against the same
#: workload, so with chunked dispatch a worker regenerates each trace once
#: instead of once per spec.  Bounded: traces can be millions of requests.
_TRACE_CACHE: "OrderedDict[tuple, Any]" = OrderedDict()
_TRACE_CACHE_MAX = 4

#: Batch-scoped execution context for :func:`_execute_batch`.  The dispatch
#: seam's signature is pinned to ``(specs, workers, chunksize)`` — tests and
#: callers monkeypatch it — so scheduler policy (pre-solved SO-BMA rounds to
#: seed worker solver memos, collect-vs-raise error handling, retry budget)
#: travels out of band: the scheduler sets it around a batch, and the pool
#: initializer ships a snapshot to every child via ``initargs``.
_DEFAULT_EXEC_CONTEXT: Dict[str, Any] = {
    "solver_rounds": (),
    "collect": False,
    "max_attempts": 1,
}
_EXEC_CONTEXT: Dict[str, Any] = dict(_DEFAULT_EXEC_CONTEXT)


def _set_exec_context(
    solver_rounds: Sequence[Mapping[str, Any]] = (),
    collect: bool = False,
    max_attempts: int = 1,
) -> None:
    """Install batch policy for subsequent :func:`_execute_batch` calls."""
    _EXEC_CONTEXT.update(
        solver_rounds=tuple(dict(p) for p in solver_rounds),
        collect=bool(collect),
        max_attempts=max(1, int(max_attempts)),
    )


def _reset_exec_context() -> None:
    """Restore the default single-attempt, raise-on-error batch policy."""
    _EXEC_CONTEXT.clear()
    _EXEC_CONTEXT.update(_DEFAULT_EXEC_CONTEXT)


def _init_worker(context: Optional[Mapping[str, Any]] = None) -> None:
    """Spawn-safe pool initializer.

    Imports the domain registries in the child process (a no-op under fork,
    required under spawn) and starts from empty per-process caches.  It
    deliberately seeds nothing: all randomness must flow from the specs'
    spawned seeds so results are independent of which worker ran a spec.
    ``context`` is the parent's :data:`_EXEC_CONTEXT` snapshot; its
    pre-solved solver rounds seed this process's solver memo so workers
    never re-solve demand the planner already solved.
    """
    from .. import core, topology, traffic  # noqa: F401  (registry population)

    _TRACE_CACHE.clear()
    _reset_exec_context()
    if context:
        _EXEC_CONTEXT.update(
            collect=bool(context.get("collect", False)),
            max_attempts=max(1, int(context.get("max_attempts", 1))),
        )
        payloads = context.get("solver_rounds") or ()
        if payloads:
            from ..matching.static_solver import import_solver_rounds

            for payload in payloads:
                try:
                    import_solver_rounds(payload)
                except Exception:  # noqa: BLE001 - pre-solve is best-effort
                    continue


def _cached_trace(spec) -> Any:
    """The spec's trace, rebuilt deterministically and memoised per process."""
    trace_seed = spec.run_seeds()[0]
    if trace_seed is None:
        # Unseeded specs draw fresh entropy per run; caching would turn
        # independent workloads into copies of one draw.
        return spec.build_trace(trace_seed)
    try:
        key = (
            spec.traffic.name,
            tuple(sorted(spec.traffic.params.items())),
            trace_seed,
        )
        trace = _TRACE_CACHE.get(key)
    except TypeError:  # unhashable generator params: rebuild every time
        return spec.build_trace(trace_seed)
    if trace is None:
        trace = spec.build_trace(trace_seed)
        _TRACE_CACHE[key] = trace
    else:
        _TRACE_CACHE.move_to_end(key)
    while len(_TRACE_CACHE) > _TRACE_CACHE_MAX:
        _TRACE_CACHE.popitem(last=False)
    return trace


def _describe_spec(spec) -> str:
    """The spec's JSON (algorithm/topology/seed, ...) for error context."""
    try:
        return json.dumps(spec.to_dict(), sort_keys=True, default=repr)
    except Exception:  # pragma: no cover - description must never mask the real error
        return repr(spec)


@dataclass(frozen=True)
class _WorkerFailure:
    """A spec's terminal failure under ``collect`` mode (picklable record)."""

    message: str
    error_type: str


_WorkerOutcome = Tuple[Union[RunResult, _WorkerFailure], int]


def _worker(spec: AnySpec) -> _WorkerOutcome:
    """Execute one spec; returns ``(outcome, attempts)``.

    A bare exception escaping a pool worker reaches the caller stripped of
    its worker-side traceback and cause, with no hint of *which* of
    possibly hundreds of specs failed; re-raising as
    :class:`~repro.errors.WorkerExecutionError` with the spec's JSON in the
    message makes a sweep failure diagnosable from the parent process
    alone.  Used by both the pool path and the in-process ``n_workers=1``
    fallback so failures read the same either way.  Under the batch
    context's ``collect`` policy a terminal failure becomes a
    :class:`_WorkerFailure` record instead of raising, and ``max_attempts``
    retries the spec before the failure is terminal.
    """
    experiment = as_experiment_spec(spec)
    max_attempts = max(1, int(_EXEC_CONTEXT.get("max_attempts", 1)))
    collect = bool(_EXEC_CONTEXT.get("collect", False))
    attempts = 0
    while True:
        attempts += 1
        try:
            result = execute_experiment_spec(experiment, trace=_cached_trace(experiment))
            return result, attempts
        except WorkerExecutionError as exc:
            if attempts < max_attempts:
                continue
            if collect:
                return _WorkerFailure(str(exc), type(exc).__name__), attempts
            raise
        except Exception as exc:
            if attempts < max_attempts:
                continue
            failure = WorkerExecutionError(
                f"worker failed with {type(exc).__name__}: {exc}; "
                f"failing spec: {_describe_spec(experiment)}"
            )
            if collect:
                return _WorkerFailure(str(failure), type(exc).__name__), attempts
            raise failure from exc


def _check_picklable(specs: Sequence[AnySpec]) -> None:
    """Fail fast, with the offending spec named, before the pool dispatches."""
    for i, spec in enumerate(specs):
        try:
            clone = pickle.loads(pickle.dumps(spec))
        except Exception as exc:
            raise SimulationError(
                f"spec #{i} ({spec!r}) cannot be shipped to a worker process: "
                f"pickling failed with {type(exc).__name__}: {exc}"
            ) from exc
        if clone != spec:
            raise SimulationError(
                f"spec #{i} ({spec!r}) does not round-trip through pickle; "
                "parallel execution would run a different experiment"
            )


def _execute_batch(
    specs: Sequence[AnySpec], workers: int, chunksize: Optional[int]
) -> List[_WorkerOutcome]:
    """Run ``specs`` in-process or across a pool, preserving input order.

    This is the dispatch seam the scheduler backends call (and tests
    monkeypatch); its signature stays ``(specs, workers, chunksize)``, with
    batch policy carried by :data:`_EXEC_CONTEXT`.  Returns one
    ``(outcome, attempts)`` pair per spec.
    """
    if workers == 1 or len(specs) == 1:
        # In-process fallback goes through the same _worker wrapper as the
        # pool so failures carry identical spec context (and consecutive
        # specs sharing a workload hit the same trace cache).
        return [_worker(spec) for spec in specs]
    _check_picklable(specs)
    if chunksize is None:
        chunksize = default_chunksize(len(specs), workers)
    ctx = mp.get_context("spawn") if os.name == "nt" else mp.get_context()
    with ctx.Pool(
        processes=workers,
        initializer=_init_worker,
        initargs=(dict(_EXEC_CONTEXT),),
    ) as pool:
        return list(pool.map(_worker, list(specs), chunksize=chunksize))


def run_specs_parallel(
    specs: Sequence[AnySpec],
    n_workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    store=None,
    on_error: str = "raise",
    backend: Optional[str] = None,
    queue_dir: Optional[str] = None,
):
    """Execute run specs across a scheduler backend, preserving input order.

    A thin shim over the execution stack: builds an
    :class:`~repro.exec.plan.ExecutionPlan` (run-store hits served before
    any dispatch, shared-workload specs grouped, offline SO-BMA demand
    pre-solved once in the parent) and hands it to
    :func:`~repro.exec.scheduler.execute_plan`.

    Parameters
    ----------
    specs:
        The runs to execute (legacy or structured specs).  Every spec must
        round-trip through pickle before pool dispatch (checked up front).
    n_workers:
        Worker count; defaults to ``REPRO_WORKERS`` if set, else
        :func:`default_worker_count`.  A value of 1 falls back to
        in-process execution (useful under debuggers and on single-CPU
        hosts, where a pool would only add overhead).
    chunksize:
        Number of specs handed to a pool worker at a time; defaults to
        :func:`default_chunksize`, which keeps per-worker caches warm when
        many small specs are submitted.
    store:
        Run-store policy (see :func:`repro.store.resolve_store`; ``None``
        defers to ``REPRO_RUN_STORE``, ``False`` forces cold runs).  With a
        store, every eligible spec (seeded, no matching-history collection)
        is looked up in the *parent* before dispatch: hits are served from
        disk without touching any worker — a fully warm grid performs zero
        simulation work — and only misses are executed.
    on_error:
        ``"raise"`` (default) aborts on the first failing spec with
        :class:`~repro.errors.WorkerExecutionError`; ``"collect"`` returns
        a :class:`~repro.exec.plan.RunFailure` record in the failing spec's
        slot and keeps going.
    backend:
        Scheduler backend name (``"serial"``, ``"pool"``, ``"queue"``);
        ``None`` picks serial for one worker and the pool otherwise.
    queue_dir:
        Queue directory for ``backend="queue"`` (a temporary directory is
        used — and cleaned up — when omitted).
    """
    if not specs:
        return []
    if n_workers is not None and n_workers < 1:
        raise SimulationError(f"n_workers must be >= 1, got {n_workers}")
    from ..exec import build_execution_plan, execute_plan, resolve_worker_count

    workers = resolve_worker_count(n_workers, fallback=default_worker_count())
    plan = build_execution_plan(specs, store=store, on_error=on_error)
    return execute_plan(
        plan,
        backend=backend,
        n_workers=workers,
        chunksize=chunksize,
        queue_dir=queue_dir,
    )
