"""Process-pool execution of run specs.

The simulation itself is a sequential replay (exactly as in the paper:
"Each simulation is run sequentially. Hence, no parallelism is used during
the execution of the proposed algorithm"), but independent runs — different
algorithms, degree bounds, repetitions — are embarrassingly parallel.
Because specs (:class:`~repro.experiments.specs.ExperimentSpec` and the
legacy :class:`~repro.simulation.runner.RunSpec`) are plain picklable
dataclasses of names and numbers, the fan-out uses the standard
:mod:`multiprocessing` pool without any shared state.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import List, Optional, Sequence

from ..errors import SimulationError
from .results import RunResult
from .runner import AnySpec, execute_run_spec

__all__ = ["run_specs_parallel", "default_worker_count"]


def default_worker_count() -> int:
    """A reasonable default worker count: CPU count minus one, at least one."""
    return max(1, (os.cpu_count() or 2) - 1)


def _worker(spec: AnySpec) -> RunResult:
    return execute_run_spec(spec)


def run_specs_parallel(
    specs: Sequence[AnySpec],
    n_workers: Optional[int] = None,
    chunksize: int = 1,
) -> List[RunResult]:
    """Execute run specs across a process pool, preserving input order.

    Parameters
    ----------
    specs:
        The runs to execute (legacy or structured specs).
    n_workers:
        Pool size; defaults to :func:`default_worker_count`.  A value of 1
        falls back to in-process execution (useful under debuggers and on
        platforms where fork is unavailable).
    chunksize:
        Number of specs handed to a worker at a time.
    """
    if not specs:
        return []
    if n_workers is not None and n_workers < 1:
        raise SimulationError(f"n_workers must be >= 1, got {n_workers}")
    workers = n_workers or default_worker_count()
    if workers == 1 or len(specs) == 1:
        return [execute_run_spec(spec) for spec in specs]
    ctx = mp.get_context("spawn") if os.name == "nt" else mp.get_context()
    with ctx.Pool(processes=workers) as pool:
        return list(pool.map(_worker, list(specs), chunksize=chunksize))
