"""Parameter sweeps as spec expansion.

A sweep is nothing but a list of :class:`~repro.experiments.specs.ExperimentSpec`
objects — usually produced by :func:`~repro.experiments.specs.expand_grid` —
executed by :func:`run_experiments`, which handles per-spec repetitions
(seeds spawned from each spec's base seed), optional process-pool fan-out,
and aggregation.  :func:`run_sweep` keeps the classic
:class:`~repro.config.SweepConfig` entry point, now implemented as a grid
expansion over ``algorithm.name`` × ``algorithm.b`` × ``algorithm.alpha``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from ..config import SweepConfig
from ..errors import ConfigurationError
from ..experiments.observers import SimulationObserver
from ..experiments.specs import ExperimentSpec, expand_grid
from .parallel import run_specs_parallel
from .results import AggregateResult, RunResult, aggregate_runs
from .runner import AnySpec, as_experiment_spec, execute_experiment_spec

__all__ = ["run_experiments", "run_sweep"]


def run_experiments(
    specs: Sequence[AnySpec],
    n_workers: int = 1,
    observers: Iterable[SimulationObserver] = (),
    store=None,
) -> List[AggregateResult]:
    """Execute each spec with its own repeat/seed policy and aggregate.

    Every spec contributes ``spec.repeats`` runs, seeded by
    :meth:`~repro.experiments.specs.ExperimentSpec.repetition_seeds` (spawned
    from the spec's base seed).  Results come back in spec order.

    Parameters
    ----------
    specs:
        The experiments (legacy :class:`~repro.simulation.runner.RunSpec`,
        structured :class:`~repro.experiments.specs.ExperimentSpec`, or plain
        spec dicts).
    n_workers:
        If greater than 1, individual runs are distributed over a process
        pool of that size.
    observers:
        Attached to every run when executing in-process (``n_workers <= 1``);
        observers are not shipped to pool workers.
    store:
        Run-store policy (see :func:`repro.store.resolve_store`; ``None``
        defers to ``REPRO_RUN_STORE``, ``False`` forces cold runs).  With a
        store, each expanded (spec, repetition-seed) run is looked up
        before computing and written back after, making repeated sweeps
        incremental — only cells whose spec or seed changed recompute.
        Hits are bit-identical to the cold runs that produced them; all
        store writes happen in this (the parent) process.
    """
    experiments = [as_experiment_spec(spec) for spec in specs]
    if not experiments:
        return []
    expanded: List[ExperimentSpec] = []
    group_sizes: List[int] = []
    for experiment in experiments:
        seeds = experiment.repetition_seeds()
        group_sizes.append(len(seeds))
        expanded.extend(experiment.with_seed(seed) for seed in seeds)

    if n_workers <= 1:
        flat = [
            execute_experiment_spec(spec, observers=observers, store=store)
            for spec in expanded
        ]
    else:
        flat = run_specs_parallel(expanded, n_workers=n_workers, store=store)

    results: List[AggregateResult] = []
    cursor = 0
    for size in group_sizes:
        results.append(aggregate_runs(flat[cursor : cursor + size]))
        cursor += size
    return results


def run_sweep(
    sweep: SweepConfig,
    workload: str,
    workload_kwargs: Optional[Mapping[str, Any]] = None,
    topology: str = "fat-tree",
    topology_kwargs: Optional[Mapping[str, Any]] = None,
    repetitions: int = 1,
    base_seed: int = 0,
    checkpoints: int = 10,
    n_workers: int = 1,
    observers: Iterable[SimulationObserver] = (),
    solver_backend: Optional[str] = None,
    rng_mode: Optional[str] = None,
    store=None,
    streaming: bool = False,
    chunk_size: Optional[int] = None,
) -> List[AggregateResult]:
    """Run every (algorithm, b, alpha) combination of ``sweep`` on one workload.

    Parameters
    ----------
    sweep:
        The cross-product description of algorithms and parameters.
    workload, workload_kwargs:
        Registered workload name and its generator arguments.
    topology, topology_kwargs:
        Registered topology name and constructor arguments.
    repetitions, base_seed, checkpoints:
        Execution parameters; repetition seeds are spawned from ``base_seed``
        via :class:`numpy.random.SeedSequence` so every configuration replays
        the same per-repetition workloads.
    n_workers:
        If greater than 1, the individual runs are distributed over a process
        pool of that size.
    observers:
        Attached to in-process runs (``n_workers <= 1``).
    solver_backend:
        Static blossom kernel for SO-BMA configurations (``None`` = library
        default).  When the grid sweeps several ``b`` values for ``so-bma``
        on a shared workload, in-process runs share nested solver prefixes:
        the demand-fingerprint memo in
        :mod:`repro.matching.static_solver` solves ``max(b_values)`` blossom
        rounds once instead of re-solving every prefix per ``b``.
    rng_mode:
        Randomness kernel for randomized configurations (``None`` = library
        default; see :data:`repro.core.rng.RNG_MODES`).
    store:
        Run-store policy, forwarded to :func:`run_experiments` (``None``
        defers to ``REPRO_RUN_STORE``, ``False`` forces cold runs).
    streaming, chunk_size:
        Replay each run's workload as a lazy trace stream of
        ``chunk_size``-request segments (bounded memory).  Results and
        store fingerprints are bit-identical to materialized runs.
    """
    if repetitions < 1:
        raise ConfigurationError(f"repetitions must be >= 1, got {repetitions}")
    base = ExperimentSpec(
        algorithm={"name": sweep.algorithms[0], "b": int(sweep.b_values[0]),
                   "alpha": float(sweep.alpha_values[0]),
                   "solver_backend": solver_backend,
                   "rng_mode": rng_mode},
        traffic={"name": workload, "params": dict(workload_kwargs or {}),
                 "streaming": streaming, "chunk_size": chunk_size},
        topology={"name": topology, "params": dict(topology_kwargs or {})},
        simulation={"checkpoints": checkpoints},
        repeats=repetitions,
        seed=base_seed,
    )
    specs = expand_grid(
        base,
        {
            "algorithm.name": list(sweep.algorithms),
            "algorithm.b": [int(b) for b in sweep.b_values],
            "algorithm.alpha": [float(a) for a in sweep.alpha_values],
        },
    )
    return run_experiments(specs, n_workers=n_workers, observers=observers, store=store)
