"""Parameter sweeps as spec expansion.

A sweep is nothing but a list of :class:`~repro.experiments.specs.ExperimentSpec`
objects — usually produced by :func:`~repro.experiments.specs.expand_grid` —
executed by :func:`run_experiments`, which handles per-spec repetitions
(seeds spawned from each spec's base seed), optional process-pool fan-out,
and aggregation.  :func:`run_sweep` keeps the classic
:class:`~repro.config.SweepConfig` entry point, now implemented as a grid
expansion over ``algorithm.name`` × ``algorithm.b`` × ``algorithm.alpha``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from ..config import SweepConfig
from ..errors import ConfigurationError
from ..experiments.observers import SimulationObserver
from ..experiments.specs import ExperimentSpec, expand_grid
from .results import AggregateResult, RunResult, aggregate_runs
from .runner import AnySpec, as_experiment_spec

__all__ = ["run_experiments", "run_sweep"]


def run_experiments(
    specs: Sequence[AnySpec],
    n_workers: Optional[int] = None,
    observers: Iterable[SimulationObserver] = (),
    store=None,
    on_error: str = "raise",
    backend: Optional[str] = None,
    queue_dir: Optional[str] = None,
) -> List:
    """Execute each spec with its own repeat/seed policy and aggregate.

    Every spec contributes ``spec.repeats`` runs, seeded by
    :meth:`~repro.experiments.specs.ExperimentSpec.repetition_seeds` (spawned
    from the spec's base seed).  Results come back in spec order.

    Parameters
    ----------
    specs:
        The experiments (legacy :class:`~repro.simulation.runner.RunSpec`,
        structured :class:`~repro.experiments.specs.ExperimentSpec`, or plain
        spec dicts).
    n_workers:
        Worker count; defaults to ``REPRO_WORKERS`` if set, else 1.  Values
        above 1 shard the expanded runs over the resolved scheduler backend.
    observers:
        Attached to every run when executing on the serial backend;
        observers are not shipped to pool or queue workers.
    store:
        Run-store policy (see :func:`repro.store.resolve_store`; ``None``
        defers to ``REPRO_RUN_STORE``, ``False`` forces cold runs).  With a
        store, each expanded (spec, repetition-seed) run is looked up by
        the planner before computing and written back after, making
        repeated sweeps incremental — only cells whose spec or seed changed
        recompute.  Hits are bit-identical to the cold runs that produced
        them.
    on_error:
        ``"raise"`` (default) aborts on the first failing run with
        :class:`~repro.errors.WorkerExecutionError`; ``"collect"`` keeps
        going and returns a :class:`~repro.exec.plan.RunFailure` record in
        the failing *spec's* slot (the spec's first failed repetition) so a
        long sweep reports every broken cell in one pass.
    backend:
        Scheduler backend name (``"serial"``, ``"pool"``, ``"queue"``);
        ``None`` picks serial for one worker and the pool otherwise.
    queue_dir:
        Queue directory for ``backend="queue"`` (temporary when omitted).
    """
    experiments = [as_experiment_spec(spec) for spec in specs]
    if not experiments:
        return []
    expanded: List[ExperimentSpec] = []
    group_sizes: List[int] = []
    for experiment in experiments:
        seeds = experiment.repetition_seeds()
        group_sizes.append(len(seeds))
        expanded.extend(experiment.with_seed(seed) for seed in seeds)

    from ..exec import (
        build_execution_plan,
        execute_plan,
        resolve_backend_name,
        resolve_worker_count,
    )

    workers = resolve_worker_count(n_workers, fallback=1)
    name = resolve_backend_name(backend, workers)
    plan = build_execution_plan(
        expanded,
        store=store,
        on_error=on_error,
        observers=tuple(observers) if name == "serial" else (),
    )
    flat = execute_plan(plan, backend=name, n_workers=workers, queue_dir=queue_dir)

    results: List = []
    cursor = 0
    for size in group_sizes:
        group = flat[cursor : cursor + size]
        cursor += size
        failures = [run for run in group if not isinstance(run, RunResult)]
        if failures:
            # Under "collect" a broken cell yields its first failure record
            # in place of an aggregate (aggregation needs every repetition).
            results.append(failures[0])
        else:
            results.append(aggregate_runs(group))
    return results


def run_sweep(
    sweep: SweepConfig,
    workload: str,
    workload_kwargs: Optional[Mapping[str, Any]] = None,
    topology: str = "fat-tree",
    topology_kwargs: Optional[Mapping[str, Any]] = None,
    repetitions: int = 1,
    base_seed: int = 0,
    checkpoints: int = 10,
    n_workers: Optional[int] = None,
    observers: Iterable[SimulationObserver] = (),
    solver_backend: Optional[str] = None,
    rng_mode: Optional[str] = None,
    store=None,
    streaming: bool = False,
    chunk_size: Optional[int] = None,
    on_error: str = "raise",
    backend: Optional[str] = None,
    queue_dir: Optional[str] = None,
) -> List[AggregateResult]:
    """Run every (algorithm, b, alpha) combination of ``sweep`` on one workload.

    Parameters
    ----------
    sweep:
        The cross-product description of algorithms and parameters.
    workload, workload_kwargs:
        Registered workload name and its generator arguments.
    topology, topology_kwargs:
        Registered topology name and constructor arguments.
    repetitions, base_seed, checkpoints:
        Execution parameters; repetition seeds are spawned from ``base_seed``
        via :class:`numpy.random.SeedSequence` so every configuration replays
        the same per-repetition workloads.
    n_workers:
        Worker count (defaults to ``REPRO_WORKERS`` if set, else 1); values
        above 1 distribute the individual runs over the scheduler backend.
    observers:
        Attached to runs on the serial backend only.
    solver_backend:
        Static blossom kernel for SO-BMA configurations (``None`` = library
        default).  When the grid sweeps several ``b`` values for ``so-bma``
        on a shared workload, in-process runs share nested solver prefixes:
        the demand-fingerprint memo in
        :mod:`repro.matching.static_solver` solves ``max(b_values)`` blossom
        rounds once instead of re-solving every prefix per ``b``.
    rng_mode:
        Randomness kernel for randomized configurations (``None`` = library
        default; see :data:`repro.core.rng.RNG_MODES`).
    store:
        Run-store policy, forwarded to :func:`run_experiments` (``None``
        defers to ``REPRO_RUN_STORE``, ``False`` forces cold runs).
    streaming, chunk_size:
        Replay each run's workload as a lazy trace stream of
        ``chunk_size``-request segments (bounded memory).  Results and
        store fingerprints are bit-identical to materialized runs.
    on_error, backend, queue_dir:
        Forwarded to :func:`run_experiments`: error policy and scheduler
        backend selection.
    """
    if repetitions < 1:
        raise ConfigurationError(f"repetitions must be >= 1, got {repetitions}")
    base = ExperimentSpec(
        algorithm={"name": sweep.algorithms[0], "b": int(sweep.b_values[0]),
                   "alpha": float(sweep.alpha_values[0]),
                   "solver_backend": solver_backend,
                   "rng_mode": rng_mode},
        traffic={"name": workload, "params": dict(workload_kwargs or {}),
                 "streaming": streaming, "chunk_size": chunk_size},
        topology={"name": topology, "params": dict(topology_kwargs or {})},
        simulation={"checkpoints": checkpoints},
        repeats=repetitions,
        seed=base_seed,
    )
    specs = expand_grid(
        base,
        {
            "algorithm.name": list(sweep.algorithms),
            "algorithm.b": [int(b) for b in sweep.b_values],
            "algorithm.alpha": [float(a) for a in sweep.alpha_values],
        },
    )
    return run_experiments(
        specs,
        n_workers=n_workers,
        observers=observers,
        store=store,
        on_error=on_error,
        backend=backend,
        queue_dir=queue_dir,
    )
