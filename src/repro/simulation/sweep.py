"""Parameter sweeps.

:func:`run_sweep` expands a :class:`~repro.config.SweepConfig` into run specs
over a single workload and executes them (optionally in parallel), returning
aggregated results per (algorithm, b, alpha) combination.  This powers the
cache-size and reconfiguration-cost ablation benchmarks.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from ..config import SweepConfig
from ..errors import ConfigurationError
from .parallel import run_specs_parallel
from .results import AggregateResult, aggregate_runs
from .runner import ExperimentRunner, RunSpec

__all__ = ["run_sweep"]


def run_sweep(
    sweep: SweepConfig,
    workload: str,
    workload_kwargs: Optional[Mapping[str, Any]] = None,
    topology: str = "fat-tree",
    topology_kwargs: Optional[Mapping[str, Any]] = None,
    repetitions: int = 1,
    base_seed: int = 0,
    checkpoints: int = 10,
    n_workers: int = 1,
) -> List[AggregateResult]:
    """Run every (algorithm, b, alpha) combination of ``sweep`` on one workload.

    Parameters
    ----------
    sweep:
        The cross-product description of algorithms and parameters.
    workload, workload_kwargs:
        Registered workload name and its generator arguments.
    topology, topology_kwargs:
        Registered topology name and constructor arguments.
    repetitions, base_seed, checkpoints:
        Execution parameters (see :class:`~repro.simulation.runner.ExperimentRunner`).
    n_workers:
        If greater than 1, the individual runs are distributed over a process
        pool of that size.
    """
    if repetitions < 1:
        raise ConfigurationError(f"repetitions must be >= 1, got {repetitions}")
    specs: List[RunSpec] = []
    for algorithm, b, alpha in sweep.combinations():
        specs.append(
            RunSpec(
                algorithm=algorithm,
                workload=workload,
                b=b,
                alpha=alpha,
                topology=topology,
                workload_kwargs=dict(workload_kwargs or {}),
                topology_kwargs=dict(topology_kwargs or {}),
                checkpoints=checkpoints,
            )
        )

    runner = ExperimentRunner(repetitions=repetitions, base_seed=base_seed)
    if n_workers <= 1:
        return runner.run_many(specs)

    # Parallel path: expand repetitions into individual picklable specs.
    expanded: List[RunSpec] = []
    for spec in specs:
        for seed in runner.repetition_seeds():
            expanded.append(spec.with_seed(seed))
    results = run_specs_parallel(expanded, n_workers=n_workers)
    # Re-group the flat result list into per-configuration aggregates.
    grouped: Dict[int, list] = {i: [] for i in range(len(specs))}
    for idx, result in zip(range(len(expanded)), results):
        grouped[idx // repetitions].append(result)
    return [aggregate_runs(runs) for runs in grouped.values()]
