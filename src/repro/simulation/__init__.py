"""Simulation engine, experiment runner and result containers.

The engine replays a trace through an online b-matching algorithm, recording
cumulative routing cost, reconfiguration cost and wall-clock execution time at
evenly spaced checkpoints — exactly the series plotted in the paper's figures
(routing cost vs. number of requests, execution time vs. number of requests).
"""

from .results import AggregateResult, CheckpointSeries, RunResult, aggregate_runs
from .engine import run_simulation
from .timer import Timer
from .runner import ExperimentRunner, RunSpec
from .sweep import run_sweep
from .parallel import run_specs_parallel

__all__ = [
    "CheckpointSeries",
    "RunResult",
    "AggregateResult",
    "aggregate_runs",
    "run_simulation",
    "Timer",
    "ExperimentRunner",
    "RunSpec",
    "run_sweep",
    "run_specs_parallel",
]
