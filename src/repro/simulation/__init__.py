"""Simulation engine, experiment runner and result containers.

The engine replays a trace through an online b-matching algorithm, recording
cumulative routing cost, reconfiguration cost and wall-clock execution time at
evenly spaced checkpoints — exactly the series plotted in the paper's figures
(routing cost vs. number of requests, execution time vs. number of requests).

Experiments are described declaratively by
:class:`~repro.experiments.specs.ExperimentSpec` (or the legacy
:class:`RunSpec`); :func:`execute_experiment_spec`, :class:`ExperimentRunner`,
:func:`run_experiments` and :func:`run_sweep` execute them sequentially or in
a process pool.
"""

from .results import AggregateResult, CheckpointSeries, RunResult, aggregate_runs
from .engine import log_spaced_checkpoints, run_simulation
from .timer import Timer
from .runner import (
    ExperimentRunner,
    RunSpec,
    as_experiment_spec,
    execute_experiment_spec,
    execute_run_spec,
)
from .sweep import run_experiments, run_sweep
from .parallel import run_specs_parallel

__all__ = [
    "CheckpointSeries",
    "RunResult",
    "AggregateResult",
    "aggregate_runs",
    "run_simulation",
    "log_spaced_checkpoints",
    "Timer",
    "ExperimentRunner",
    "RunSpec",
    "as_experiment_spec",
    "execute_run_spec",
    "execute_experiment_spec",
    "run_experiments",
    "run_sweep",
    "run_specs_parallel",
]
