"""Request-replay simulation engine.

:func:`run_simulation` replays a trace through an online b-matching
algorithm, measuring the algorithm's wall-clock time (excluding the engine's
own checkpoint bookkeeping) and recording the cumulative cost series at
evenly spaced checkpoints.

Two replay paths share identical semantics:

* the **reference path** serves one request per loop iteration, exactly as
  the original implementation did.  It is used when
  ``SimulationConfig.matching_backend == "reference"``, when per-request
  matching history is collected, and when an observer demands per-request
  batches;
* the **batched path** pre-materialises the trace once, splits it into
  contiguous segments bounded by checkpoints (and observer batch intervals),
  and hands each segment to the algorithm's ``serve_batch`` in a single call,
  so checkpoint checks, observer dispatch, and Request/ServeOutcome
  allocation are paid per segment instead of per request.  Every registered
  algorithm ships a hand-tuned ``serve_batch``; algorithms that do not
  override it inherit the base-class per-request loop inside the batched
  path, so there is no engine-level fallback to route around ``serve_batch``.
  The ``"numba"`` backend rides this same path unchanged: the engine hands
  out identical segments and the algorithms' drivers decide per segment
  whether the compiled scan kernels apply, so observer and checkpoint
  semantics are untouched by the compiled backend.  Each result records the
  requested backend and the kernel that actually ran in
  ``RunResult.extra["matching_backend"]`` / ``extra["matching_kernel"]``
  (they differ exactly when numba fell back to the fast kernel).

Checkpoint positions default to evenly spaced request counts
(:func:`_checkpoint_positions`); ``SimulationConfig.checkpoint_positions``
overrides them with an explicit strictly increasing sequence, e.g. from
:func:`log_spaced_checkpoints` for the log-x-axis figures used in related
work.

Cross-cutting concerns — progress reporting, live invariant validation, cost
tracing — are not engine flags but *observers*
(:class:`~repro.experiments.observers.SimulationObserver`): the engine calls
``on_start`` / ``on_request_batch`` / ``on_checkpoint`` / ``on_end`` on every
observer it is given.  The legacy ``validate=True`` flag is kept as sugar for
attaching a :class:`~repro.experiments.observers.ValidationObserver`, which
the integration tests use to certify that no algorithm ever violates the
degree bound.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from ..config import SimulationConfig
from ..core.base import OnlineBMatchingAlgorithm
from ..errors import SimulationError
from ..experiments.observers import (
    CheckpointEvent,
    ObserverList,
    RunContext,
    SimulationObserver,
    ValidationObserver,
)
from ..traffic.base import Trace, TraceMetadata
from ..traffic.stream import TraceStream
from .results import CheckpointSeries, RunResult
from .timer import Timer

__all__ = ["run_simulation", "StreamingSimulation", "log_spaced_checkpoints"]


def _strictify(ideal: np.ndarray, n_requests: int) -> np.ndarray:
    """Round ideal positions to strictly increasing ints in ``[1, n_requests]``.

    Rounding can collapse neighbours on short traces; instead of dropping the
    duplicates (which would silently return fewer checkpoints than
    requested), collisions are resolved by shifting positions forward while
    clamping to the valid range.
    """
    positions = np.round(ideal).astype(np.int64)
    k = positions.size
    offsets = np.arange(k, dtype=np.int64)
    # Strictly increasing: each position at least one past its predecessor.
    positions = np.maximum(positions, offsets + 1)
    positions = np.maximum.accumulate(positions - offsets) + offsets
    # Leave room for the positions still to come, ending exactly at n.
    positions = np.minimum(positions, n_requests - (k - 1 - offsets))
    return positions


def _checkpoint_positions(n_requests: int, n_checkpoints: int) -> np.ndarray:
    """Request counts (1-based) at which to record the series.

    Contract (documented on :class:`~repro.config.SimulationConfig`): exactly
    ``min(n_checkpoints, n_requests)`` strictly increasing positions in
    ``[1, n_requests]``, the last being ``n_requests``, evenly spaced up to
    rounding.
    """
    if n_requests <= 0:
        raise SimulationError("cannot simulate an empty trace")
    n_checkpoints = min(n_checkpoints, n_requests)
    ideal = np.linspace(n_requests / n_checkpoints, n_requests, n_checkpoints)
    return _strictify(ideal, n_requests)


def log_spaced_checkpoints(n_requests: int, n_checkpoints: int) -> tuple[int, ...]:
    """Geometrically spaced checkpoint positions for log-x-axis figures.

    Returns exactly ``min(n_checkpoints, n_requests)`` strictly increasing
    positions in ``[1, n_requests]`` — the first at 1, the last at
    ``n_requests`` — suitable for
    :attr:`~repro.config.SimulationConfig.checkpoint_positions`.

    Examples
    --------
    >>> log_spaced_checkpoints(10_000, 5)
    (1, 10, 100, 1000, 10000)
    """
    if n_requests <= 0:
        raise SimulationError(
            f"n_requests must be positive, got {n_requests}"
        )
    if n_checkpoints < 1:
        raise SimulationError(
            f"n_checkpoints must be >= 1, got {n_checkpoints}"
        )
    n_checkpoints = min(n_checkpoints, n_requests)
    if n_checkpoints == 1:
        return (n_requests,)
    ideal = np.geomspace(1.0, float(n_requests), n_checkpoints)
    return tuple(int(p) for p in _strictify(ideal, n_requests))


def _validate_checkpoint_override(override) -> np.ndarray:
    """Fully validate explicit checkpoint positions, independent of trace length.

    :class:`~repro.config.SimulationConfig` validates at construction, but
    configs built with ``dataclasses.replace`` or deserialised by other code
    can bypass ``__post_init__`` — so the engine re-validates at resolution
    time: positions must be a non-empty 1-D sequence of integral values,
    at least 1, strictly increasing.  Integrality is checked *before* the
    int64 cast, which would otherwise silently truncate ``10.7`` to ``10``.
    """
    positions = np.asarray(override)
    if positions.ndim != 1 or positions.size == 0:
        raise SimulationError(
            f"checkpoint_positions must be a non-empty 1-D sequence, got {override!r}"
        )
    if not np.issubdtype(positions.dtype, np.number) or np.issubdtype(
        positions.dtype, np.complexfloating
    ):
        raise SimulationError(
            f"checkpoint positions must be integers, got {override!r}"
        )
    if np.issubdtype(positions.dtype, np.floating):
        if not np.all(np.isfinite(positions)) or np.any(positions != np.floor(positions)):
            raise SimulationError(
                f"checkpoint positions must be integers, got {override!r} "
                "(refusing to silently truncate)"
            )
    positions = positions.astype(np.int64)
    if int(positions[0]) < 1:
        raise SimulationError(
            f"checkpoint positions must be >= 1, got {int(positions[0])}"
        )
    if positions.size > 1 and np.any(np.diff(positions) <= 0):
        raise SimulationError(
            f"checkpoint_positions must be strictly increasing, got "
            f"{tuple(int(p) for p in positions)}"
        )
    return positions


def _resolve_checkpoints(n_requests: int, config: SimulationConfig) -> np.ndarray:
    """The run's checkpoint positions: explicit override or the even default."""
    override = config.checkpoint_positions
    if override is None:
        return _checkpoint_positions(n_requests, config.checkpoints)
    positions = _validate_checkpoint_override(override)
    if int(positions[-1]) > n_requests:
        raise SimulationError(
            f"checkpoint_positions reach {int(positions[-1])} but the trace has "
            f"only {n_requests} requests"
        )
    return positions


def _assemble_result(
    algorithm: OnlineBMatchingAlgorithm,
    config: SimulationConfig,
    workload: str,
    n_requests: int,
    cp_requests: list,
    cp_routing: list,
    cp_reconf: list,
    cp_elapsed: list,
    cp_matched: list,
    elapsed_seconds: float,
    matching_history: list,
) -> RunResult:
    """Build the :class:`RunResult` shared by the materialized and streaming drives."""
    series = CheckpointSeries(
        requests=np.asarray(cp_requests, dtype=np.int64),
        routing_cost=np.asarray(cp_routing, dtype=np.float64),
        reconfiguration_cost=np.asarray(cp_reconf, dtype=np.float64),
        elapsed_seconds=np.asarray(cp_elapsed, dtype=np.float64),
        matched_fraction=np.asarray(cp_matched, dtype=np.float64),
    )
    extra: dict = {
        # Provenance: the backend the config asked for and the kernel that
        # actually ran.  They differ exactly when the numba backend fell
        # back to the pure-Python fast kernel (numba missing or masked).
        "matching_backend": config.matching_backend,
        "matching_kernel": algorithm.matching.backend_name,
    }
    # Static-solver provenance (SO-BMA): the solver backend the config asked
    # for and the blossom kernel that actually ran — same requested/effective
    # contract as the matching keys above, populated by the algorithm's fit.
    solver_provenance = getattr(algorithm, "solver_provenance", None)
    if solver_provenance:
        extra.update(solver_provenance)
    # RNG-mode provenance (randomized algorithms only): the rng_mode the
    # config requested (None when the library default applied) and the mode
    # that actually ran.  Deterministic algorithms record nothing.
    rng_provenance = getattr(algorithm, "rng_provenance", None)
    if rng_provenance:
        extra.update(rng_provenance)
    if config.collect_matching_history:
        extra["matching_history"] = matching_history
    return RunResult(
        algorithm=algorithm.name,
        workload=workload,
        topology=algorithm.topology.name,
        b=algorithm.config.b,
        alpha=algorithm.config.alpha,
        n_requests=n_requests,
        seed=config.seed,
        series=series,
        total_routing_cost=algorithm.total_routing_cost,
        total_reconfiguration_cost=algorithm.total_reconfiguration_cost,
        total_elapsed_seconds=elapsed_seconds,
        matched_fraction=algorithm.matched_fraction,
        extra=extra,
    )


def run_simulation(
    algorithm: OnlineBMatchingAlgorithm,
    trace: "Trace | TraceStream",
    config: Optional[SimulationConfig] = None,
    validate: bool = False,
    observers: Iterable[SimulationObserver] = (),
) -> RunResult:
    """Replay ``trace`` through ``algorithm`` and collect a :class:`RunResult`.

    Parameters
    ----------
    algorithm:
        A fresh (or reset) algorithm instance; offline algorithms
        (``requires_full_trace``) are fitted on the trace first.  The engine
        rebinds the algorithm's matching onto
        ``config.matching_backend`` before the first request (a no-op when it
        already matches); the rebind preserves state exactly and consumes no
        randomness, so results are bit-identical across backends.
    trace:
        The workload to replay.  A :class:`~repro.traffic.stream.TraceStream`
        is consumed segment by segment through :class:`StreamingSimulation`
        (peak memory bounded by the chunk size, results bit-identical to the
        materialized replay); offline algorithms (``requires_full_trace``)
        materialize the stream first, since they need the whole trace to fit.
    config:
        Simulation parameters (checkpoints, matching backend, seed
        recording).  The seed in the config is *not* applied to the
        algorithm — pass it to the algorithm's constructor — it is only
        recorded in the result for provenance.
    validate:
        If true, validate the b-matching invariants after every request
        (slow; meant for tests).  Equivalent to passing a
        :class:`~repro.experiments.observers.ValidationObserver`.
    observers:
        Observers notified at run start/end, after each request batch, and at
        each checkpoint.  Observer time is excluded from the measured
        algorithm wall-clock time.
    """
    if isinstance(trace, TraceStream):
        if algorithm.requires_full_trace:
            return run_simulation(
                algorithm, trace.materialize(), config, validate, observers
            )
        driver = StreamingSimulation(
            algorithm,
            trace.metadata,
            config=config,
            validate=validate,
            observers=observers,
            n_requests=trace.n_requests,
            source=trace,
        )
        for segment in trace:
            driver.feed(segment)
        return driver.finish()

    config = config or SimulationConfig()
    if trace.n_nodes > algorithm.topology.n_racks:
        raise SimulationError(
            f"trace addresses {trace.n_nodes} racks but topology has only "
            f"{algorithm.topology.n_racks}"
        )
    if algorithm.requests_served:
        raise SimulationError(
            "algorithm has already served requests; call reset() or use a fresh instance"
        )
    algorithm.rebind_matching_backend(config.matching_backend)

    watchers = ObserverList(observers)
    if validate:
        watchers.observers.append(ValidationObserver())
    notify = bool(watchers)

    n_requests = len(trace)
    checkpoints = _resolve_checkpoints(n_requests, config)
    timer = Timer()

    context = RunContext(algorithm=algorithm, trace=trace, config=config,
                         n_requests=n_requests)
    if notify:
        watchers.on_start(context)
    batch_interval = watchers.batch_interval if notify else None

    cp_requests: list[int] = []
    cp_routing: list[float] = []
    cp_reconf: list[float] = []
    cp_elapsed: list[float] = []
    cp_matched: list[float] = []
    matching_history: list[frozenset] = []

    use_batched_path = (
        config.matching_backend != "reference"
        and not config.collect_matching_history
        # Per-request batches (e.g. ValidationObserver) degenerate to
        # single-element segments; the plain loop is faster and identical.
        and (batch_interval is None or batch_interval > 1)
    )

    if algorithm.requires_full_trace:
        with timer:
            algorithm.fit(trace if use_batched_path else list(trace.requests()))

    def record_checkpoint(index: int, served: int) -> None:
        cp_requests.append(served)
        cp_routing.append(algorithm.total_routing_cost)
        cp_reconf.append(algorithm.total_reconfiguration_cost)
        cp_elapsed.append(timer.elapsed)
        cp_matched.append(algorithm.matched_fraction)
        if notify:
            watchers.on_checkpoint(
                context,
                CheckpointEvent(
                    index=index,
                    requests_served=served,
                    routing_cost=algorithm.total_routing_cost,
                    reconfiguration_cost=algorithm.total_reconfiguration_cost,
                    elapsed_seconds=timer.elapsed,
                    matched_fraction=algorithm.matched_fraction,
                ),
            )

    if use_batched_path:
        checkpoint_list = checkpoints.tolist()
        n_checkpoints = len(checkpoint_list)
        next_checkpoint_idx = 0
        served = 0
        batch_start = 0
        while served < n_requests:
            # Explicit checkpoint overrides may end before the last request;
            # the remaining tail is then served as one final segment.
            if next_checkpoint_idx < n_checkpoints:
                stop = checkpoint_list[next_checkpoint_idx]
            else:
                stop = n_requests
            if batch_interval is not None:
                stop = min(stop, batch_start + batch_interval)
            segment = trace[served:stop]
            with timer:
                algorithm.serve_batch(segment)
            served = stop
            at_checkpoint = (
                next_checkpoint_idx < n_checkpoints
                and served >= checkpoint_list[next_checkpoint_idx]
            )
            if notify and served > batch_start:
                interval_reached = (
                    batch_interval is not None and served - batch_start >= batch_interval
                )
                if interval_reached or at_checkpoint:
                    watchers.on_request_batch(context, batch_start, served)
                    batch_start = served
            if at_checkpoint:
                record_checkpoint(next_checkpoint_idx, served)
                next_checkpoint_idx += 1
        # Flush the trailing partial batch (requests past the last checkpoint
        # or short of a full interval) so observers see every request.
        if notify and served > batch_start:
            watchers.on_request_batch(context, batch_start, served)
            batch_start = served
    else:
        next_checkpoint_idx = 0
        served = 0
        batch_start = 0
        for i in range(n_requests):
            request = trace[i]
            with timer:
                algorithm.serve(request)
            served += 1
            if config.collect_matching_history:
                matching_history.append(algorithm.matching.edges)
            at_checkpoint = (
                next_checkpoint_idx < len(checkpoints)
                and served >= checkpoints[next_checkpoint_idx]
            )
            if notify and batch_interval is not None and served - batch_start >= batch_interval:
                watchers.on_request_batch(context, batch_start, served)
                batch_start = served
            if at_checkpoint:
                if notify and served > batch_start:
                    watchers.on_request_batch(context, batch_start, served)
                    batch_start = served
                record_checkpoint(next_checkpoint_idx, served)
                next_checkpoint_idx += 1
        # Flush the trailing partial batch (requests past the last checkpoint
        # or short of a full interval) so observers see every request.
        if notify and served > batch_start:
            watchers.on_request_batch(context, batch_start, served)
            batch_start = served

    result = _assemble_result(
        algorithm, config, trace.name, n_requests,
        cp_requests, cp_routing, cp_reconf, cp_elapsed, cp_matched,
        timer.elapsed, matching_history,
    )
    if notify:
        watchers.on_end(context, result)
    return result


class StreamingSimulation:
    """Incremental drive loop over streamed trace segments.

    Construct with a fresh algorithm, :meth:`feed` contiguous
    :class:`~repro.traffic.base.Trace` segments in global order, then call
    :meth:`finish` for the :class:`RunResult`.  The result is **bit-identical**
    to :func:`run_simulation` on the materialized concatenation of the
    segments: checkpoints and observer batches fire at the same global
    positions regardless of where segment boundaries fall, and per-segment
    cost sums are exact (path lengths are integral floats, so float64
    addition is lossless far past any realistic trace length).

    Checkpoint planning:

    * declared ``n_requests`` — identical to the materialized run
      (:func:`_resolve_checkpoints`, evenly spaced or the explicit override);
    * unknown length with explicit ``config.checkpoint_positions`` — the
      positions are used as given and must all be reached by exhaustion;
    * unknown length, no override — tail-flush strategy: one checkpoint
      recorded at exhaustion (even spacing needs the length up front).

    :func:`run_simulation` drives one of these per stream; the runner's
    shared-stream fan-out (``compare_on_shared_trace``) drives several in
    lockstep off one tee'd stream.
    """

    def __init__(
        self,
        algorithm: OnlineBMatchingAlgorithm,
        metadata: TraceMetadata,
        config: Optional[SimulationConfig] = None,
        validate: bool = False,
        observers: Iterable[SimulationObserver] = (),
        n_requests: Optional[int] = None,
        source: Optional[TraceStream] = None,
    ):
        config = config or SimulationConfig()
        if metadata.n_nodes > algorithm.topology.n_racks:
            raise SimulationError(
                f"trace addresses {metadata.n_nodes} racks but topology has only "
                f"{algorithm.topology.n_racks}"
            )
        if algorithm.requests_served:
            raise SimulationError(
                "algorithm has already served requests; call reset() or use a fresh instance"
            )
        if algorithm.requires_full_trace:
            raise SimulationError(
                f"algorithm {algorithm.name!r} requires the full trace to fit; "
                "materialize the stream first (run_simulation does this automatically)"
            )
        algorithm.rebind_matching_backend(config.matching_backend)

        self.algorithm = algorithm
        self.config = config
        self.metadata = metadata
        self.declared_n_requests = None if n_requests is None else int(n_requests)

        self._watchers = ObserverList(observers)
        if validate:
            self._watchers.observers.append(ValidationObserver())
        self._notify = bool(self._watchers)
        self._batch_interval = self._watchers.batch_interval if self._notify else None

        if self.declared_n_requests is not None:
            self._checkpoints: Optional[list] = _resolve_checkpoints(
                self.declared_n_requests, config
            ).tolist()
        elif config.checkpoint_positions is not None:
            self._checkpoints = _validate_checkpoint_override(
                config.checkpoint_positions
            ).tolist()
        else:
            self._checkpoints = None  # tail-flush: record once at exhaustion

        self._use_batched = (
            config.matching_backend != "reference"
            and not config.collect_matching_history
            and (self._batch_interval is None or self._batch_interval > 1)
        )
        self._timer = Timer()
        self._served = 0
        self._batch_start = 0
        self._next_cp = 0
        self._finished = False
        self._cp_requests: list[int] = []
        self._cp_routing: list[float] = []
        self._cp_reconf: list[float] = []
        self._cp_elapsed: list[float] = []
        self._cp_matched: list[float] = []
        self._matching_history: list[frozenset] = []

        if source is None:
            # Observers only need `.name` off the context trace; a zero-length
            # placeholder keeps the context usable for driver-level callers.
            source = TraceStream((), metadata, n_requests=n_requests)
        self._context = RunContext(
            algorithm=algorithm, trace=source, config=config,
            n_requests=self.declared_n_requests,
        )
        if self._notify:
            self._watchers.on_start(self._context)

    @property
    def requests_served(self) -> int:
        """Requests fed through the algorithm so far."""
        return self._served

    def _record_checkpoint(self, index: int, served: int) -> None:
        algorithm = self.algorithm
        self._cp_requests.append(served)
        self._cp_routing.append(algorithm.total_routing_cost)
        self._cp_reconf.append(algorithm.total_reconfiguration_cost)
        self._cp_elapsed.append(self._timer.elapsed)
        self._cp_matched.append(algorithm.matched_fraction)
        if self._notify:
            self._watchers.on_checkpoint(
                self._context,
                CheckpointEvent(
                    index=index,
                    requests_served=served,
                    routing_cost=algorithm.total_routing_cost,
                    reconfiguration_cost=algorithm.total_reconfiguration_cost,
                    elapsed_seconds=self._timer.elapsed,
                    matched_fraction=algorithm.matched_fraction,
                ),
            )

    def feed(self, segment: Trace) -> None:
        """Serve the next contiguous trace segment.

        Segments must arrive in global order (``segment.offset`` equal to the
        number of requests already served) — exactly what iterating a
        :class:`~repro.traffic.stream.TraceStream` yields.
        """
        if self._finished:
            raise SimulationError("finish() was already called on this drive")
        if segment.n_nodes != self.metadata.n_nodes:
            raise SimulationError(
                f"segment addresses {segment.n_nodes} racks, stream declared "
                f"{self.metadata.n_nodes}"
            )
        if segment.offset != self._served:
            raise SimulationError(
                f"segment starts at global index {segment.offset}, expected "
                f"{self._served}; feed contiguous segments in order"
            )
        end = self._served + len(segment)
        if self.declared_n_requests is not None and end > self.declared_n_requests:
            raise SimulationError(
                f"stream declared {self.declared_n_requests} requests but "
                f"delivered at least {end}"
            )
        if self._use_batched:
            self._feed_batched(segment, end)
        else:
            self._feed_reference(segment)

    def _feed_batched(self, segment: Trace, end: int) -> None:
        checkpoints = self._checkpoints
        n_cp = len(checkpoints) if checkpoints is not None else 0
        base = segment.offset
        watchers = self._watchers
        while self._served < end:
            # Same boundaries as the materialized batched path — checkpoints
            # and observer intervals — plus the segment end; extra splits at
            # segment ends cannot change results (exact integral-float sums).
            stop = end
            if checkpoints is not None and self._next_cp < n_cp:
                stop = min(stop, checkpoints[self._next_cp])
            if self._batch_interval is not None:
                stop = min(stop, self._batch_start + self._batch_interval)
            sub = segment[self._served - base : stop - base]
            with self._timer:
                self.algorithm.serve_batch(sub)
            self._served = stop
            at_checkpoint = (
                checkpoints is not None
                and self._next_cp < n_cp
                and self._served >= checkpoints[self._next_cp]
            )
            if self._notify and self._served > self._batch_start:
                interval_reached = (
                    self._batch_interval is not None
                    and self._served - self._batch_start >= self._batch_interval
                )
                if interval_reached or at_checkpoint:
                    watchers.on_request_batch(
                        self._context, self._batch_start, self._served
                    )
                    self._batch_start = self._served
            if at_checkpoint:
                self._record_checkpoint(self._next_cp, self._served)
                self._next_cp += 1

    def _feed_reference(self, segment: Trace) -> None:
        checkpoints = self._checkpoints
        n_cp = len(checkpoints) if checkpoints is not None else 0
        watchers = self._watchers
        for request in segment.requests():
            with self._timer:
                self.algorithm.serve(request)
            self._served += 1
            if self.config.collect_matching_history:
                self._matching_history.append(self.algorithm.matching.edges)
            at_checkpoint = (
                checkpoints is not None
                and self._next_cp < n_cp
                and self._served >= checkpoints[self._next_cp]
            )
            if (
                self._notify
                and self._batch_interval is not None
                and self._served - self._batch_start >= self._batch_interval
            ):
                watchers.on_request_batch(self._context, self._batch_start, self._served)
                self._batch_start = self._served
            if at_checkpoint:
                if self._notify and self._served > self._batch_start:
                    watchers.on_request_batch(
                        self._context, self._batch_start, self._served
                    )
                    self._batch_start = self._served
                self._record_checkpoint(self._next_cp, self._served)
                self._next_cp += 1

    def finish(self) -> RunResult:
        """Flush the tail, validate exhaustion, and assemble the result."""
        if self._finished:
            raise SimulationError("finish() was already called on this drive")
        self._finished = True
        n = self._served
        if n == 0:
            raise SimulationError("cannot simulate an empty trace")
        if self.declared_n_requests is not None and n != self.declared_n_requests:
            raise SimulationError(
                f"stream declared {self.declared_n_requests} requests but "
                f"delivered {n}"
            )
        if self._checkpoints is not None and self._next_cp < len(self._checkpoints):
            raise SimulationError(
                f"checkpoint_positions reach {self._checkpoints[-1]} but the "
                f"stream delivered only {n} requests"
            )
        # Flush the trailing partial batch (same contract as the materialized
        # paths): observers see every request exactly once before on_end.
        if self._notify and self._served > self._batch_start:
            self._watchers.on_request_batch(self._context, self._batch_start, self._served)
            self._batch_start = self._served
        if self._checkpoints is None:
            self._record_checkpoint(0, n)
        result = _assemble_result(
            self.algorithm, self.config, self.metadata.name, n,
            self._cp_requests, self._cp_routing, self._cp_reconf,
            self._cp_elapsed, self._cp_matched,
            self._timer.elapsed, self._matching_history,
        )
        if self._notify:
            self._watchers.on_end(self._context, result)
        return result
