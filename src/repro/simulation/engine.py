"""Request-replay simulation engine.

:func:`run_simulation` replays a trace through an online b-matching
algorithm, measuring the algorithm's wall-clock time (excluding the engine's
own checkpoint bookkeeping) and recording the cumulative cost series at
evenly spaced checkpoints.

Two replay paths share identical semantics:

* the **reference path** serves one request per loop iteration, exactly as
  the original implementation did.  It is used when
  ``SimulationConfig.matching_backend == "reference"``, when per-request
  matching history is collected, and when an observer demands per-request
  batches;
* the **batched path** pre-materialises the trace once, splits it into
  contiguous segments bounded by checkpoints (and observer batch intervals),
  and hands each segment to the algorithm's ``serve_batch`` in a single call,
  so checkpoint checks, observer dispatch, and Request/ServeOutcome
  allocation are paid per segment instead of per request.  Every registered
  algorithm ships a hand-tuned ``serve_batch``; algorithms that do not
  override it inherit the base-class per-request loop inside the batched
  path, so there is no engine-level fallback to route around ``serve_batch``.
  The ``"numba"`` backend rides this same path unchanged: the engine hands
  out identical segments and the algorithms' drivers decide per segment
  whether the compiled scan kernels apply, so observer and checkpoint
  semantics are untouched by the compiled backend.  Each result records the
  requested backend and the kernel that actually ran in
  ``RunResult.extra["matching_backend"]`` / ``extra["matching_kernel"]``
  (they differ exactly when numba fell back to the fast kernel).

Checkpoint positions default to evenly spaced request counts
(:func:`_checkpoint_positions`); ``SimulationConfig.checkpoint_positions``
overrides them with an explicit strictly increasing sequence, e.g. from
:func:`log_spaced_checkpoints` for the log-x-axis figures used in related
work.

Cross-cutting concerns — progress reporting, live invariant validation, cost
tracing — are not engine flags but *observers*
(:class:`~repro.experiments.observers.SimulationObserver`): the engine calls
``on_start`` / ``on_request_batch`` / ``on_checkpoint`` / ``on_end`` on every
observer it is given.  The legacy ``validate=True`` flag is kept as sugar for
attaching a :class:`~repro.experiments.observers.ValidationObserver`, which
the integration tests use to certify that no algorithm ever violates the
degree bound.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from ..config import SimulationConfig
from ..core.base import OnlineBMatchingAlgorithm
from ..errors import SimulationError
from ..experiments.observers import (
    CheckpointEvent,
    ObserverList,
    RunContext,
    SimulationObserver,
    ValidationObserver,
)
from ..traffic.base import Trace
from .results import CheckpointSeries, RunResult
from .timer import Timer

__all__ = ["run_simulation", "log_spaced_checkpoints"]


def _strictify(ideal: np.ndarray, n_requests: int) -> np.ndarray:
    """Round ideal positions to strictly increasing ints in ``[1, n_requests]``.

    Rounding can collapse neighbours on short traces; instead of dropping the
    duplicates (which would silently return fewer checkpoints than
    requested), collisions are resolved by shifting positions forward while
    clamping to the valid range.
    """
    positions = np.round(ideal).astype(np.int64)
    k = positions.size
    offsets = np.arange(k, dtype=np.int64)
    # Strictly increasing: each position at least one past its predecessor.
    positions = np.maximum(positions, offsets + 1)
    positions = np.maximum.accumulate(positions - offsets) + offsets
    # Leave room for the positions still to come, ending exactly at n.
    positions = np.minimum(positions, n_requests - (k - 1 - offsets))
    return positions


def _checkpoint_positions(n_requests: int, n_checkpoints: int) -> np.ndarray:
    """Request counts (1-based) at which to record the series.

    Contract (documented on :class:`~repro.config.SimulationConfig`): exactly
    ``min(n_checkpoints, n_requests)`` strictly increasing positions in
    ``[1, n_requests]``, the last being ``n_requests``, evenly spaced up to
    rounding.
    """
    if n_requests <= 0:
        raise SimulationError("cannot simulate an empty trace")
    n_checkpoints = min(n_checkpoints, n_requests)
    ideal = np.linspace(n_requests / n_checkpoints, n_requests, n_checkpoints)
    return _strictify(ideal, n_requests)


def log_spaced_checkpoints(n_requests: int, n_checkpoints: int) -> tuple[int, ...]:
    """Geometrically spaced checkpoint positions for log-x-axis figures.

    Returns exactly ``min(n_checkpoints, n_requests)`` strictly increasing
    positions in ``[1, n_requests]`` — the first at 1, the last at
    ``n_requests`` — suitable for
    :attr:`~repro.config.SimulationConfig.checkpoint_positions`.

    Examples
    --------
    >>> log_spaced_checkpoints(10_000, 5)
    (1, 10, 100, 1000, 10000)
    """
    if n_requests <= 0:
        raise SimulationError(
            f"n_requests must be positive, got {n_requests}"
        )
    if n_checkpoints < 1:
        raise SimulationError(
            f"n_checkpoints must be >= 1, got {n_checkpoints}"
        )
    n_checkpoints = min(n_checkpoints, n_requests)
    if n_checkpoints == 1:
        return (n_requests,)
    ideal = np.geomspace(1.0, float(n_requests), n_checkpoints)
    return tuple(int(p) for p in _strictify(ideal, n_requests))


def _resolve_checkpoints(n_requests: int, config: SimulationConfig) -> np.ndarray:
    """The run's checkpoint positions: explicit override or the even default."""
    override = config.checkpoint_positions
    if override is None:
        return _checkpoint_positions(n_requests, config.checkpoints)
    positions = np.asarray(override, dtype=np.int64)
    if positions.size and int(positions[-1]) > n_requests:
        raise SimulationError(
            f"checkpoint_positions reach {int(positions[-1])} but the trace has "
            f"only {n_requests} requests"
        )
    return positions


def run_simulation(
    algorithm: OnlineBMatchingAlgorithm,
    trace: Trace,
    config: Optional[SimulationConfig] = None,
    validate: bool = False,
    observers: Iterable[SimulationObserver] = (),
) -> RunResult:
    """Replay ``trace`` through ``algorithm`` and collect a :class:`RunResult`.

    Parameters
    ----------
    algorithm:
        A fresh (or reset) algorithm instance; offline algorithms
        (``requires_full_trace``) are fitted on the trace first.  The engine
        rebinds the algorithm's matching onto
        ``config.matching_backend`` before the first request (a no-op when it
        already matches); the rebind preserves state exactly and consumes no
        randomness, so results are bit-identical across backends.
    trace:
        The workload to replay.
    config:
        Simulation parameters (checkpoints, matching backend, seed
        recording).  The seed in the config is *not* applied to the
        algorithm — pass it to the algorithm's constructor — it is only
        recorded in the result for provenance.
    validate:
        If true, validate the b-matching invariants after every request
        (slow; meant for tests).  Equivalent to passing a
        :class:`~repro.experiments.observers.ValidationObserver`.
    observers:
        Observers notified at run start/end, after each request batch, and at
        each checkpoint.  Observer time is excluded from the measured
        algorithm wall-clock time.
    """
    config = config or SimulationConfig()
    if trace.n_nodes > algorithm.topology.n_racks:
        raise SimulationError(
            f"trace addresses {trace.n_nodes} racks but topology has only "
            f"{algorithm.topology.n_racks}"
        )
    if algorithm.requests_served:
        raise SimulationError(
            "algorithm has already served requests; call reset() or use a fresh instance"
        )
    algorithm.rebind_matching_backend(config.matching_backend)

    watchers = ObserverList(observers)
    if validate:
        watchers.observers.append(ValidationObserver())
    notify = bool(watchers)

    n_requests = len(trace)
    checkpoints = _resolve_checkpoints(n_requests, config)
    timer = Timer()

    context = RunContext(algorithm=algorithm, trace=trace, config=config,
                         n_requests=n_requests)
    if notify:
        watchers.on_start(context)
    batch_interval = watchers.batch_interval if notify else None

    cp_requests: list[int] = []
    cp_routing: list[float] = []
    cp_reconf: list[float] = []
    cp_elapsed: list[float] = []
    cp_matched: list[float] = []
    matching_history: list[frozenset] = []

    use_batched_path = (
        config.matching_backend != "reference"
        and not config.collect_matching_history
        # Per-request batches (e.g. ValidationObserver) degenerate to
        # single-element segments; the plain loop is faster and identical.
        and (batch_interval is None or batch_interval > 1)
    )

    if algorithm.requires_full_trace:
        with timer:
            algorithm.fit(trace if use_batched_path else list(trace.requests()))

    def record_checkpoint(index: int, served: int) -> None:
        cp_requests.append(served)
        cp_routing.append(algorithm.total_routing_cost)
        cp_reconf.append(algorithm.total_reconfiguration_cost)
        cp_elapsed.append(timer.elapsed)
        cp_matched.append(algorithm.matched_fraction)
        if notify:
            watchers.on_checkpoint(
                context,
                CheckpointEvent(
                    index=index,
                    requests_served=served,
                    routing_cost=algorithm.total_routing_cost,
                    reconfiguration_cost=algorithm.total_reconfiguration_cost,
                    elapsed_seconds=timer.elapsed,
                    matched_fraction=algorithm.matched_fraction,
                ),
            )

    if use_batched_path:
        checkpoint_list = checkpoints.tolist()
        n_checkpoints = len(checkpoint_list)
        next_checkpoint_idx = 0
        served = 0
        batch_start = 0
        while served < n_requests:
            # Explicit checkpoint overrides may end before the last request;
            # the remaining tail is then served as one final segment.
            if next_checkpoint_idx < n_checkpoints:
                stop = checkpoint_list[next_checkpoint_idx]
            else:
                stop = n_requests
            if batch_interval is not None:
                stop = min(stop, batch_start + batch_interval)
            segment = trace[served:stop]
            with timer:
                algorithm.serve_batch(segment)
            served = stop
            at_checkpoint = (
                next_checkpoint_idx < n_checkpoints
                and served >= checkpoint_list[next_checkpoint_idx]
            )
            if notify and served > batch_start:
                interval_reached = (
                    batch_interval is not None and served - batch_start >= batch_interval
                )
                if interval_reached or at_checkpoint:
                    watchers.on_request_batch(context, batch_start, served)
                    batch_start = served
            if at_checkpoint:
                record_checkpoint(next_checkpoint_idx, served)
                next_checkpoint_idx += 1
    else:
        next_checkpoint_idx = 0
        served = 0
        batch_start = 0
        for i in range(n_requests):
            request = trace[i]
            with timer:
                algorithm.serve(request)
            served += 1
            if config.collect_matching_history:
                matching_history.append(algorithm.matching.edges)
            at_checkpoint = (
                next_checkpoint_idx < len(checkpoints)
                and served >= checkpoints[next_checkpoint_idx]
            )
            if notify and batch_interval is not None and served - batch_start >= batch_interval:
                watchers.on_request_batch(context, batch_start, served)
                batch_start = served
            if at_checkpoint:
                if notify and served > batch_start:
                    watchers.on_request_batch(context, batch_start, served)
                    batch_start = served
                record_checkpoint(next_checkpoint_idx, served)
                next_checkpoint_idx += 1

    series = CheckpointSeries(
        requests=np.asarray(cp_requests, dtype=np.int64),
        routing_cost=np.asarray(cp_routing, dtype=np.float64),
        reconfiguration_cost=np.asarray(cp_reconf, dtype=np.float64),
        elapsed_seconds=np.asarray(cp_elapsed, dtype=np.float64),
        matched_fraction=np.asarray(cp_matched, dtype=np.float64),
    )
    extra: dict = {
        # Provenance: the backend the config asked for and the kernel that
        # actually ran.  They differ exactly when the numba backend fell
        # back to the pure-Python fast kernel (numba missing or masked).
        "matching_backend": config.matching_backend,
        "matching_kernel": algorithm.matching.backend_name,
    }
    # Static-solver provenance (SO-BMA): the solver backend the config asked
    # for and the blossom kernel that actually ran — same requested/effective
    # contract as the matching keys above, populated by the algorithm's fit.
    solver_provenance = getattr(algorithm, "solver_provenance", None)
    if solver_provenance:
        extra.update(solver_provenance)
    if config.collect_matching_history:
        extra["matching_history"] = matching_history

    result = RunResult(
        algorithm=algorithm.name,
        workload=trace.name,
        topology=algorithm.topology.name,
        b=algorithm.config.b,
        alpha=algorithm.config.alpha,
        n_requests=n_requests,
        seed=config.seed,
        series=series,
        total_routing_cost=algorithm.total_routing_cost,
        total_reconfiguration_cost=algorithm.total_reconfiguration_cost,
        total_elapsed_seconds=timer.elapsed,
        matched_fraction=algorithm.matched_fraction,
        extra=extra,
    )
    if notify:
        watchers.on_end(context, result)
    return result
