"""Result containers and aggregation.

A :class:`RunResult` captures one algorithm run over one trace: the
checkpointed series (routing cost, reconfiguration cost, wall-clock time,
matched fraction) plus final totals and enough metadata to regenerate the
run.  :func:`aggregate_runs` averages repetitions into an
:class:`AggregateResult`, mirroring the paper's methodology ("each simulation
is repeated five times and then the results are averaged").
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Sequence, Union

import numpy as np

from ..errors import SimulationError

__all__ = ["CheckpointSeries", "RunResult", "AggregateResult", "aggregate_runs"]

PathLike = Union[str, Path]


def _json_safe(value: Any) -> Any:
    """Coerce result metadata to plain JSON-serialisable Python values.

    ``RunResult.extra`` is an open dict that algorithms and the engine
    populate; a stray ``np.float64`` total or an ``np.ndarray`` diagnostic
    would serialise differently across code paths (or not at all) and break
    both ``save_json`` and the run store's bit-identity contract, so
    ``to_dict`` funnels the whole dict through this normaliser.  Sets are
    emitted in sorted order so the serialised form is deterministic.
    """
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_json_safe(item) for item in value)
    return value


@dataclass(frozen=True)
class CheckpointSeries:
    """Values recorded at evenly spaced request counts.

    Attributes
    ----------
    requests:
        Number of requests served at each checkpoint (x-axis).
    routing_cost:
        Cumulative routing cost at each checkpoint.
    reconfiguration_cost:
        Cumulative reconfiguration cost (α per change) at each checkpoint.
    elapsed_seconds:
        Cumulative algorithm wall-clock time at each checkpoint.
    matched_fraction:
        Fraction of requests served over matching edges, up to each checkpoint.
    """

    requests: np.ndarray
    routing_cost: np.ndarray
    reconfiguration_cost: np.ndarray
    elapsed_seconds: np.ndarray
    matched_fraction: np.ndarray

    def __post_init__(self) -> None:
        lengths = {
            len(self.requests),
            len(self.routing_cost),
            len(self.reconfiguration_cost),
            len(self.elapsed_seconds),
            len(self.matched_fraction),
        }
        if len(lengths) != 1:
            raise SimulationError(f"checkpoint series have inconsistent lengths: {lengths}")

    @property
    def total_cost(self) -> np.ndarray:
        """Routing plus reconfiguration cost at each checkpoint."""
        return self.routing_cost + self.reconfiguration_cost

    def to_dict(self) -> Dict[str, list]:
        """JSON-serialisable representation."""
        return {
            "requests": self.requests.tolist(),
            "routing_cost": self.routing_cost.tolist(),
            "reconfiguration_cost": self.reconfiguration_cost.tolist(),
            "elapsed_seconds": self.elapsed_seconds.tolist(),
            "matched_fraction": self.matched_fraction.tolist(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Sequence[float]]) -> "CheckpointSeries":
        """Inverse of :meth:`to_dict`."""
        return cls(
            requests=np.asarray(data["requests"], dtype=np.int64),
            routing_cost=np.asarray(data["routing_cost"], dtype=np.float64),
            reconfiguration_cost=np.asarray(data["reconfiguration_cost"], dtype=np.float64),
            elapsed_seconds=np.asarray(data["elapsed_seconds"], dtype=np.float64),
            matched_fraction=np.asarray(data["matched_fraction"], dtype=np.float64),
        )


@dataclass(frozen=True)
class RunResult:
    """Outcome of a single simulation run.

    ``spec`` records the originating
    :class:`~repro.experiments.specs.ExperimentSpec` (as its plain-dict form)
    when the run was driven by one, so any saved result can be replayed with
    ``ExperimentSpec.from_dict(result.spec)``.
    """

    algorithm: str
    workload: str
    topology: str
    b: int
    alpha: float
    n_requests: int
    seed: int | None
    series: CheckpointSeries
    total_routing_cost: float
    total_reconfiguration_cost: float
    total_elapsed_seconds: float
    matched_fraction: float
    extra: Dict[str, Any] = field(default_factory=dict)
    spec: Dict[str, Any] | None = None

    @property
    def total_cost(self) -> float:
        """Final routing plus reconfiguration cost."""
        return self.total_routing_cost + self.total_reconfiguration_cost

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable representation."""
        return {
            "algorithm": self.algorithm,
            "workload": self.workload,
            "topology": self.topology,
            "b": self.b,
            "alpha": self.alpha,
            "n_requests": self.n_requests,
            "seed": self.seed,
            "series": self.series.to_dict(),
            "total_routing_cost": self.total_routing_cost,
            "total_reconfiguration_cost": self.total_reconfiguration_cost,
            "total_elapsed_seconds": self.total_elapsed_seconds,
            "matched_fraction": self.matched_fraction,
            "extra": _json_safe(self.extra),
            "spec": self.spec,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            algorithm=data["algorithm"],
            workload=data["workload"],
            topology=data["topology"],
            b=int(data["b"]),
            alpha=float(data["alpha"]),
            n_requests=int(data["n_requests"]),
            seed=data.get("seed"),
            series=CheckpointSeries.from_dict(data["series"]),
            total_routing_cost=float(data["total_routing_cost"]),
            total_reconfiguration_cost=float(data["total_reconfiguration_cost"]),
            total_elapsed_seconds=float(data["total_elapsed_seconds"]),
            matched_fraction=float(data["matched_fraction"]),
            extra=dict(data.get("extra", {})),
            spec=dict(data["spec"]) if data.get("spec") is not None else None,
        )

    def save_json(self, path: PathLike) -> None:
        """Write the result as a JSON file."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load_json(cls, path: PathLike) -> "RunResult":
        """Load a result written by :meth:`save_json`."""
        return cls.from_dict(json.loads(Path(path).read_text()))


@dataclass(frozen=True)
class AggregateResult:
    """Mean (and spread) of several repetitions of the same configuration."""

    algorithm: str
    workload: str
    topology: str
    b: int
    alpha: float
    n_requests: int
    repetitions: int
    series: CheckpointSeries
    routing_cost_mean: float
    routing_cost_std: float
    elapsed_seconds_mean: float
    elapsed_seconds_std: float
    matched_fraction_mean: float

    @property
    def label(self) -> str:
        """Short label used in benchmark tables, e.g. ``"rbma (b: 12)"``."""
        return f"{self.algorithm} (b: {self.b})"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable representation."""
        return {
            "algorithm": self.algorithm,
            "workload": self.workload,
            "topology": self.topology,
            "b": self.b,
            "alpha": self.alpha,
            "n_requests": self.n_requests,
            "repetitions": self.repetitions,
            "series": self.series.to_dict(),
            "routing_cost_mean": self.routing_cost_mean,
            "routing_cost_std": self.routing_cost_std,
            "elapsed_seconds_mean": self.elapsed_seconds_mean,
            "elapsed_seconds_std": self.elapsed_seconds_std,
            "matched_fraction_mean": self.matched_fraction_mean,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AggregateResult":
        """Inverse of :meth:`to_dict` (round-trip symmetric, like :class:`RunResult`)."""
        return cls(
            algorithm=data["algorithm"],
            workload=data["workload"],
            topology=data["topology"],
            b=int(data["b"]),
            alpha=float(data["alpha"]),
            n_requests=int(data["n_requests"]),
            repetitions=int(data["repetitions"]),
            series=CheckpointSeries.from_dict(data["series"]),
            routing_cost_mean=float(data["routing_cost_mean"]),
            routing_cost_std=float(data["routing_cost_std"]),
            elapsed_seconds_mean=float(data["elapsed_seconds_mean"]),
            elapsed_seconds_std=float(data["elapsed_seconds_std"]),
            matched_fraction_mean=float(data["matched_fraction_mean"]),
        )

    def save_json(self, path: PathLike) -> None:
        """Write the aggregate as a JSON file."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load_json(cls, path: PathLike) -> "AggregateResult":
        """Load an aggregate written by :meth:`save_json`."""
        return cls.from_dict(json.loads(Path(path).read_text()))


def aggregate_runs(runs: Sequence[RunResult]) -> AggregateResult:
    """Average repetitions of the same configuration into one result.

    All runs must share algorithm, workload, topology, ``b``, ``alpha`` and
    request count; only the seed may differ.
    """
    if not runs:
        raise SimulationError("cannot aggregate an empty list of runs")
    first = runs[0]
    for run in runs[1:]:
        if (
            run.algorithm != first.algorithm
            or run.workload != first.workload
            or run.topology != first.topology
            or run.b != first.b
            or run.alpha != first.alpha
            or run.n_requests != first.n_requests
        ):
            raise SimulationError(
                "aggregate_runs requires identical configurations; "
                f"got {run.algorithm}/{run.b} vs {first.algorithm}/{first.b}"
            )
    routing = np.stack([r.series.routing_cost for r in runs])
    reconf = np.stack([r.series.reconfiguration_cost for r in runs])
    elapsed = np.stack([r.series.elapsed_seconds for r in runs])
    matched = np.stack([r.series.matched_fraction for r in runs])
    series = CheckpointSeries(
        requests=first.series.requests.copy(),
        routing_cost=routing.mean(axis=0),
        reconfiguration_cost=reconf.mean(axis=0),
        elapsed_seconds=elapsed.mean(axis=0),
        matched_fraction=matched.mean(axis=0),
    )
    final_routing = np.array([r.total_routing_cost for r in runs])
    final_elapsed = np.array([r.total_elapsed_seconds for r in runs])
    return AggregateResult(
        algorithm=first.algorithm,
        workload=first.workload,
        topology=first.topology,
        b=first.b,
        alpha=first.alpha,
        n_requests=first.n_requests,
        repetitions=len(runs),
        series=series,
        routing_cost_mean=float(final_routing.mean()),
        routing_cost_std=float(final_routing.std()),
        elapsed_seconds_mean=float(final_elapsed.mean()),
        elapsed_seconds_std=float(final_elapsed.std()),
        matched_fraction_mean=float(np.mean([r.matched_fraction for r in runs])),
    )
