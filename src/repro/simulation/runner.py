"""Experiment execution: specs in, results out.

The canonical description of a run is an
:class:`~repro.experiments.specs.ExperimentSpec`;
:func:`execute_experiment_spec` turns one repetition of a spec into a
:class:`~repro.simulation.results.RunResult` (stamped with the originating
spec for provenance).  :class:`ExperimentRunner` layers the paper's
methodology on top: repetitions with spawned seeds, averaging, and shared
traces for algorithm comparisons.

:class:`RunSpec` is the legacy flat description kept for backward
compatibility; it converts losslessly via :meth:`RunSpec.to_experiment_spec`
and every entry point accepts either form.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from ..config import SimulationConfig
from ..errors import ConfigurationError
from ..experiments.observers import SimulationObserver
from ..experiments.specs import (
    AlgorithmSpec,
    ExperimentSpec,
    TopologySpec,
    TrafficSpec,
    spawn_seeds,
)
from ..store.fingerprint import fingerprint_spec
from ..store.run_store import RunStore, resolve_store
from ..traffic.base import Trace
from ..traffic.stream import TraceStream
from .engine import run_simulation
from .results import AggregateResult, RunResult, aggregate_runs

__all__ = [
    "RunSpec",
    "AnySpec",
    "ExperimentRunner",
    "execute_run_spec",
    "execute_experiment_spec",
    "as_experiment_spec",
]


@dataclass(frozen=True)
class RunSpec:
    """Legacy flat description of one run (see :class:`ExperimentSpec`).

    Kept as a stable shim: all fields and semantics are unchanged, and
    :meth:`to_experiment_spec` converts to the structured spec tree that the
    execution paths now consume.

    Attributes
    ----------
    algorithm:
        Registered algorithm name (e.g. ``"rbma"``).
    workload:
        Registered workload name (e.g. ``"facebook-database"``).
    b, alpha:
        Matching parameters.
    topology:
        Registered topology name; defaults to ``"fat-tree"`` as in the paper.
    workload_kwargs, topology_kwargs, algorithm_kwargs:
        Extra keyword arguments forwarded to the respective factories.
    seed:
        Seed for both workload generation and algorithm randomness (distinct
        sub-seeds are spawned for each).
    checkpoints:
        Number of recorded checkpoints.
    """

    algorithm: str
    workload: str
    b: int
    alpha: float = 1.0
    topology: str = "fat-tree"
    workload_kwargs: Mapping[str, Any] = field(default_factory=dict)
    topology_kwargs: Mapping[str, Any] = field(default_factory=dict)
    algorithm_kwargs: Mapping[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None
    checkpoints: int = 20

    def with_seed(self, seed: int) -> "RunSpec":
        """The same spec with a different seed (used for repetitions)."""
        return replace(self, seed=seed)

    def to_experiment_spec(self) -> ExperimentSpec:
        """The equivalent structured :class:`ExperimentSpec`."""
        return ExperimentSpec(
            algorithm=AlgorithmSpec(
                name=self.algorithm,
                b=self.b,
                alpha=self.alpha,
                params=dict(self.algorithm_kwargs),
            ),
            traffic=TrafficSpec(name=self.workload, params=dict(self.workload_kwargs)),
            topology=TopologySpec(name=self.topology, params=dict(self.topology_kwargs)),
            simulation=SimulationConfig(checkpoints=self.checkpoints),
            seed=self.seed,
        )


AnySpec = Union[RunSpec, ExperimentSpec]


def as_experiment_spec(spec: AnySpec) -> ExperimentSpec:
    """Normalise a :class:`RunSpec` or :class:`ExperimentSpec` to the latter."""
    if isinstance(spec, ExperimentSpec):
        return spec
    if isinstance(spec, RunSpec):
        return spec.to_experiment_spec()
    if isinstance(spec, Mapping):
        return ExperimentSpec.from_dict(spec)
    raise ConfigurationError(
        f"expected an ExperimentSpec, RunSpec, or mapping, got {type(spec).__name__}"
    )


def _store_eligible(spec: ExperimentSpec, store: Optional[RunStore]) -> bool:
    """Whether a run of ``spec`` may interact with ``store`` at all.

    Unseeded specs draw fresh entropy (nothing stable to address), and
    matching-history collection embeds per-request state the store's JSON
    contract does not cover.
    """
    return (
        store is not None
        and spec.seed is not None
        and not spec.simulation.collect_matching_history
    )


def execute_experiment_spec(
    spec: ExperimentSpec,
    trace: Optional[Union[Trace, TraceStream]] = None,
    observers: Iterable[SimulationObserver] = (),
    validate: bool = False,
    store=None,
) -> RunResult:
    """Execute one repetition of ``spec`` and return its :class:`RunResult`.

    Trace and algorithm randomness use sub-seeds spawned from ``spec.seed``
    (see :meth:`ExperimentSpec.run_seeds`) so the two streams are decoupled
    but fully reproducible.  The returned result carries ``spec.to_dict()``
    in its ``spec`` field and ``spec.seed`` as its recorded seed.

    Parameters
    ----------
    spec:
        The experiment description (``repeats`` is ignored here — this is one
        run; see :class:`ExperimentRunner` or :func:`~repro.simulation.sweep.run_experiments`).
    trace:
        Optionally a pre-generated trace — or a
        :class:`~repro.traffic.stream.TraceStream` — so several algorithms
        can share the exact same workload, as the paper's figures require.
        If omitted the workload is generated from the spec: lazily as a
        stream when ``spec.traffic.streaming`` is set (bounded memory,
        bit-identical result and store fingerprint), materialized otherwise.
    observers, validate:
        Forwarded to :func:`~repro.simulation.engine.run_simulation`.
    store:
        Run-store policy (see :func:`repro.store.resolve_store`): ``None``
        defers to the ``REPRO_RUN_STORE`` environment default, ``False``
        forces a cold run, a path/:class:`~repro.store.StoreConfig`/
        :class:`~repro.store.RunStore` selects a store explicitly.  With a
        store active and no explicit ``trace``, the store is checked before
        computing — a hit returns the stored result (bit-identical to the
        cold run that produced it, re-stamped with this spec's provenance)
        without any simulation work — and a cold result is written back
        after.  Hits are bypassed when observers are attached or
        ``validate`` is set (those ask for the run's side effects, not just
        its result).  An explicit ``trace`` disables the store here because
        this function cannot prove the trace matches the spec; the runner's
        shared-trace paths do their own store handling with that knowledge.
    """
    spec.validate()
    run_store = resolve_store(store) if trace is None else None
    observers = tuple(observers)
    eligible = _store_eligible(spec, run_store)
    fingerprint: Optional[str] = None
    if eligible:
        fingerprint = fingerprint_spec(spec)
        if not observers and not validate:
            cached = run_store.get(fingerprint)
            if cached is not None:
                return replace(cached, spec=spec.to_dict())
    trace_seed, algo_seed = spec.run_seeds()
    if trace is None:
        trace = (
            spec.build_stream(trace_seed)
            if spec.traffic.streaming
            else spec.build_trace(trace_seed)
        )
    topology = spec.build_topology(trace)
    algorithm = spec.build_algorithm(topology, algo_seed)
    sim_config = replace(spec.simulation, seed=spec.seed)
    result = run_simulation(
        algorithm, trace, sim_config, validate=validate, observers=observers
    )
    result = replace(result, spec=spec.to_dict())
    if eligible:
        run_store.put(result, fingerprint=fingerprint)
    return result


def execute_run_spec(
    spec: AnySpec,
    trace: Optional[Trace] = None,
    observers: Iterable[SimulationObserver] = (),
    validate: bool = False,
) -> RunResult:
    """Execute a single spec (legacy or structured) and return its result."""
    return execute_experiment_spec(
        as_experiment_spec(spec), trace=trace, observers=observers, validate=validate
    )


class ExperimentRunner:
    """Runs groups of specs sharing a workload, with repetitions and averaging.

    The runner drives the repeat/seed policy: each repetition gets a seed
    spawned from ``base_seed`` via :class:`numpy.random.SeedSequence` (the
    paper repeats every simulation five times and averages).  Specs may be
    legacy :class:`RunSpec` or structured :class:`ExperimentSpec` objects;
    a spec's own ``repeats``/``seed`` fields are superseded by the runner's
    policy here (use :meth:`ExperimentSpec.run` or
    :func:`~repro.simulation.sweep.run_experiments` for spec-driven runs).

    Parameters
    ----------
    repetitions:
        Number of independent repetitions per configuration (the paper uses
        five); each repetition uses a different spawned seed for both the
        workload and the algorithm randomness.
    base_seed:
        Seed from which repetition seeds are spawned.
    observers:
        Observers attached to every run the runner executes.
    store:
        Run-store policy applied to every run (see
        :func:`repro.store.resolve_store`): ``None`` defers to the
        ``REPRO_RUN_STORE`` environment default, ``False`` forces cold
        runs, a path/config/:class:`~repro.store.RunStore` selects one
        explicitly.  With a store, repeated grids are incremental: cells
        whose (spec, seed) fingerprint is already stored are served from
        disk bit-identically, and only dirty cells simulate.
    """

    def __init__(
        self,
        repetitions: int = 1,
        base_seed: int = 0,
        observers: Iterable[SimulationObserver] = (),
        store=None,
    ):
        if repetitions < 1:
            raise ConfigurationError(f"repetitions must be >= 1, got {repetitions}")
        self.repetitions = repetitions
        self.base_seed = base_seed
        self.observers = tuple(observers)
        self.store = store

    def repetition_seeds(self) -> List[int]:
        """The spawned seeds, one per repetition (deterministic in ``base_seed``)."""
        return spawn_seeds(self.base_seed, self.repetitions)

    def run(self, spec: AnySpec) -> AggregateResult:
        """Run one configuration for all repetitions and average the results."""
        experiment = as_experiment_spec(spec)
        runs = [
            execute_experiment_spec(
                experiment.with_seed(seed),
                observers=self.observers,
                store=self.store,
            )
            for seed in self.repetition_seeds()
        ]
        return aggregate_runs(runs)

    def _execute_grid(
        self,
        experiments: Sequence[ExperimentSpec],
        n_workers: Optional[int],
        backend: Optional[str],
        queue_dir: Optional[str],
    ) -> List[RunResult]:
        """Plan and execute the repetition-major (seed × spec) grid.

        The shared engine behind :meth:`run_many` and
        :meth:`compare_on_shared_trace`: builds an
        :class:`~repro.exec.plan.ExecutionPlan` (store hits served before
        dispatch, specs sharing a workload and seed grouped into one task,
        offline SO-BMA demand pre-solved once) and runs it on the resolved
        scheduler backend.  Observers ride along only on the serial
        backend — they cannot cross a process boundary — matching the
        long-standing pool semantics.
        """
        from ..exec import (
            build_execution_plan,
            execute_plan,
            resolve_backend_name,
            resolve_worker_count,
        )

        workers = resolve_worker_count(n_workers, fallback=1)
        name = resolve_backend_name(backend, workers)
        seeds = self.repetition_seeds()
        # Repetition-major: specs sharing a workload and a repetition seed
        # land consecutively, grouping into one shared-trace task.
        grid = [
            experiment.with_seed(seed)
            for seed in seeds
            for experiment in experiments
        ]
        plan = build_execution_plan(
            grid,
            store=self.store,
            observers=self.observers if name == "serial" else (),
        )
        return execute_plan(plan, backend=name, n_workers=workers, queue_dir=queue_dir)

    def run_many(
        self,
        specs: Sequence[AnySpec],
        n_workers: Optional[int] = None,
        backend: Optional[str] = None,
        queue_dir: Optional[str] = None,
    ) -> List[AggregateResult]:
        """Run several configurations, optionally sharded over a scheduler backend.

        With ``n_workers > 1`` (or an explicit ``backend``) the individual
        (spec × repetition) runs are distributed by
        :func:`~repro.exec.scheduler.execute_plan`; results are
        bit-identical to sequential execution (each worker rebuilds its
        trace deterministically from the spec) but observers are not shipped
        off the serial backend.
        """
        if not specs:
            return []
        experiments = [as_experiment_spec(spec) for spec in specs]
        flat = self._execute_grid(experiments, n_workers, backend, queue_dir)
        n_seeds = self.repetitions
        return [
            aggregate_runs(
                [flat[r * len(experiments) + i] for r in range(n_seeds)]
            )
            for i in range(len(experiments))
        ]

    def compare_on_shared_trace(
        self,
        specs: Sequence[AnySpec],
        n_workers: Optional[int] = None,
        backend: Optional[str] = None,
        queue_dir: Optional[str] = None,
    ) -> Dict[str, AggregateResult]:
        """Run several algorithm specs on the *same* generated workloads.

        All specs must name the same workload and workload parameters; per
        repetition one trace is generated and every algorithm replays it —
        the setup behind each panel of the paper's figures.  Returns a dict
        keyed by ``"<algorithm> (b: <b>)"``.

        SO-BMA specs benefit twice from the static-solver memo in
        :mod:`repro.matching.static_solver`: within a repetition, several
        ``so-bma`` entries differing only in ``b`` aggregate the same shared
        trace, so their iterated blossom solves share nested round prefixes
        (only ``max(b)`` rounds are solved in total), and identical
        (trace, backend) solves across panels or timing rounds in the same
        process are pure cache hits.  Pool workers hold their own per-process
        memo, so sharded runs stay bit-identical to sequential ones.

        With ``n_workers > 1`` (or an explicit ``backend``) the
        (repetition × spec) grid is sharded over a scheduler backend
        (``"pool"`` or ``"queue"``).  Workers rebuild the repetition's trace
        deterministically from their spec (the trace seed is spawned from
        the repetition seed alone, so every spec of a repetition regenerates
        the *same* workload, cached per worker process); costs are therefore
        bit-identical to sequential execution.  Observers are not shipped
        off the serial backend, matching
        :func:`~repro.simulation.sweep.run_experiments`.

        With a run store (the runner's ``store`` policy), each seeded cell
        is looked up before anything is built: a repetition whose cells all
        hit performs **zero** simulation work — the shared trace is not
        even generated — and only miss cells are executed (on the shared
        trace) and written back.  Stored cells are bit-identical to the
        cold runs that produced them, so a warm rebuild of a whole panel
        equals the cold sequential run exactly.  Store reads are bypassed
        when the runner carries observers (they must see every run).
        """
        if not specs:
            raise ConfigurationError("compare_on_shared_trace needs at least one spec")
        experiments = [as_experiment_spec(spec) for spec in specs]
        if any(e.traffic != experiments[0].traffic for e in experiments[1:]):
            raise ConfigurationError(
                "compare_on_shared_trace requires all specs to share the same workload"
            )
        flat = self._execute_grid(experiments, n_workers, backend, queue_dir)
        per_spec_runs: Dict[int, List[RunResult]] = {i: [] for i in range(len(experiments))}
        for j, result in enumerate(flat):
            per_spec_runs[j % len(experiments)].append(result)
        results: Dict[str, AggregateResult] = {}
        for i in range(len(experiments)):
            agg = aggregate_runs(per_spec_runs[i])
            results[agg.label] = agg
        return results

    def _run_shared_stream(self, seeded: Sequence[ExperimentSpec]) -> List[RunResult]:
        """Replay one shared workload stream through several algorithms at once.

        Kept as a thin delegation to
        :func:`repro.exec.runtime.run_shared_stream` (where the lockstep
        tee engine now lives, shared with the queue workers) so existing
        callers and subclasses keep working.
        """
        from ..exec.runtime import run_shared_stream

        return run_shared_stream(seeded, self.observers)
