"""Declarative experiment runner.

A :class:`RunSpec` fully describes a single run (workload, topology,
algorithm, parameters, seed) using only names and plain values, so specs are
picklable and can be executed either sequentially (:class:`ExperimentRunner`)
or in a process pool (:mod:`repro.simulation.parallel`).  The runner handles
the paper's methodology details: repetitions with distinct seeds, averaging,
and building a fat-tree topology sized to the workload by default.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..config import MatchingConfig, SimulationConfig
from ..core.registry import make_algorithm
from ..errors import ConfigurationError
from ..topology.registry import make_topology
from ..traffic.base import Trace
from ..traffic.registry import make_workload
from .engine import run_simulation
from .results import AggregateResult, RunResult, aggregate_runs

__all__ = ["RunSpec", "ExperimentRunner", "execute_run_spec"]


@dataclass(frozen=True)
class RunSpec:
    """A fully declarative description of one simulation run.

    Attributes
    ----------
    algorithm:
        Registered algorithm name (e.g. ``"rbma"``).
    workload:
        Registered workload name (e.g. ``"facebook-database"``).
    b, alpha:
        Matching parameters.
    topology:
        Registered topology name; defaults to ``"fat-tree"`` as in the paper.
    workload_kwargs, topology_kwargs, algorithm_kwargs:
        Extra keyword arguments forwarded to the respective factories.
    seed:
        Seed for both workload generation and algorithm randomness (the
        runner derives distinct sub-seeds for each).
    checkpoints:
        Number of recorded checkpoints.
    """

    algorithm: str
    workload: str
    b: int
    alpha: float = 1.0
    topology: str = "fat-tree"
    workload_kwargs: Mapping[str, Any] = field(default_factory=dict)
    topology_kwargs: Mapping[str, Any] = field(default_factory=dict)
    algorithm_kwargs: Mapping[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None
    checkpoints: int = 20

    def with_seed(self, seed: int) -> "RunSpec":
        """The same spec with a different seed (used for repetitions)."""
        return replace(self, seed=seed)


def _build_trace(spec: RunSpec) -> Trace:
    kwargs = dict(spec.workload_kwargs)
    kwargs.setdefault("seed", spec.seed)
    return make_workload(spec.workload, **kwargs)


def _build_topology(spec: RunSpec, trace: Trace):
    kwargs = dict(spec.topology_kwargs)
    if "n_racks" not in kwargs and spec.topology not in ("torus", "hypercube"):
        kwargs["n_racks"] = trace.n_nodes
    return make_topology(spec.topology, **kwargs)


def execute_run_spec(spec: RunSpec, trace: Optional[Trace] = None) -> RunResult:
    """Execute a single :class:`RunSpec` and return its :class:`RunResult`.

    Parameters
    ----------
    spec:
        The run description.
    trace:
        Optionally a pre-generated trace (so several algorithms can share the
        exact same workload, as the paper's figures require); if omitted the
        workload is generated from the spec.
    """
    trace = trace if trace is not None else _build_trace(spec)
    topology = _build_topology(spec, trace)
    config = MatchingConfig(b=spec.b, alpha=spec.alpha)
    # Algorithm randomness gets a seed derived from the spec seed so that
    # workload and algorithm randomness are decoupled but reproducible.
    algo_seed = None if spec.seed is None else spec.seed * 7919 + 13
    algorithm = make_algorithm(
        spec.algorithm, topology, config, rng=algo_seed, **dict(spec.algorithm_kwargs)
    )
    sim_config = SimulationConfig(checkpoints=spec.checkpoints, seed=spec.seed)
    return run_simulation(algorithm, trace, sim_config)


class ExperimentRunner:
    """Runs groups of specs sharing a workload, with repetitions and averaging.

    Parameters
    ----------
    repetitions:
        Number of independent repetitions per configuration (the paper uses
        five); each repetition uses a different derived seed for both the
        workload and the algorithm randomness.
    base_seed:
        Seed from which repetition seeds are derived.
    """

    def __init__(self, repetitions: int = 1, base_seed: int = 0):
        if repetitions < 1:
            raise ConfigurationError(f"repetitions must be >= 1, got {repetitions}")
        self.repetitions = repetitions
        self.base_seed = base_seed

    def repetition_seeds(self) -> List[int]:
        """The derived seeds, one per repetition."""
        return [self.base_seed + 1000 * r for r in range(self.repetitions)]

    def run(self, spec: RunSpec) -> AggregateResult:
        """Run one configuration for all repetitions and average the results."""
        runs = [execute_run_spec(spec.with_seed(seed)) for seed in self.repetition_seeds()]
        return aggregate_runs(runs)

    def run_many(self, specs: Sequence[RunSpec]) -> List[AggregateResult]:
        """Run several configurations sequentially."""
        return [self.run(spec) for spec in specs]

    def compare_on_shared_trace(
        self, specs: Sequence[RunSpec]
    ) -> Dict[str, AggregateResult]:
        """Run several algorithm specs on the *same* generated workloads.

        All specs must name the same workload and workload parameters; per
        repetition one trace is generated and every algorithm replays it —
        the setup behind each panel of the paper's figures.  Returns a dict
        keyed by ``"<algorithm> (b: <b>)"``.
        """
        if not specs:
            raise ConfigurationError("compare_on_shared_trace needs at least one spec")
        workload_ids = {(s.workload, tuple(sorted(s.workload_kwargs.items()))) for s in specs}
        if len(workload_ids) != 1:
            raise ConfigurationError(
                "compare_on_shared_trace requires all specs to share the same workload"
            )
        per_spec_runs: Dict[int, List[RunResult]] = {i: [] for i in range(len(specs))}
        for seed in self.repetition_seeds():
            shared_trace = _build_trace(specs[0].with_seed(seed))
            for i, spec in enumerate(specs):
                per_spec_runs[i].append(execute_run_spec(spec.with_seed(seed), trace=shared_trace))
        results: Dict[str, AggregateResult] = {}
        for i, spec in enumerate(specs):
            agg = aggregate_runs(per_spec_runs[i])
            results[agg.label] = agg
        return results
