"""Wall-clock timing utilities.

The paper's execution-time figures (1b, 2b, 3b, 4b) measure the cumulative
wall-clock time an algorithm spends processing the trace.  :class:`Timer`
accumulates ``time.perf_counter`` intervals so the engine can exclude its own
bookkeeping (checkpoint recording) from the measured algorithm time.
"""

from __future__ import annotations

import time
from typing import Optional

__all__ = ["Timer"]


class Timer:
    """Accumulating stopwatch based on :func:`time.perf_counter`."""

    def __init__(self) -> None:
        self._elapsed = 0.0
        self._started_at: Optional[float] = None

    def start(self) -> None:
        """Start (or restart) the stopwatch; raises if already running."""
        if self._started_at is not None:
            raise RuntimeError("Timer is already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        """Stop the stopwatch and return the total accumulated time."""
        if self._started_at is None:
            raise RuntimeError("Timer is not running")
        self._elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        return self._elapsed

    @property
    def running(self) -> bool:
        """Whether the stopwatch is currently running."""
        return self._started_at is not None

    @property
    def elapsed(self) -> float:
        """Accumulated time in seconds (including the current interval if running)."""
        if self._started_at is not None:
            return self._elapsed + (time.perf_counter() - self._started_at)
        return self._elapsed

    def reset(self) -> None:
        """Zero the accumulated time and stop."""
        self._elapsed = 0.0
        self._started_at = None

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
