"""Deterministic fault injection for the store/queue/scheduler stack.

See :mod:`repro.faults.injector` for the full contract: named fault sites
(:data:`FAULT_SITES`), the ``REPRO_FAULTS`` environment syntax, and the
seeded decision stream that makes chaos runs exactly reproducible.
"""

from .injector import (
    ENV_FAULTS,
    ENV_FAULTS_SEED,
    FAULT_MODES,
    FAULT_SITES,
    FaultPlan,
    FaultRule,
    InjectedFault,
    clear_faults,
    current_plan,
    fault_point,
    fault_stats,
    faults_active,
    injected_faults,
    install_faults,
    maybe_corrupt,
    parse_faults,
)

__all__ = [
    "ENV_FAULTS",
    "ENV_FAULTS_SEED",
    "FAULT_MODES",
    "FAULT_SITES",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "clear_faults",
    "current_plan",
    "fault_point",
    "fault_stats",
    "faults_active",
    "injected_faults",
    "install_faults",
    "maybe_corrupt",
    "parse_faults",
]
