"""Deterministic, seeded fault injection for the store/queue/scheduler stack.

The robustness contract of the persistent run store and the pull work queue
is only worth anything if the failure paths can actually be *exercised* —
the same fault-injection-first discipline the differential/golden harness
applies to correctness.  This module provides:

* a **registry of named fault sites** (:data:`FAULT_SITES`) instrumented
  throughout :mod:`repro.store.run_store`, :mod:`repro.store.transfer`, and
  :mod:`repro.exec.queue` via :func:`fault_point` /
  :func:`maybe_corrupt` calls;
* a **deterministic seeded injector**: every injection decision is a pure
  function of ``(seed, site, mode, per-site call index)`` via a blake2b
  draw, so a chaos run is *exactly* reproducible — same spec, same seed,
  same injections, in every process that parses the same environment;
* the ``REPRO_FAULTS`` environment syntax (parsed once at import, so worker
  subprocesses inherit the chaos plan automatically)::

      REPRO_FAULTS="store.write:osfail@0.1,queue.claim:delay@0.2"
      REPRO_FAULTS="store.write:corrupt@1.0x1"   # at most 1 injection
      REPRO_FAULTS="worker.crash:crash#2"        # exactly on the 2nd call
      REPRO_FAULTS_SEED=7                        # decision stream seed

Fault modes:

``osfail``
    Raise :class:`InjectedFault` (an :class:`OSError` subclass), modelling
    a transient filesystem error.  The hardened IO layer
    (:mod:`repro.ioutil`) retries these with bounded exponential backoff.
``corrupt``
    Mangle the bytes of the next write at the site (truncate + garbage),
    modelling a torn write on a non-atomic filesystem.  Only meaningful at
    ``*write*`` sites; the read side must quarantine, never abort.
``delay``
    Sleep a few milliseconds, widening race windows (claim contention,
    lease expiry) without changing any result.
``crash``
    SIGKILL the current process, modelling a worker dying mid-task.  Only
    install this against worker subprocesses (via the environment): the
    queue's lease/requeue machinery is what must survive it.

**Zero overhead when off.**  :func:`fault_point` is guarded by a single
module-level plan check (``_PLAN is None``); with no plan installed (the
default — ``REPRO_FAULTS`` unset) instrumented code pays one attribute load
and one comparison per IO operation, nothing else.
"""

from __future__ import annotations

import os
import re
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass
from hashlib import blake2b
from typing import Dict, Iterator, List, Optional, Sequence, Union

from ..errors import ConfigurationError

__all__ = [
    "ENV_FAULTS",
    "ENV_FAULTS_SEED",
    "FAULT_SITES",
    "FAULT_MODES",
    "FaultRule",
    "FaultPlan",
    "InjectedFault",
    "clear_faults",
    "current_plan",
    "fault_point",
    "fault_stats",
    "faults_active",
    "injected_faults",
    "install_faults",
    "maybe_corrupt",
    "parse_faults",
]

#: Environment variable carrying the fault plan (see module docstring).
ENV_FAULTS = "REPRO_FAULTS"

#: Environment variable seeding the injection decision stream (default 0).
ENV_FAULTS_SEED = "REPRO_FAULTS_SEED"

#: Named fault sites instrumented in the store/queue stack.  The name is
#: the contract: tests and ``REPRO_FAULTS`` target these strings, and the
#: instrumented modules must keep calling them from the documented spots.
FAULT_SITES: Dict[str, str] = {
    "store.write": "run-store entry writes (put, tarball import)",
    "store.index_write": "run-store index.json writes",
    "store.read": "run-store entry reads (get, scan, history)",
    "queue.claim": "task-claim rename in the work queue",
    "queue.task_write": "task enqueue/requeue writes",
    "queue.task_read": "claimed task payload reads",
    "queue.heartbeat": "lease write/refresh from the worker heartbeat",
    "queue.result_write": "result/failure publications",
    "worker.crash": "worker execution checkpoints (crash mode)",
}

#: Supported fault modes (see module docstring).
FAULT_MODES = ("osfail", "corrupt", "delay", "crash")

#: Bytes appended when corrupting a write (recognisably garbage).
_CORRUPT_MARKER = "\x00<<injected-corruption>>"

#: Default sleep for ``delay`` faults, seconds.
_DELAY_SECONDS = 0.005


class InjectedFault(OSError):
    """A deterministically injected transient IO failure.

    Subclasses :class:`OSError` so every hardened ``except OSError`` path
    (retry loops, graceful degradation, heartbeat continuation) treats it
    exactly like the real thing, while tests can still assert that a
    failure was injected rather than genuine.
    """


@dataclass(frozen=True)
class FaultRule:
    """One parsed ``site:mode@rate`` / ``site:mode#call`` token.

    Attributes
    ----------
    site:
        A :data:`FAULT_SITES` name.
    mode:
        One of :data:`FAULT_MODES`.
    rate:
        Per-call injection probability in ``[0, 1]`` (used when
        ``at_call`` is ``None``).
    at_call:
        1-based call index at which to inject exactly once (``#N`` syntax).
    limit:
        Maximum number of injections for this rule (``xK`` suffix);
        ``None`` means unbounded.
    """

    site: str
    mode: str
    rate: float = 0.0
    at_call: Optional[int] = None
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            known = ", ".join(sorted(FAULT_SITES))
            raise ConfigurationError(
                f"unknown fault site {self.site!r} (known sites: {known})"
            )
        if self.mode not in FAULT_MODES:
            raise ConfigurationError(
                f"unknown fault mode {self.mode!r} "
                f"(known modes: {', '.join(FAULT_MODES)})"
            )
        if self.mode == "corrupt" and "write" not in self.site:
            raise ConfigurationError(
                f"fault mode 'corrupt' only applies to write sites, "
                f"not {self.site!r}"
            )
        if self.at_call is None:
            if not (0.0 <= self.rate <= 1.0):
                raise ConfigurationError(
                    f"fault rate must be in [0, 1], got {self.rate} "
                    f"for site {self.site!r}"
                )
        elif self.at_call < 1:
            raise ConfigurationError(
                f"fault call index must be >= 1, got {self.at_call} "
                f"for site {self.site!r}"
            )
        if self.limit is not None and self.limit < 1:
            raise ConfigurationError(
                f"fault limit must be >= 1, got {self.limit} "
                f"for site {self.site!r}"
            )


_TOKEN_RE = re.compile(
    r"^(?P<site>[a-z_.]+):(?P<mode>[a-z]+)"
    r"(?:@(?P<rate>[0-9.]+)|#(?P<at>[0-9]+))"
    r"(?:x(?P<limit>[0-9]+))?$"
)


def parse_faults(spec: str) -> List[FaultRule]:
    """Parse a ``REPRO_FAULTS`` string into :class:`FaultRule` objects.

    Comma-separated tokens, each ``site:mode@rate[xLIMIT]`` (probabilistic)
    or ``site:mode#CALL[xLIMIT]`` (fire exactly at the CALL-th visit).
    Raises :class:`~repro.errors.ConfigurationError` on any malformed
    token — a chaos run with a typo'd plan must fail loudly, not silently
    test nothing.
    """
    rules: List[FaultRule] = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        match = _TOKEN_RE.match(token)
        if match is None:
            raise ConfigurationError(
                f"malformed fault token {token!r} (expected "
                f"'site:mode@rate[xLIMIT]' or 'site:mode#CALL[xLIMIT]', "
                f"e.g. 'store.write:osfail@0.1' or 'worker.crash:crash#2')"
            )
        try:
            rate = float(match.group("rate")) if match.group("rate") else 0.0
        except ValueError:
            raise ConfigurationError(
                f"malformed fault rate in token {token!r}"
            ) from None
        rules.append(
            FaultRule(
                site=match.group("site"),
                mode=match.group("mode"),
                rate=rate,
                at_call=int(match.group("at")) if match.group("at") else None,
                limit=int(match.group("limit")) if match.group("limit") else None,
            )
        )
    if not rules:
        raise ConfigurationError(
            f"fault spec {spec!r} contains no fault rules"
        )
    return rules


def _uniform(seed: int, site: str, mode: str, call: int) -> float:
    """Deterministic uniform draw in [0, 1) for one injection decision."""
    digest = blake2b(
        f"{seed}|{site}|{mode}|{call}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2.0**64


class FaultPlan:
    """An installed set of fault rules plus the decision/injection state.

    Call counters are per ``(site, channel)`` where the channel separates
    :func:`fault_point` visits (``op``) from :func:`maybe_corrupt` visits
    (``corrupt``), so the decision stream of one cannot shift the other.
    All state is process-local: every process participating in a chaos run
    parses the same environment and replays the same decision stream over
    its own call sequence.
    """

    def __init__(self, rules: Sequence[FaultRule], seed: int = 0):
        self.rules = tuple(rules)
        self.seed = int(seed)
        self._calls: Dict[tuple, int] = {}
        self._fired: Dict[FaultRule, int] = {}
        self.injected: Dict[str, int] = {}

    def _select(self, site: str, channel: str, modes: Sequence[str]) -> Optional[FaultRule]:
        """The first rule firing at this visit of ``site``, if any."""
        rules = [r for r in self.rules if r.site == site and r.mode in modes]
        if not rules:
            return None
        key = (site, channel)
        call = self._calls.get(key, 0) + 1
        self._calls[key] = call
        for rule in rules:
            fired = self._fired.get(rule, 0)
            if rule.limit is not None and fired >= rule.limit:
                continue
            if rule.at_call is not None:
                hit = call == rule.at_call
            else:
                hit = _uniform(self.seed, site, rule.mode, call) < rule.rate
            if hit:
                self._fired[rule] = fired + 1
                self.injected[site] = self.injected.get(site, 0) + 1
                return rule
        return None

    def trip(self, site: str) -> None:
        """Apply any osfail/delay/crash rule due at this visit of ``site``."""
        rule = self._select(site, "op", ("osfail", "delay", "crash"))
        if rule is None:
            return
        if rule.mode == "osfail":
            raise InjectedFault(
                f"injected transient fault at {site} "
                f"(seed {self.seed}, call {self._calls[(site, 'op')]})"
            )
        if rule.mode == "delay":
            time.sleep(_DELAY_SECONDS)
            return
        # crash: model SIGKILL — no cleanup, no atexit, no finally blocks.
        os.kill(os.getpid(), signal.SIGKILL)

    def corrupt(self, site: str, text: str) -> str:
        """Possibly mangle ``text`` for a write at ``site``."""
        rule = self._select(site, "corrupt", ("corrupt",))
        if rule is None:
            return text
        return text[: max(1, len(text) // 2)] + _CORRUPT_MARKER

    def stats(self) -> Dict[str, int]:
        """Site -> number of injections so far (all modes pooled)."""
        return dict(self.injected)


#: The installed plan; ``None`` (the default) short-circuits every hook.
_PLAN: Optional[FaultPlan] = None


def faults_active() -> bool:
    """Whether a fault plan is currently installed in this process."""
    return _PLAN is not None


def current_plan() -> Optional[FaultPlan]:
    """The installed :class:`FaultPlan`, or ``None``."""
    return _PLAN


def fault_point(site: str) -> None:
    """Instrumentation hook: maybe inject a fault at ``site``.

    A no-op (one module-global comparison) unless a plan is installed.
    """
    plan = _PLAN
    if plan is None:
        return
    plan.trip(site)


def maybe_corrupt(site: str, text: str) -> str:
    """Instrumentation hook: maybe mangle the bytes of a write at ``site``."""
    plan = _PLAN
    if plan is None:
        return text
    return plan.corrupt(site, text)


def install_faults(
    spec: Union[str, Sequence[FaultRule]], seed: Optional[int] = None
) -> FaultPlan:
    """Install a fault plan process-wide; returns it.

    ``spec`` is a ``REPRO_FAULTS`` string or a pre-built rule sequence;
    ``seed`` defaults to ``REPRO_FAULTS_SEED`` (then 0).  Replaces any
    previously installed plan.
    """
    global _PLAN
    rules = parse_faults(spec) if isinstance(spec, str) else list(spec)
    if seed is None:
        raw = os.environ.get(ENV_FAULTS_SEED, "0").strip() or "0"
        try:
            seed = int(raw)
        except ValueError:
            raise ConfigurationError(
                f"{ENV_FAULTS_SEED} must be an integer, got {raw!r}"
            ) from None
    _PLAN = FaultPlan(rules, seed=seed)
    return _PLAN


def clear_faults() -> None:
    """Remove the installed fault plan (back to the zero-overhead path)."""
    global _PLAN
    _PLAN = None


def fault_stats() -> Dict[str, int]:
    """Injection counts of the installed plan (empty when no plan)."""
    return _PLAN.stats() if _PLAN is not None else {}


@contextmanager
def injected_faults(
    spec: Union[str, Sequence[FaultRule]], seed: int = 0
) -> Iterator[FaultPlan]:
    """Context manager installing a plan for the block, then clearing it."""
    plan = install_faults(spec, seed=seed)
    try:
        yield plan
    finally:
        clear_faults()


def _init_from_env() -> None:
    """Install the plan named by ``REPRO_FAULTS`` (import-time, once).

    Worker subprocesses inherit the environment, so a chaos run covers
    every participant without extra plumbing.  A malformed value raises
    immediately: a chaos plan that silently tests nothing is worse than a
    crash.
    """
    spec = os.environ.get(ENV_FAULTS, "").strip()
    if spec:
        install_faults(spec)


_init_from_env()
