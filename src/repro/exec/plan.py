"""Execution planning: canonicalize, dedupe, group, pre-solve.

:func:`build_execution_plan` turns a flat sequence of run specs (legacy
:class:`~repro.simulation.runner.RunSpec`, structured
:class:`~repro.experiments.specs.ExperimentSpec`, or plain mappings) into an
:class:`ExecutionPlan`:

* **Store dedupe before dispatch.**  With a run store active, every eligible
  spec is fingerprinted and looked up in the parent; hits never reach a
  scheduler backend, and duplicate fingerprints *within* the plan execute
  once (the copies alias the primary's result).
* **Lockstep task groups.**  Pending specs sharing a workload and a seed —
  the shape of every figure panel — are grouped into one
  :class:`PlanTask`, so any backend can generate the shared trace once and
  replay it through each algorithm, exactly as the sequential
  ``compare_on_shared_trace`` does.
* **SO-BMA pre-solve.**  For each group, the aggregate demand of its
  offline ``so-bma`` specs is solved once at the group's ``b_max`` in the
  parent, and the solved rounds travel with the task
  (:func:`repro.matching.static_solver.export_solver_rounds`).  Workers
  seed their per-process solver memo from the payload, so no worker ever
  re-solves an aggregate the parent already solved.

The plan is execution-policy-free: scheduler backends
(:mod:`repro.exec.scheduler`) decide *where* tasks run, the plan only says
*what* runs and what is already known.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..experiments.observers import SimulationObserver
from ..experiments.specs import ExperimentSpec
from ..simulation.results import RunResult
from ..simulation.runner import AnySpec, _store_eligible, as_experiment_spec
from ..store.fingerprint import fingerprint_spec
from ..store.run_store import RunStore, resolve_store

__all__ = [
    "ON_ERROR_MODES",
    "RunFailure",
    "PlanTask",
    "ExecutionPlan",
    "build_execution_plan",
]

#: Valid ``on_error`` policies: ``"raise"`` propagates the first failure
#: (legacy behaviour), ``"collect"`` returns a :class:`RunFailure` record in
#: the failing spec's slot and keeps every completed result.
ON_ERROR_MODES = ("raise", "collect")


@dataclass(frozen=True)
class RunFailure:
    """Per-spec error record returned under ``on_error="collect"``.

    Occupies the failing spec's slot in the results list so completed work
    is never discarded; ``message`` carries the worker-side error with the
    failing spec's JSON (the :class:`~repro.errors.WorkerExecutionError`
    contract), ``attempts`` how many executions were tried.
    """

    index: int
    spec: Optional[Dict[str, Any]]
    error_type: str
    message: str
    attempts: int = 1
    scheduler_backend: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable representation."""
        return {
            "index": self.index,
            "spec": self.spec,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
            "scheduler_backend": self.scheduler_backend,
        }


@dataclass(frozen=True)
class PlanTask:
    """One schedulable unit: specs sharing a workload and a seed.

    ``specs`` are canonicalized, seeded, single-repetition
    :class:`ExperimentSpec` objects; ``indices`` are their positions in the
    plan's input.  ``solver`` carries zero or more
    :func:`~repro.matching.static_solver.export_solver_rounds` payloads
    (one per distinct SO-BMA backend/topology in the group); pre-built
    traces never travel — workers rebuild them deterministically from the
    specs.
    """

    task_id: str
    indices: Tuple[int, ...]
    specs: Tuple[ExperimentSpec, ...]
    fingerprints: Tuple[Optional[str], ...]
    group: str
    solver: Tuple[Dict[str, Any], ...] = ()

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe task description (what travels to queue workers)."""
        return {
            "version": 1,
            "id": self.task_id,
            "indices": list(self.indices),
            "specs": [spec.to_dict() for spec in self.specs],
            "fingerprints": list(self.fingerprints),
            "group": self.group,
            "solver": [dict(p) for p in self.solver],
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "PlanTask":
        """Inverse of :meth:`to_payload` (the in-memory ``trace`` is not shipped)."""
        return cls(
            task_id=str(payload["id"]),
            indices=tuple(int(i) for i in payload["indices"]),
            specs=tuple(ExperimentSpec.from_dict(d) for d in payload["specs"]),
            fingerprints=tuple(payload["fingerprints"]),
            group=str(payload.get("group", "")),
            solver=tuple(dict(p) for p in payload.get("solver", ())),
        )


@dataclass
class ExecutionPlan:
    """What to run, what is already known, and how results come back.

    ``specs`` holds every canonicalized input spec (index-aligned with the
    caller's sequence); ``tasks`` the pending work grouped for lockstep
    execution; ``cached`` run-store hits served before dispatch; ``aliases``
    maps duplicate-fingerprint indices to the pending primary that computes
    their shared result.
    """

    specs: List[ExperimentSpec]
    tasks: List[PlanTask]
    cached: Dict[int, RunResult]
    aliases: Dict[int, int]
    fingerprints: List[Optional[str]]
    store: Optional[RunStore]
    on_error: str
    observers: Tuple[SimulationObserver, ...]

    @property
    def n_specs(self) -> int:
        return len(self.specs)

    @property
    def pending_count(self) -> int:
        """Specs that actually need execution (cached and aliased excluded)."""
        return sum(len(task.indices) for task in self.tasks)

    def describe(self) -> Dict[str, Any]:
        """Summary counters (used by CLI progress output and tests)."""
        return {
            "specs": self.n_specs,
            "pending": self.pending_count,
            "cached": len(self.cached),
            "aliased": len(self.aliases),
            "tasks": len(self.tasks),
            "presolved": sum(len(task.solver) for task in self.tasks),
        }


def _group_key(spec: ExperimentSpec) -> Optional[Tuple[str, str, int]]:
    """Grouping key for shared-trace execution, or ``None`` for a solo task.

    Two specs share a trace exactly when workload name, generator params,
    and seed coincide (the trace seed is spawned from the spec seed alone).
    Unseeded specs draw fresh entropy per run and must never share;
    non-JSON generator params cannot be compared reliably, so they stay
    solo too.  Streaming knobs are delivery options, not content — a
    streamed and a materialized spec of the same workload share a group.
    """
    if spec.seed is None:
        return None
    try:
        params = json.dumps(dict(spec.traffic.params), sort_keys=True)
    except (TypeError, ValueError):
        return None
    return (spec.traffic.name.strip().lower(), params, spec.seed)


def _presolve_task(specs: Sequence[ExperimentSpec]) -> Tuple[Dict[str, Any], ...]:
    """Solved SO-BMA rounds for a task group (empty when nothing applies).

    Solves each distinct (effective solver backend, topology) demand once at
    the group's ``b_max``; the exported payloads ship to workers and, as a
    side effect, warm the parent's own solver memo.  Pre-solving is an
    optimisation: any failure here is swallowed so the real execution path
    surfaces the error with full spec context.
    """
    from ..experiments.specs import _algorithm_registry
    from ..matching import static_solver

    if static_solver._cache_limit() == 0:
        return ()
    offline: List[ExperimentSpec] = []
    for spec in specs:
        if spec.seed is None:
            continue  # the parent's trace draw would differ from the worker's
        try:
            if _algorithm_registry().canonical(spec.algorithm.name) != "so-bma":
                continue
        except Exception:
            continue
        if str(spec.algorithm.params.get("solver", "blossom")).lower() != "blossom":
            continue
        offline.append(spec)
    if not offline:
        return ()
    payloads: List[Dict[str, Any]] = []
    try:
        trace = offline[0].build_trace()
        _share_trace(offline[0], trace)
        buckets: "OrderedDict[Tuple[str, str], List[ExperimentSpec]]" = OrderedDict()
        for spec in offline:
            effective = static_solver.resolve_solver_backend(
                spec.algorithm.solver_backend
            )
            topo_key = json.dumps(
                {"name": spec.topology.name, "params": dict(spec.topology.params)},
                sort_keys=True,
                default=repr,
            )
            buckets.setdefault((effective, topo_key), []).append(spec)
        for (effective, _topo_key), bucket in buckets.items():
            spec = bucket[0]
            topology = spec.build_topology(trace)
            algorithm = spec.build_algorithm(topology, spec.run_seeds()[1])
            weights = algorithm.aggregate_demand(trace)
            b_max = max(s.algorithm.b for s in bucket)
            payloads.append(
                static_solver.export_solver_rounds(
                    weights, topology.n_racks, b_max, backend=effective
                )
            )
    except Exception:
        return tuple(payloads)
    return tuple(payloads)


def _share_trace(spec: ExperimentSpec, trace: Any) -> None:
    """Seed the per-process trace LRU so later executions reuse ``trace``."""
    from ..simulation import parallel as parallel_mod

    trace_seed = spec.run_seeds()[0]
    if trace_seed is None:
        return
    try:
        key = (
            spec.traffic.name,
            tuple(sorted(spec.traffic.params.items())),
            trace_seed,
        )
    except TypeError:
        return
    parallel_mod._TRACE_CACHE[key] = trace
    while len(parallel_mod._TRACE_CACHE) > parallel_mod._TRACE_CACHE_MAX:
        parallel_mod._TRACE_CACHE.popitem(last=False)


def build_execution_plan(
    specs: Sequence[AnySpec],
    *,
    store=None,
    on_error: str = "raise",
    observers: Sequence[SimulationObserver] = (),
    presolve: bool = True,
) -> ExecutionPlan:
    """Build the execution plan for ``specs`` (see module docstring).

    Parameters
    ----------
    specs:
        Runs to plan, in result order.  Legacy :class:`RunSpec`, structured
        :class:`ExperimentSpec`, or mappings; seeds are taken as-is (the
        caller owns the repetition/seed policy).
    store:
        Run-store policy (:func:`repro.store.resolve_store` semantics).
        With a store, eligible specs are fingerprinted and looked up here —
        before any scheduler sees the plan.
    on_error:
        ``"raise"`` (legacy: first failure propagates) or ``"collect"``
        (failures become :class:`RunFailure` records in the results).
    observers:
        Observers the executing backend should attach.  Observers must see
        every run, so their presence disables store read-hits and duplicate
        aliasing (writes still happen); only the serial backend can honour
        them.
    presolve:
        Solve shared SO-BMA demand in the parent and attach the rounds to
        each task (default).  Disable to measure worker-side solving.
    """
    if on_error not in ON_ERROR_MODES:
        raise ConfigurationError(
            f"on_error must be one of {ON_ERROR_MODES}, got {on_error!r}"
        )
    experiments = [as_experiment_spec(spec) for spec in specs]
    run_store = resolve_store(store)
    observer_tuple = tuple(observers)

    cached: Dict[int, RunResult] = {}
    aliases: Dict[int, int] = {}
    fingerprints: List[Optional[str]] = [None] * len(experiments)
    primary_by_fp: Dict[str, int] = {}
    pending: List[int] = []
    for i, experiment in enumerate(experiments):
        if run_store is not None and _store_eligible(experiment, run_store):
            fp = fingerprint_spec(experiment)
            fingerprints[i] = fp
            if not observer_tuple:
                if fp in primary_by_fp:
                    aliases[i] = primary_by_fp[fp]
                    continue
                hit = run_store.get(fp)
                if hit is not None:
                    cached[i] = replace(hit, spec=experiment.to_dict())
                    continue
                primary_by_fp[fp] = i
        pending.append(i)

    groups: "OrderedDict[Tuple[Any, ...], List[int]]" = OrderedDict()
    for i in pending:
        key = _group_key(experiments[i])
        if key is None:
            groups[("solo", i)] = [i]
        else:
            groups.setdefault(("shared",) + key, []).append(i)

    tasks: List[PlanTask] = []
    for k, (key, indices) in enumerate(groups.items()):
        task_specs = tuple(experiments[i] for i in indices)
        if key[0] == "shared":
            label = f"{task_specs[0].traffic.name}/seed={task_specs[0].seed}"
        else:
            label = task_specs[0].label
        solver = _presolve_task(task_specs) if presolve else ()
        tasks.append(
            PlanTask(
                task_id=f"t{k:04d}",
                indices=tuple(indices),
                specs=task_specs,
                fingerprints=tuple(fingerprints[i] for i in indices),
                group=label,
                solver=solver,
            )
        )

    return ExecutionPlan(
        specs=experiments,
        tasks=tasks,
        cached=cached,
        aliases=aliases,
        fingerprints=fingerprints,
        store=run_store,
        on_error=on_error,
        observers=observer_tuple,
    )
