"""Unified execution stack: plan -> scheduler -> results plane.

Every execution entry point (``run_many``, ``compare_on_shared_trace``,
``run_experiments``, ``run_sweep``, ``run_specs_parallel``, the benchmark
harness, and the CLI) funnels through the same three layers:

1. **Planner** (:mod:`repro.exec.plan`): :func:`build_execution_plan`
   canonicalizes legacy/structured specs, serves run-store hits before any
   dispatch, groups shared-trace comparisons into lockstep task groups, and
   pre-solves offline SO-BMA demand once at ``b_max`` in the parent so the
   per-process solver memo stops re-solving the same aggregate in every
   worker.
2. **Scheduler** (:mod:`repro.exec.scheduler`): :data:`SCHEDULER_BACKENDS`
   maps a backend name (``"serial"``, ``"pool"``, ``"queue"``) to a plan
   executor; :func:`execute_plan` dispatches and reassembles results in
   input order.
3. **Results plane**: computed results flow back through the run store
   (parent-owned writes for serial/pool, worker-owned writes plus a parent
   merge for the queue), each stamped with
   ``extra["scheduler_backend"]``/``extra["attempts"]`` provenance.

Results are bit-identical to sequential execution on every backend: specs
travel as JSON, workers rebuild traces deterministically from spawned
seeds, and provenance stamping never touches the cost series.
"""

from .plan import ExecutionPlan, PlanTask, RunFailure, build_execution_plan
from .queue import WorkQueue, run_worker
from .scheduler import (
    ENV_WORKERS,
    SCHEDULER_BACKENDS,
    execute_plan,
    resolve_backend_name,
    resolve_worker_count,
)

__all__ = [
    "ExecutionPlan",
    "PlanTask",
    "RunFailure",
    "build_execution_plan",
    "SCHEDULER_BACKENDS",
    "ENV_WORKERS",
    "execute_plan",
    "resolve_backend_name",
    "resolve_worker_count",
    "WorkQueue",
    "run_worker",
]
