"""File-based pull work queue: tasks as JSON files, leases as atomic renames.

One queue directory is the complete coordination state — no broker, no
sockets — so any process that can see the filesystem can help drain it
(``repro worker <queue-dir>``):

``tasks/<id>.a<NN>.json``
    A ready task (one :meth:`~repro.exec.plan.PlanTask.to_payload`); the
    attempt counter lives in the *filename*, so claiming is one atomic
    ``os.replace`` into ``claimed/`` — exactly one claimant can win — and
    requeueing is one atomic rename back with the counter bumped.
``claimed/<name>`` + ``claimed/<name>.lease``
    A leased task.  The lease records the worker and an expiry time; the
    executing worker refreshes it from a heartbeat thread, so only a dead
    (or wedged) worker lets its lease expire.  :meth:`WorkQueue.requeue_expired`
    — run by every participant — moves expired claims back to ``tasks/``
    until ``max_attempts`` is exhausted, then records a terminal failure.
``results/<id>.json`` / ``failed/<id>.json``
    The results plane: per-spec outcomes (worker-stamped with
    ``scheduler_backend="queue"``/``attempts`` provenance and, when the
    queue carries a store root, already written to the run store by the
    worker) or the terminal error with the failing spec's JSON intact.

Workers execute whole task groups in lockstep (shared trace built once per
task) and seed their solver memo from the plan's pre-solved SO-BMA rounds,
so results are bit-identical to serial execution — including after a worker
is killed mid-task and its lease requeues.

Failure semantics: queue IO goes through :mod:`repro.ioutil` (bounded
retry with backoff for transient ``OSError``, fault-injection hooks from
:mod:`repro.faults` at the ``queue.*``/``worker.crash`` sites), every
swallowed anomaly is counted on :class:`QueueCounters` and logged at debug
level (``repro.exec.queue``), and :meth:`WorkQueue.requeue_expired` also
reaps stale ``.*.tmp-*`` files left by writers killed mid-rename.
``repro doctor --queue DIR`` audits all of it.
"""

from __future__ import annotations

import json
import logging
import os
import shutil
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..errors import ConfigurationError, SimulationError, WorkerExecutionError
from ..faults import fault_point
from ..ioutil import atomic_write_json, read_json, reap_stale_tmp
from ..simulation.results import RunResult
from ..store.run_store import resolve_store
from .plan import ExecutionPlan, PlanTask

__all__ = [
    "QueueCounters",
    "WorkQueue",
    "run_worker",
    "run_queue_backend",
    "DEFAULT_LEASE_SECONDS",
    "DEFAULT_POLL_INTERVAL",
]

logger = logging.getLogger(__name__)

DEFAULT_LEASE_SECONDS = 30.0
DEFAULT_POLL_INTERVAL = 0.2

_META_NAME = "queue.json"
_STOP_NAME = "stop"


@dataclass
class QueueCounters:
    """Per-queue-instance tallies of every anomaly the queue absorbs.

    The queue's failure handling is deliberately non-fatal (a lost race is
    normal, a torn read is retried next poll), but *silent* absorption
    made the paths untestable and invisible.  Every absorbed event now
    counts here and logs at debug level; ``repro doctor`` and worker exit
    summaries report the totals.
    """

    claim_failures: int = 0  #: OSError renaming a task into claimed/
    unreadable_tasks: int = 0  #: claimed task payloads that failed to parse
    lease_read_failures: int = 0  #: torn/unreadable lease files
    lease_write_failures: int = 0  #: lease writes that failed past retries
    heartbeat_failures: int = 0  #: heartbeat renewals absorbed by the thread
    torn_results: int = 0  #: result/failure files unreadable mid-scan
    late_results: int = 0  #: expired claims whose result had already landed
    requeued: int = 0  #: tasks requeued with a bumped attempt counter
    terminal_failures: int = 0  #: tasks failed past max_attempts
    tmp_reaped: int = 0  #: stale tmp files removed by requeue_expired

    def to_dict(self) -> Dict[str, int]:
        return {
            "claim_failures": self.claim_failures,
            "unreadable_tasks": self.unreadable_tasks,
            "lease_read_failures": self.lease_read_failures,
            "lease_write_failures": self.lease_write_failures,
            "heartbeat_failures": self.heartbeat_failures,
            "torn_results": self.torn_results,
            "late_results": self.late_results,
            "requeued": self.requeued,
            "terminal_failures": self.terminal_failures,
            "tmp_reaped": self.tmp_reaped,
        }

    def any_nonzero(self) -> bool:
        return any(self.to_dict().values())


class WorkQueue:
    """One shared queue directory (see module docstring)."""

    #: Tmp siblings older than this are orphans from killed writers.
    TMP_MAX_AGE_SECONDS = 3600.0

    def __init__(self, root: Path, meta: Mapping[str, Any]):
        self.root = Path(root)
        self.meta = dict(meta)
        self.tasks_dir = self.root / "tasks"
        self.claimed_dir = self.root / "claimed"
        self.results_dir = self.root / "results"
        self.failed_dir = self.root / "failed"
        self.workers_dir = self.root / "workers"
        self.logs_dir = self.root / "logs"
        self.counters = QueueCounters()

    # -- lifecycle -------------------------------------------------------

    @classmethod
    def create(
        cls,
        root,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        max_attempts: int = 3,
        on_error: str = "raise",
        store_root: Optional[str] = None,
    ) -> "WorkQueue":
        """Initialise a queue directory (idempotent on an empty/own dir)."""
        if lease_seconds <= 0:
            raise ConfigurationError(
                f"lease_seconds must be positive, got {lease_seconds}"
            )
        if max_attempts < 1:
            raise ConfigurationError(f"max_attempts must be >= 1, got {max_attempts}")
        meta = {
            "version": 1,
            "lease_seconds": float(lease_seconds),
            "max_attempts": int(max_attempts),
            "on_error": on_error,
            "store": store_root,
        }
        queue = cls(Path(root), meta)
        for d in (
            queue.tasks_dir,
            queue.claimed_dir,
            queue.results_dir,
            queue.failed_dir,
            queue.workers_dir,
            queue.logs_dir,
        ):
            d.mkdir(parents=True, exist_ok=True)
        atomic_write_json(queue.root / _META_NAME, meta, site="queue.task_write")
        return queue

    @classmethod
    def open(cls, root) -> "WorkQueue":
        """Attach to an existing queue directory."""
        root = Path(root)
        try:
            meta = json.loads((root / _META_NAME).read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise ConfigurationError(
                f"{root} is not a work queue (no {_META_NAME}); "
                "create one by running a sweep with the 'queue' scheduler backend"
            ) from None
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(f"unreadable queue metadata in {root}: {exc}") from exc
        return cls(root, meta)

    @property
    def lease_seconds(self) -> float:
        return float(self.meta.get("lease_seconds", DEFAULT_LEASE_SECONDS))

    @property
    def max_attempts(self) -> int:
        return int(self.meta.get("max_attempts", 3))

    @property
    def on_error(self) -> str:
        return str(self.meta.get("on_error", "raise"))

    @property
    def store_root(self) -> Optional[str]:
        return self.meta.get("store")

    # -- naming ----------------------------------------------------------

    @staticmethod
    def task_file_name(task_id: str, attempt: int) -> str:
        return f"{task_id}.a{attempt:02d}.json"

    @staticmethod
    def parse_name(name: str) -> Tuple[str, int]:
        """``"t0003.a02.json"`` -> ``("t0003", 2)``."""
        stem = name[: -len(".json")] if name.endswith(".json") else name
        task_id, sep, attempt = stem.rpartition(".a")
        if not sep:
            raise ConfigurationError(f"malformed task file name: {name!r}")
        return task_id, int(attempt)

    # -- producer side ---------------------------------------------------

    def enqueue(self, payload: Mapping[str, Any]) -> str:
        """Add a task (attempt 1); returns the task file name."""
        name = self.task_file_name(str(payload["id"]), 1)
        atomic_write_json(self.tasks_dir / name, dict(payload), site="queue.task_write")
        return name

    def request_stop(self) -> None:
        """Ask every worker (even ``--keep-alive`` ones) to exit."""
        (self.root / _STOP_NAME).touch()

    def stop_requested(self) -> bool:
        return (self.root / _STOP_NAME).exists()

    # -- worker side -----------------------------------------------------

    def claim(self, worker_id: str) -> Optional[Tuple[str, Dict[str, Any]]]:
        """Atomically claim one ready task, or ``None`` when none is ready.

        ``os.replace`` into ``claimed/`` has exactly one winner per file —
        the duplicate-claim protection the whole scheme rests on.
        """
        try:
            names = sorted(os.listdir(self.tasks_dir))
        except FileNotFoundError:
            return None
        for name in names:
            if not name.endswith(".json"):
                continue
            target = self.claimed_dir / name
            try:
                fault_point("queue.claim")
                os.replace(self.tasks_dir / name, target)
            except FileNotFoundError:
                continue  # lost the race for this one; try the next
            except OSError as exc:
                self.counters.claim_failures += 1
                logger.debug("claim rename failed for %s: %s", name, exc)
                continue
            try:
                self._write_lease(name, worker_id)
            except OSError as exc:
                # We still hold the claim; the heartbeat thread will keep
                # retrying the lease, and a missing lease gets one grace
                # period in requeue_expired before the claim is reaped.
                self.counters.lease_write_failures += 1
                logger.debug("initial lease write failed for %s: %s", name, exc)
            try:
                payload = read_json(target, site="queue.task_read")
            except (OSError, json.JSONDecodeError) as exc:
                self.counters.unreadable_tasks += 1
                logger.debug("unreadable task payload %s: %s", name, exc)
                self.fail(
                    name,
                    f"unreadable task payload {name!r}: {exc}",
                    type(exc).__name__,
                )
                continue
            return name, payload
        return None

    def _lease_path(self, name: str) -> Path:
        return self.claimed_dir / f"{name}.lease"

    def _write_lease(self, name: str, worker_id: str) -> None:
        atomic_write_json(
            self._lease_path(name),
            {
                "worker": worker_id,
                "pid": os.getpid(),
                "expires_at": time.time() + self.lease_seconds,
            },
            site="queue.heartbeat",
        )

    def renew(self, name: str, worker_id: str) -> bool:
        """Refresh a held lease; ``False`` when the claim is gone (requeued)."""
        if not (self.claimed_dir / name).exists():
            return False
        self._write_lease(name, worker_id)
        return True

    def complete(self, name: str, payload: Mapping[str, Any]) -> None:
        """Publish a task's result and release the claim."""
        task_id, _attempt = self.parse_name(name)
        atomic_write_json(
            self.results_dir / f"{task_id}.json",
            dict(payload),
            site="queue.result_write",
        )
        self._clear_claim(name)

    def fail(self, name: str, message: str, error_type: str) -> bool:
        """Record a failed attempt: requeue with the counter bumped, or —
        once ``max_attempts`` is exhausted — publish the terminal failure.
        Returns ``True`` when the task was requeued for another attempt."""
        task_id, attempt = self.parse_name(name)
        claim_path = self.claimed_dir / name
        if attempt < self.max_attempts:
            try:
                os.replace(
                    claim_path, self.tasks_dir / self.task_file_name(task_id, attempt + 1)
                )
            except FileNotFoundError:
                logger.debug(
                    "requeue of %s lost a race (already moved by a reaper)", name
                )
            self._lease_path(name).unlink(missing_ok=True)
            self.counters.requeued += 1
            return True
        task_payload = self._read_claim_payload(claim_path, name)
        atomic_write_json(
            self.failed_dir / f"{task_id}.json",
            {
                "id": task_id,
                "attempts": attempt,
                "error": message,
                "error_type": error_type,
                "task": task_payload,
            },
            site="queue.result_write",
        )
        self._clear_claim(name)
        self.counters.terminal_failures += 1
        return False

    def _read_claim_payload(
        self, claim_path: Path, name: str
    ) -> Optional[Dict[str, Any]]:
        """Best-effort read of a claimed task's payload for failure records."""
        try:
            return read_json(claim_path, site="queue.task_read")
        except (OSError, json.JSONDecodeError) as exc:
            self.counters.unreadable_tasks += 1
            logger.debug("claim payload for %s unreadable: %s", name, exc)
            return None

    def _clear_claim(self, name: str) -> None:
        (self.claimed_dir / name).unlink(missing_ok=True)
        self._lease_path(name).unlink(missing_ok=True)

    # -- shared maintenance ---------------------------------------------

    def requeue_expired(self, dead_pids: Optional[Set[int]] = None) -> int:
        """Reap expired (or known-dead-worker) leases; returns tasks touched.

        A claim whose result already landed (late completion after a lease
        expiry race) is simply cleaned up; otherwise the task requeues with
        its attempt counter bumped, or becomes a terminal failure once
        ``max_attempts`` is exhausted.  Safe to run concurrently from any
        participant: every transition is a single atomic rename, and losing
        a race surfaces as ``FileNotFoundError``, which is skipped.
        """
        now = time.time()
        touched = 0
        reaped = reap_stale_tmp(
            [self.tasks_dir, self.claimed_dir, self.results_dir, self.failed_dir],
            self.TMP_MAX_AGE_SECONDS,
            now=now,
        )
        if reaped:
            self.counters.tmp_reaped += len(reaped)
            logger.debug("reaped %d stale tmp file(s): %s", len(reaped), reaped)
        try:
            names = sorted(os.listdir(self.claimed_dir))
        except FileNotFoundError:
            return 0
        for name in names:
            if name.endswith(".lease"):
                if not (self.claimed_dir / name[: -len(".lease")]).exists():
                    (self.claimed_dir / name).unlink(missing_ok=True)
                continue
            if not name.endswith(".json"):
                continue
            claim_path = self.claimed_dir / name
            lease: Optional[Dict[str, Any]] = None
            try:
                lease = json.loads(self._lease_path(name).read_text(encoding="utf-8"))
            except FileNotFoundError:
                lease = None  # claim/lease writes are separate steps
            except (OSError, json.JSONDecodeError) as exc:
                self.counters.lease_read_failures += 1
                logger.debug("unreadable lease for %s: %s", name, exc)
                lease = None
            if lease is None:
                # Claim/lease writes are not one atomic step; give a fresh
                # claim one lease period before treating it as abandoned.
                try:
                    age = now - claim_path.stat().st_mtime
                except OSError:
                    continue
                expired = age > self.lease_seconds
            else:
                expired = float(lease.get("expires_at", 0)) < now or (
                    dead_pids is not None and lease.get("pid") in dead_pids
                )
            if not expired:
                continue
            task_id, attempt = self.parse_name(name)
            if (self.results_dir / f"{task_id}.json").exists():
                self._clear_claim(name)
                self.counters.late_results += 1
                logger.debug("late result for %s: claim cleaned up", name)
                touched += 1
                continue
            if attempt < self.max_attempts:
                self._lease_path(name).unlink(missing_ok=True)
                try:
                    os.replace(
                        claim_path,
                        self.tasks_dir / self.task_file_name(task_id, attempt + 1),
                    )
                except FileNotFoundError:
                    logger.debug("requeue of %s lost a race with another reaper", name)
                    continue
                self.counters.requeued += 1
                touched += 1
            else:
                task_payload = self._read_claim_payload(claim_path, name)
                specs_json = (
                    json.dumps(task_payload.get("specs"), sort_keys=True, default=repr)
                    if task_payload
                    else "<unreadable>"
                )
                atomic_write_json(
                    self.failed_dir / f"{task_id}.json",
                    {
                        "id": task_id,
                        "attempts": attempt,
                        "error": (
                            f"worker lease expired after {attempt} attempt(s) "
                            f"without a result; failing spec: {specs_json}"
                        ),
                        "error_type": "WorkerExecutionError",
                        "task": task_payload,
                    },
                    site="queue.result_write",
                )
                self._clear_claim(name)
                self.counters.terminal_failures += 1
                touched += 1
        return touched

    # -- introspection ---------------------------------------------------

    def _count(self, directory: Path, suffix: str = ".json") -> int:
        try:
            return sum(1 for n in os.listdir(directory) if n.endswith(suffix))
        except FileNotFoundError:
            return 0

    def counts(self) -> Dict[str, int]:
        return {
            "ready": self._count(self.tasks_dir),
            "claimed": self._count(self.claimed_dir),
            "results": self._count(self.results_dir),
            "failed": self._count(self.failed_dir),
        }

    def is_drained(self) -> bool:
        """No ready and no claimed work (results/failures may remain)."""
        return self._count(self.tasks_dir) == 0 and self._count(self.claimed_dir) == 0


class _Heartbeat(threading.Thread):
    """Refreshes a claim's lease while the task executes.

    A SIGKILLed worker takes its heartbeat thread with it, so the lease
    genuinely expires and the task requeues — which is exactly the crash
    semantics the queue promises.
    """

    def __init__(self, queue: WorkQueue, name: str, worker_id: str):
        super().__init__(daemon=True)
        self.queue = queue
        self.name = name
        self.worker_id = worker_id
        self.interval = max(0.05, queue.lease_seconds / 3.0)
        # Not named ``_stop``: Thread.join() calls a private ``_stop()``.
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self.interval):
            try:
                if not self.queue.renew(self.name, self.worker_id):
                    return  # claim was reaped; the result write will be a late no-op
            except OSError as exc:  # transient FS hiccup: retry next beat
                self.queue.counters.heartbeat_failures += 1
                logger.debug("heartbeat renewal failed for %s: %s", self.name, exc)
                continue

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=5.0)


def _stamp_queue_result(result: RunResult, attempts: int) -> RunResult:
    from dataclasses import replace

    return replace(
        result,
        extra={
            **result.extra,
            "scheduler_backend": "queue",
            "attempts": int(attempts),
        },
    )


def _process_claim(
    queue: WorkQueue,
    name: str,
    payload: Mapping[str, Any],
    worker_id: str,
    store,
) -> bool:
    """Execute one claimed task; returns ``True`` on a published result."""
    from ..matching.static_solver import solver_cache_info
    from .runtime import run_task_specs

    fault_point("worker.crash")
    task_id, attempt = queue.parse_name(name)
    heartbeat = _Heartbeat(queue, name, worker_id)
    heartbeat.start()
    try:
        task = PlanTask.from_payload(payload)
        from .scheduler import _import_solver_payloads

        _import_solver_payloads(task.solver)
        outcomes = run_task_specs(
            task.specs, collect=(queue.on_error == "collect"), max_attempts=1
        )
        entries: List[Dict[str, Any]] = []
        for (index, fingerprint), (outcome, _attempts) in zip(
            zip(task.indices, task.fingerprints), outcomes
        ):
            if isinstance(outcome, RunResult):
                stamped = _stamp_queue_result(outcome, attempt)
                if store is not None and fingerprint is not None:
                    if not store.entry_path(fingerprint).exists():
                        store.put(stamped, fingerprint=fingerprint)
                entries.append({"index": index, "result": stamped.to_dict()})
            else:
                entries.append(
                    {"index": index, "error": outcome.to_dict(), "attempts": attempt}
                )
        fault_point("worker.crash")
        queue.complete(
            name,
            {
                "id": task_id,
                "attempt": attempt,
                "worker": worker_id,
                "outcomes": entries,
                "solver_cache": solver_cache_info(),
            },
        )
        return True
    except Exception as exc:  # noqa: BLE001 - recorded, then requeue/terminal
        queue.fail(name, str(exc), type(exc).__name__)
        return False
    finally:
        heartbeat.stop()


def run_worker(
    queue_dir,
    worker_id: Optional[str] = None,
    poll_interval: Optional[float] = None,
    max_tasks: Optional[int] = None,
    keep_alive: bool = False,
) -> Dict[str, Any]:
    """Drain tasks from a queue directory until it is empty (or forever).

    This is the body of the ``repro worker <queue-dir>`` CLI, and is also
    callable in-process (the parent uses it to drain a queue whose workers
    all died).  Exits when the queue is drained unless ``keep_alive`` is
    set, in which case it keeps polling until a stop is requested — the
    mode for long-lived workers on other hosts sharing the directory.
    Returns a stats dict (also written to ``workers/<id>.json``).
    """
    queue = WorkQueue.open(queue_dir)
    worker = worker_id or f"worker-{os.getpid()}"
    poll = DEFAULT_POLL_INTERVAL if poll_interval is None else max(0.01, poll_interval)
    store = resolve_store(queue.store_root) if queue.store_root else None
    stats: Dict[str, Any] = {"worker": worker, "completed": 0, "failed_attempts": 0}
    while True:
        if queue.stop_requested():
            break
        queue.requeue_expired()
        claim = queue.claim(worker)
        if claim is None:
            if max_tasks is not None and stats["completed"] >= max_tasks:
                break
            if not keep_alive and queue.is_drained():
                break
            time.sleep(poll)
            continue
        name, payload = claim
        if _process_claim(queue, name, payload, worker, store):
            stats["completed"] += 1
        else:
            stats["failed_attempts"] += 1
        if max_tasks is not None and stats["completed"] >= max_tasks:
            break
    from ..matching.static_solver import solver_cache_info

    stats["solver_cache"] = solver_cache_info()
    stats["queue"] = queue.counters.to_dict()
    try:
        atomic_write_json(queue.workers_dir / f"{worker}.json", stats)
    except OSError as exc:  # pragma: no cover - stats are best-effort
        logger.debug("worker stats write failed for %s: %s", worker, exc)
    return stats


# --------------------------------------------------------------------------- #
# Parent-side scheduler backend
# --------------------------------------------------------------------------- #


def _spawn_worker(root: Path, k: int, poll: float):
    """Launch one ``repro worker`` subprocess against the queue directory."""
    import repro

    env = dict(os.environ)
    src_root = str(Path(repro.__file__).resolve().parents[1])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_root + (os.pathsep + existing if existing else "")
    log = open(root / "logs" / f"worker-{k}.log", "ab")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "worker",
            str(root),
            "--worker-id",
            f"local-{k}",
            "--poll-interval",
            str(poll),
        ],
        env=env,
        stdout=log,
        stderr=subprocess.STDOUT,
    )
    return proc, log


def _collect_outcomes(
    queue: WorkQueue, plane, done: Set[str]
) -> bool:
    """Fold new result/failure files into the results plane; True if any."""
    progressed = False
    for path in sorted(queue.results_dir.glob("*.json")):
        task_id = path.stem
        if task_id in done:
            continue
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            # Appeared mid-scan; the next poll sees the finished file.
            queue.counters.torn_results += 1
            logger.debug("torn result file %s: %s", path.name, exc)
            continue
        for entry in payload.get("outcomes", []):
            index = int(entry["index"])
            if "result" in entry:
                plane.deliver(
                    index,
                    RunResult.from_dict(entry["result"]),
                    payload.get("attempt", 1),
                    merge=True,
                )
            else:
                error = entry.get("error", {})
                plane.failure(
                    index,
                    error.get("message", "worker reported an unspecified error"),
                    error.get("error_type", "WorkerExecutionError"),
                    entry.get("attempts", payload.get("attempt", 1)),
                )
        done.add(task_id)
        progressed = True
    for path in sorted(queue.failed_dir.glob("*.json")):
        task_id = path.stem
        if task_id in done:
            continue
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            queue.counters.torn_results += 1
            logger.debug("torn failure file %s: %s", path.name, exc)
            continue
        task_payload = payload.get("task") or {}
        indices = [int(i) for i in task_payload.get("indices", [])]
        message = payload.get("error", "task failed without error context")
        error_type = payload.get("error_type", "WorkerExecutionError")
        attempts = int(payload.get("attempts", 1))
        if not indices:
            raise WorkerExecutionError(message)
        for index in indices:
            plane.failure(index, message, error_type, attempts)
        done.add(task_id)
        progressed = True
    return progressed


def run_queue_backend(plan: ExecutionPlan, options, plane) -> None:
    """Execute a plan's tasks through a work-queue directory.

    Enqueues every task, launches ``options.workers`` local worker
    subprocesses, and pumps the results plane until every task is accounted
    for.  Leases of workers the parent knows to be dead requeue immediately
    (no need to wait out the expiry clock); if *every* worker dies with
    work still outstanding, the parent drains the remainder in-process so
    the sweep always terminates.  With ``options.queue_dir`` unset a
    temporary directory is used and removed afterwards; pointing it at a
    shared path lets independently launched ``repro worker`` processes (or
    other hosts) help drain the same sweep.
    """
    if not plan.tasks:
        return
    own_dir = options.queue_dir is None
    root = (
        Path(tempfile.mkdtemp(prefix="repro-queue-"))
        if own_dir
        else Path(options.queue_dir)
    )
    lease = options.lease_seconds if options.lease_seconds else DEFAULT_LEASE_SECONDS
    poll = options.poll_interval if options.poll_interval else DEFAULT_POLL_INTERVAL
    queue = WorkQueue.create(
        root,
        lease_seconds=lease,
        max_attempts=options.max_attempts,
        on_error=plan.on_error,
        store_root=str(plan.store.root) if plan.store is not None else None,
    )
    expected = {task.task_id for task in plan.tasks}
    for task in plan.tasks:
        queue.enqueue(task.to_payload())
    workers = [_spawn_worker(root, k, poll) for k in range(options.workers)]
    done: Set[str] = set()
    deadline = time.time() + options.timeout if options.timeout else None
    merged_any = False
    try:
        while done != expected:
            if deadline is not None and time.time() > deadline:
                raise SimulationError(
                    f"queue execution timed out after {options.timeout}s "
                    f"({len(done)}/{len(expected)} tasks done; queue at {root})"
                )
            dead = {proc.pid for proc, _log in workers if proc.poll() is not None}
            queue.requeue_expired(dead_pids=dead or None)
            progressed = _collect_outcomes(queue, plane, done)
            merged_any = merged_any or progressed
            if done == expected:
                break
            if workers and len(dead) == len(workers):
                # Every worker died with work outstanding: finish in-process.
                run_worker(
                    root,
                    worker_id=f"parent-{os.getpid()}",
                    poll_interval=min(poll, 0.05),
                )
                progressed = _collect_outcomes(queue, plane, done)
                merged_any = merged_any or progressed
                if done != expected:
                    missing = sorted(expected - done)
                    raise SimulationError(
                        f"queue at {root} lost track of tasks {missing}; "
                        "no result, failure, or pending file remains"
                    )
                break
            if not progressed:
                time.sleep(min(poll, 0.1))
    finally:
        queue.request_stop()
        for proc, _log in workers:
            if proc.poll() is None:
                proc.terminate()
        for proc, log in workers:
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - last resort
                proc.kill()
                proc.wait(timeout=5.0)
            log.close()
        if merged_any and plan.store is not None:
            # Workers wrote entries under their own index snapshots; rebuild
            # the parent's index from the entry files (entries authoritative).
            plan.store.reindex()
        if own_dir:
            shutil.rmtree(root, ignore_errors=True)
