"""Scheduler backends: where an :class:`~repro.exec.plan.ExecutionPlan` runs.

:data:`SCHEDULER_BACKENDS` is a :class:`~repro.experiments.registry.Registry`
(typo'd names get "did you mean ...?" suggestions) mapping a backend name to
a plan executor:

``"serial"``
    In-process execution, one task group at a time.  The only backend that
    honours observers; sequential semantics are the reference every other
    backend must match bit-identically.
``"pool"``
    The established process-pool fan-out
    (:func:`repro.simulation.parallel._execute_batch`), re-seated on the
    planner: groups are flattened to per-spec units in group-consecutive
    order so chunked dispatch keeps per-worker trace caches warm, and the
    plan's pre-solved SO-BMA rounds ship to every worker via the pool
    initializer.
``"queue"``
    The file-based pull scheduler (:mod:`repro.exec.queue`): tasks are JSON
    files claimed via atomic renames, independently launched
    ``repro worker`` processes drain the queue, and expired leases requeue
    with bounded attempts.

:func:`execute_plan` runs a plan on a backend and reassembles results in
input order — the **results plane**: every computed result is stamped with
``extra["scheduler_backend"]`` / ``extra["attempts"]`` provenance and
written through the plan's run store (parent-owned writes for serial/pool;
queue workers write their own results and the parent merges).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Union

from ..errors import SimulationError, WorkerExecutionError
from ..experiments.registry import Registry
from ..simulation import parallel as parallel_mod
from ..simulation.results import RunResult
from .plan import ExecutionPlan, RunFailure

__all__ = [
    "SCHEDULER_BACKENDS",
    "ENV_WORKERS",
    "ExecOptions",
    "execute_plan",
    "resolve_backend_name",
    "resolve_worker_count",
]

#: Environment variable consulted when no explicit worker count is given
#: (mirrors ``REPRO_RUN_STORE``/``REPRO_RNG_MODE``; explicit argument wins).
ENV_WORKERS = parallel_mod.ENV_WORKERS

#: Name -> plan-executor registry for scheduler backends.
SCHEDULER_BACKENDS: Registry = Registry("scheduler backend")

#: Default attempt budget per task on the queue backend (serial/pool default
#: to a single attempt: in-process retries of a deterministic failure would
#: only repeat it, while queue retries also cover worker crashes).
DEFAULT_QUEUE_ATTEMPTS = 3


def resolve_worker_count(
    n_workers: Optional[int], fallback: Optional[int] = 1
) -> Optional[int]:
    """Effective worker count: explicit argument, else ``REPRO_WORKERS``, else fallback."""
    if n_workers is not None:
        if n_workers < 1:
            raise SimulationError(f"n_workers must be >= 1, got {n_workers}")
        return int(n_workers)
    env = parallel_mod._env_worker_count()
    if env is not None:
        return env
    return fallback


def resolve_backend_name(backend: Optional[str], n_workers: Optional[int]) -> str:
    """Canonical backend name; ``None`` picks serial/pool from the worker count."""
    if backend is None:
        return "serial" if (n_workers is None or n_workers <= 1) else "pool"
    SCHEDULER_BACKENDS.resolve(backend)  # raises with suggestions on unknown names
    return SCHEDULER_BACKENDS.canonical(backend)


@dataclass(frozen=True)
class ExecOptions:
    """Execution knobs a backend may consult (plan-independent policy)."""

    workers: int = 1
    chunksize: Optional[int] = None
    max_attempts: int = 1
    queue_dir: Optional[str] = None
    lease_seconds: Optional[float] = None
    poll_interval: Optional[float] = None
    timeout: Optional[float] = None


class _ResultsPlane:
    """Collects outcomes, stamps provenance, and owns parent-side store writes."""

    def __init__(self, plan: ExecutionPlan, backend: str):
        self.plan = plan
        self.backend = backend
        self.results: Dict[int, RunResult] = dict(plan.cached)
        self.failures: Dict[int, RunFailure] = {}

    def _stamp(self, result: RunResult, attempts: int) -> RunResult:
        return replace(
            result,
            extra={
                **result.extra,
                "scheduler_backend": self.backend,
                "attempts": int(attempts),
            },
        )

    def success(self, index: int, result: RunResult, attempts: int) -> None:
        """A result computed under this parent: stamp, store, record."""
        result = self._stamp(result, attempts)
        fp = self.plan.fingerprints[index]
        if fp is not None and self.plan.store is not None:
            self.plan.store.put(result, fingerprint=fp)
        self.results[index] = result

    def merge(self, index: int, result: RunResult, attempts: int) -> None:
        """A worker-owned result (queue): the worker already stored it; the
        parent only fills entries the worker's store never saw (e.g. a
        store-less queue dir) — identical content either way."""
        result = self._stamp(result, attempts)
        fp = self.plan.fingerprints[index]
        if (
            fp is not None
            and self.plan.store is not None
            and not self.plan.store.entry_path(fp).exists()
        ):
            self.plan.store.put(result, fingerprint=fp)
        self.results[index] = result

    def failure(
        self, index: int, message: str, error_type: str, attempts: int
    ) -> None:
        if self.plan.on_error == "raise":
            raise WorkerExecutionError(message)
        self.failures[index] = RunFailure(
            index=index,
            spec=self.plan.specs[index].to_dict(),
            error_type=error_type,
            message=message,
            attempts=int(attempts),
            scheduler_backend=self.backend,
        )

    def deliver(self, index: int, outcome, attempts: int, merge: bool = False) -> None:
        """Route one backend outcome (result or failure record) by type."""
        if isinstance(outcome, RunResult):
            (self.merge if merge else self.success)(index, outcome, attempts)
        else:
            self.failure(index, outcome.message, outcome.error_type, attempts)

    def assemble(self) -> List[Union[RunResult, RunFailure]]:
        """Results in input order, duplicates aliased to their primary."""
        for i, primary in self.plan.aliases.items():
            if primary in self.results:
                self.results[i] = replace(
                    self.results[primary], spec=self.plan.specs[i].to_dict()
                )
            elif primary in self.failures:
                self.failures[i] = replace(
                    self.failures[primary],
                    index=i,
                    spec=self.plan.specs[i].to_dict(),
                )
        out: List[Union[RunResult, RunFailure]] = []
        for i in range(self.plan.n_specs):
            if i in self.results:
                out.append(self.results[i])
            elif i in self.failures:
                out.append(self.failures[i])
            else:  # pragma: no cover - a backend not covering the plan is a bug
                raise SimulationError(f"scheduler produced no outcome for spec #{i}")
        return out


def _import_solver_payloads(payloads: Sequence[dict]) -> None:
    """Seed this process's solver memo from a task's pre-solved rounds."""
    if not payloads:
        return
    from ..matching.static_solver import import_solver_rounds

    for payload in payloads:
        try:
            import_solver_rounds(payload)
        except Exception:  # pragma: no cover - pre-solve is best-effort
            continue


def _needs_rich_path(plan: ExecutionPlan) -> bool:
    """Whether serial execution must go through the task-group runtime.

    Observers only exist there, and streaming specs must keep their
    bounded-memory replay (lockstep tee for shared-stream groups, lazy
    stream for solo specs) instead of the flat path's materialized traces.
    """
    if plan.observers:
        return True
    return any(s.traffic.streaming for task in plan.tasks for s in task.specs)


@SCHEDULER_BACKENDS.register("serial")
def _run_serial(plan: ExecutionPlan, options: ExecOptions, plane: _ResultsPlane) -> None:
    """In-process execution, task group by task group."""
    if not plan.tasks:
        return
    collect = plan.on_error == "collect"
    for task in plan.tasks:
        _import_solver_payloads(task.solver)
    if _needs_rich_path(plan):
        from . import runtime

        for task in plan.tasks:
            outcomes = runtime.run_task_specs(
                task.specs,
                observers=plan.observers,
                collect=collect,
                max_attempts=options.max_attempts,
            )
            for index, (outcome, attempts) in zip(task.indices, outcomes):
                plane.deliver(index, outcome, attempts)
    else:
        # The common case funnels through the legacy dispatch seam
        # (`_execute_batch` with workers=1): identical per-spec execution,
        # shared traces served by the per-process LRU the planner pre-seeded.
        indices = [i for task in plan.tasks for i in task.indices]
        parallel_mod._set_exec_context(collect=collect, max_attempts=options.max_attempts)
        try:
            outcomes = parallel_mod._execute_batch(
                [plan.specs[i] for i in indices], 1, options.chunksize
            )
        finally:
            parallel_mod._reset_exec_context()
        for index, (outcome, attempts) in zip(indices, outcomes):
            plane.deliver(index, outcome, attempts)


@SCHEDULER_BACKENDS.register("pool")
def _run_pool(plan: ExecutionPlan, options: ExecOptions, plane: _ResultsPlane) -> None:
    """Process-pool fan-out over per-spec units, group-consecutive order.

    Observers are not shipped to pool workers (entry points route
    observer-carrying runs to the serial backend).  Lockstep stream groups
    flatten to independent per-spec units here — each worker materializes
    its trace from the spec, which is bit-identical by the sharding
    contract.
    """
    if not plan.tasks:
        return
    indices = [i for task in plan.tasks for i in task.indices]
    payloads = [dict(p) for task in plan.tasks for p in task.solver]
    parallel_mod._set_exec_context(
        solver_rounds=payloads,
        collect=plan.on_error == "collect",
        max_attempts=options.max_attempts,
    )
    try:
        outcomes = parallel_mod._execute_batch(
            [plan.specs[i] for i in indices], options.workers, options.chunksize
        )
    finally:
        parallel_mod._reset_exec_context()
    for index, (outcome, attempts) in zip(indices, outcomes):
        plane.deliver(index, outcome, attempts)


def execute_plan(
    plan: ExecutionPlan,
    backend: Optional[str] = None,
    n_workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    max_attempts: Optional[int] = None,
    queue_dir: Optional[str] = None,
    lease_seconds: Optional[float] = None,
    poll_interval: Optional[float] = None,
    timeout: Optional[float] = None,
) -> List[Union[RunResult, RunFailure]]:
    """Execute a plan on a scheduler backend; results in input order.

    ``backend=None`` picks ``"serial"`` for one worker and ``"pool"``
    otherwise (after ``REPRO_WORKERS`` resolution).  Store hits from the
    plan are returned as-is; computed results are stamped with
    ``extra["scheduler_backend"]``/``["attempts"]`` and written through the
    plan's store.  Under ``on_error="collect"`` failed specs yield
    :class:`~repro.exec.plan.RunFailure` records in their slots; under
    ``"raise"`` the first failure raises
    :class:`~repro.errors.WorkerExecutionError` (with the failing spec's
    JSON in the message).
    """
    workers = resolve_worker_count(n_workers, fallback=None)
    name = resolve_backend_name(backend, workers)
    if workers is None:
        workers = 1 if name == "serial" else parallel_mod.default_worker_count()
    if max_attempts is None:
        max_attempts = DEFAULT_QUEUE_ATTEMPTS if name == "queue" else 1
    options = ExecOptions(
        workers=workers,
        chunksize=chunksize,
        max_attempts=max(1, max_attempts),
        queue_dir=queue_dir,
        lease_seconds=lease_seconds,
        poll_interval=poll_interval,
        timeout=timeout,
    )
    plane = _ResultsPlane(plan, name)
    run_backend = SCHEDULER_BACKENDS.resolve(name)
    run_backend(plan, options, plane)
    return plane.assemble()


def _register_queue_backend() -> None:
    """Register the queue backend lazily to keep this module import-light."""
    from .queue import run_queue_backend

    SCHEDULER_BACKENDS.register("queue")(run_queue_backend)


_register_queue_backend()
