"""Task-group execution shared by the serial and queue scheduler backends.

A :class:`~repro.exec.plan.PlanTask` groups specs that share a workload and
a seed; :func:`run_task_specs` executes such a group in one process:

* a multi-spec group of streaming specs replays **one** shared stream
  through every algorithm in lockstep (:func:`run_shared_stream`, the
  engine behind the sequential ``compare_on_shared_trace``);
* otherwise the shared trace is materialized once and each spec replays it
  (bit-identical to the streamed path and to fully independent execution,
  since the trace depends only on the traffic spec and the spawned seed).

Failures follow the :class:`~repro.errors.WorkerExecutionError` contract —
the failing spec's JSON travels in the message — and ``collect`` turns
per-spec failures into :class:`TaskError` records instead of aborting the
rest of the group.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple, Union

from ..errors import WorkerExecutionError
from ..experiments.observers import SimulationObserver
from ..experiments.specs import ExperimentSpec
from ..simulation.engine import StreamingSimulation, run_simulation
from ..simulation.parallel import _describe_spec
from ..simulation.results import RunResult
from ..simulation.runner import execute_experiment_spec
from ..traffic.base import Trace
from ..traffic.stream import TraceStream

__all__ = ["TaskError", "run_task_specs", "run_shared_stream"]


@dataclass(frozen=True)
class TaskError:
    """One spec's terminal failure inside a task group (picklable/JSON-safe)."""

    message: str
    error_type: str

    def to_dict(self) -> dict:
        return {"message": self.message, "error_type": self.error_type}


Outcome = Union[RunResult, TaskError]


def _wrap_failure(exc: Exception, spec: ExperimentSpec) -> WorkerExecutionError:
    """The pool-worker error contract: error plus the failing spec's JSON."""
    if isinstance(exc, WorkerExecutionError):
        return exc
    return WorkerExecutionError(
        f"worker failed with {type(exc).__name__}: {exc}; "
        f"failing spec: {_describe_spec(spec)}"
    )


def run_task_specs(
    specs: Sequence[ExperimentSpec],
    observers: Sequence[SimulationObserver] = (),
    collect: bool = False,
    max_attempts: int = 1,
) -> List[Tuple[Outcome, int]]:
    """Execute one task group; returns ``(outcome, attempts)`` per spec in order.

    With ``collect=False`` the first terminal failure raises
    :class:`WorkerExecutionError`; with ``collect=True`` it becomes a
    :class:`TaskError` in that spec's slot and the rest of the group still
    runs.  ``max_attempts`` retries a failing spec (or, for a lockstep
    streamed group, the whole group) before the failure is terminal.
    """
    specs = list(specs)
    observers = tuple(observers)
    max_attempts = max(1, max_attempts)
    if len(specs) > 1 and all(s.traffic.streaming for s in specs):
        attempts = 0
        while True:
            attempts += 1
            try:
                results = run_shared_stream(specs, observers)
                return [(result, attempts) for result in results]
            except Exception as exc:  # noqa: BLE001 - re-raised with spec context
                if attempts < max_attempts:
                    continue
                if not collect:
                    raise _wrap_failure(exc, specs[0]) from exc
                return [
                    (
                        TaskError(
                            message=str(_wrap_failure(exc, spec)),
                            error_type=type(exc).__name__,
                        ),
                        attempts,
                    )
                    for spec in specs
                ]

    outcomes: List[Tuple[Outcome, int]] = []
    shared_trace: Optional[Trace] = None
    for spec in specs:
        attempts = 0
        while True:
            attempts += 1
            try:
                if spec.traffic.streaming and len(specs) == 1:
                    # A solo streamed spec keeps its bounded-memory path; the
                    # plan owns the store, so force a cold execution here.
                    result = execute_experiment_spec(
                        spec, observers=observers, store=False
                    )
                else:
                    if shared_trace is None:
                        shared_trace = spec.build_trace()
                    result = execute_experiment_spec(
                        spec, trace=shared_trace, observers=observers
                    )
                outcomes.append((result, attempts))
                break
            except Exception as exc:  # noqa: BLE001 - re-raised with spec context
                if attempts < max_attempts:
                    continue
                failure = _wrap_failure(exc, spec)
                if not collect:
                    raise failure from exc
                outcomes.append(
                    (
                        TaskError(message=str(failure), error_type=type(exc).__name__),
                        attempts,
                    )
                )
                break
    return outcomes


def run_shared_stream(
    seeded: Sequence[ExperimentSpec],
    observers: Sequence[SimulationObserver] = (),
) -> List[RunResult]:
    """Replay one shared workload stream through several algorithms at once.

    The stream is generated exactly once: :meth:`TraceStream.tee` fans the
    segments out with bounded lookahead and the per-algorithm streaming
    drivers are fed in lockstep (one segment each per round), so peak memory
    stays bounded by the chunk size.  Algorithms that need the whole trace
    up front (``requires_full_trace``) share a single materialized copy
    assembled from one extra tee branch.  Results are bit-identical to
    replaying a materialized shared trace.
    """
    observers = tuple(observers)
    stream = seeded[0].build_stream()
    algorithms = []
    configs = []
    for spec in seeded:
        topology = spec.build_topology(stream)
        algorithms.append(spec.build_algorithm(topology))
        configs.append(replace(spec.simulation, seed=spec.seed))
    online = [i for i, a in enumerate(algorithms) if not a.requires_full_trace]
    offline = [i for i, a in enumerate(algorithms) if a.requires_full_trace]
    children = stream.tee(len(online) + (1 if offline else 0))
    drivers = {
        i: StreamingSimulation(
            algorithms[i],
            stream.metadata,
            config=configs[i],
            observers=observers,
            n_requests=stream.n_requests,
            source=children[k],
        )
        for k, i in enumerate(online)
    }
    collected: List[Trace] = []
    iterators = [iter(child) for child in children]
    for segments in zip(*iterators):
        for k, i in enumerate(online):
            drivers[i].feed(segments[k])
        if offline:
            collected.append(segments[-1])
    results: List[Optional[RunResult]] = [None] * len(seeded)
    for i in online:
        results[i] = replace(drivers[i].finish(), spec=seeded[i].to_dict())
    if offline:
        full = TraceStream(collected, stream.metadata).materialize()
        for i in offline:
            result = run_simulation(
                algorithms[i], full, configs[i], observers=observers
            )
            results[i] = replace(result, spec=seeded[i].to_dict())
    return results  # type: ignore[return-value]  # every slot is filled above
