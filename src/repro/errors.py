"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by the library derive from
:class:`ReproError`, so callers can catch library failures without catching
programming errors such as :class:`TypeError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "TopologyError",
    "TrafficError",
    "MatchingError",
    "DegreeConstraintError",
    "PagingError",
    "SimulationError",
    "SolverError",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(ReproError):
    """An experiment or algorithm configuration is invalid."""


class TopologyError(ReproError):
    """A topology cannot be constructed or queried as requested."""


class TrafficError(ReproError):
    """A traffic trace cannot be generated, parsed, or validated."""


class MatchingError(ReproError):
    """A b-matching operation violates the structure's contract."""


class DegreeConstraintError(MatchingError):
    """Adding an edge would exceed the per-node degree bound ``b``."""


class PagingError(ReproError):
    """A paging algorithm was driven incorrectly (e.g. invalid cache size)."""


class SimulationError(ReproError):
    """The simulation engine was misused or reached an inconsistent state."""


class WorkerExecutionError(SimulationError):
    """A (possibly remote) worker failed while executing one run spec.

    The message embeds the failing spec's JSON (algorithm/topology/seed and
    all other parameters) plus the original error, because the original
    exception's traceback and cause do not survive the trip back across a
    process boundary — in a 500-spec sweep the message must identify the
    culprit on its own.
    """


class SolverError(ReproError):
    """A static matching solver failed or was given unsupported input."""
