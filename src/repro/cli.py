"""Command-line interface.

Lets users drive the common workflows without writing Python::

    python -m repro simulate --workload facebook-database --algorithm rbma --b 12
    python -m repro compare  --workload microsoft --b 6 --algorithms rbma bma so-bma
    python -m repro generate-trace --workload facebook-hadoop --requests 50000 --out trace.csv
    python -m repro analyze-trace trace.csv
    python -m repro list

All subcommands print plain-text tables (the same renderers the benchmark
harness uses) and exit non-zero on configuration errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .analysis import format_comparison_table, format_series_table
from .analysis.plotting import plot_results
from .core import available_algorithms
from .errors import ReproError
from .simulation import ExperimentRunner, RunSpec
from .topology import available_topologies
from .traffic import (
    available_workloads,
    compute_trace_statistics,
    load_trace_csv,
    make_workload,
    save_trace_csv,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Online b-matching for reconfigurable optical datacenters "
        "(reproduction of Bienkowski et al., SC 2023)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workload", default="facebook-database",
                       help="workload name (see `repro list`)")
        p.add_argument("--nodes", type=int, default=100, help="number of racks")
        p.add_argument("--requests", type=int, default=20_000, help="number of requests")
        p.add_argument("--topology", default="fat-tree", help="fixed-network topology")
        p.add_argument("--b", type=int, default=12, help="matching degree bound b")
        p.add_argument("--alpha", type=float, default=15.0, help="reconfiguration cost alpha")
        p.add_argument("--seed", type=int, default=0, help="base random seed")
        p.add_argument("--repetitions", type=int, default=1, help="repetitions to average")
        p.add_argument("--checkpoints", type=int, default=10, help="checkpoints to record")

    p_sim = sub.add_parser("simulate", help="run one algorithm on one workload")
    add_common(p_sim)
    p_sim.add_argument("--algorithm", default="rbma", help="algorithm name (see `repro list`)")

    p_cmp = sub.add_parser("compare", help="run several algorithms on the same workload")
    add_common(p_cmp)
    p_cmp.add_argument("--algorithms", nargs="+",
                       default=["rbma", "bma", "so-bma", "oblivious"],
                       help="algorithm names to compare")
    p_cmp.add_argument("--plot", action="store_true", help="render an ASCII chart of the series")

    p_gen = sub.add_parser("generate-trace", help="generate a workload and save it as CSV")
    p_gen.add_argument("--workload", default="facebook-database")
    p_gen.add_argument("--nodes", type=int, default=100)
    p_gen.add_argument("--requests", type=int, default=20_000)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--out", required=True, help="output CSV path")

    p_ana = sub.add_parser("analyze-trace", help="print structure statistics of a CSV trace")
    p_ana.add_argument("path", help="trace CSV written by generate-trace")

    sub.add_parser("list", help="list available algorithms, workloads, and topologies")
    return parser


def _run_specs(args: argparse.Namespace, algorithms: Sequence[str]):
    specs = [
        RunSpec(
            algorithm=algorithm,
            workload=args.workload,
            b=args.b,
            alpha=args.alpha,
            topology=args.topology,
            workload_kwargs={"n_nodes": args.nodes, "n_requests": args.requests},
            checkpoints=args.checkpoints,
        )
        for algorithm in algorithms
    ]
    runner = ExperimentRunner(repetitions=args.repetitions, base_seed=args.seed)
    return runner.compare_on_shared_trace(specs)


def _cmd_simulate(args: argparse.Namespace) -> int:
    results = _run_specs(args, [args.algorithm])
    print(format_series_table(results, metric="routing_cost",
                              title=f"{args.algorithm} on {args.workload}"))
    result = next(iter(results.values()))
    print()
    print(f"final routing cost:        {result.routing_cost_mean:,.0f}")
    print(f"final execution time [s]:  {result.elapsed_seconds_mean:.3f}")
    print(f"matched request share:     {result.matched_fraction_mean:.1%}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    results = _run_specs(args, args.algorithms)
    oblivious_label = next((label for label in results if label.startswith("oblivious")), None)
    print(format_comparison_table(results, oblivious_label=oblivious_label))
    if args.plot:
        print()
        print(plot_results(results, metric="routing_cost",
                           title=f"routing cost on {args.workload}"))
    return 0


def _cmd_generate_trace(args: argparse.Namespace) -> int:
    trace = make_workload(args.workload, n_nodes=args.nodes, n_requests=args.requests,
                          seed=args.seed)
    save_trace_csv(trace, args.out)
    print(f"wrote {len(trace):,} requests over {trace.n_nodes} racks to {args.out}")
    return 0


def _cmd_analyze_trace(args: argparse.Namespace) -> int:
    trace = load_trace_csv(args.path)
    stats = compute_trace_statistics(trace)
    print(f"trace {trace.name!r}: {stats.n_requests:,} requests, {stats.n_nodes} racks")
    for key, value in stats.to_dict().items():
        if key in ("n_requests", "n_nodes"):
            continue
        print(f"  {key:<26} {value:.4g}")
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    print("algorithms: " + ", ".join(available_algorithms()))
    print("workloads:  " + ", ".join(available_workloads()))
    print("topologies: " + ", ".join(available_topologies()))
    return 0


_COMMANDS = {
    "simulate": _cmd_simulate,
    "compare": _cmd_compare,
    "generate-trace": _cmd_generate_trace,
    "analyze-trace": _cmd_analyze_trace,
    "list": _cmd_list,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
