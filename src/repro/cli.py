"""Command-line interface.

Lets users drive the common workflows without writing Python::

    python -m repro run experiment.json --out results.json
    python -m repro simulate --workload facebook-database --algorithm rbma --b 12
    python -m repro compare  --workload microsoft --b 6 --algorithms rbma bma so-bma
    python -m repro sweep    --workload zipf --b-values 2 4 8 --algorithms rbma bma
    python -m repro generate-trace --workload facebook-hadoop --requests 50000 --out trace.csv
    python -m repro analyze-trace trace.csv
    python -m repro list
    python -m repro runs list --store results/.repro-store

Every simulation path is driven by a declarative
:class:`~repro.experiments.specs.ExperimentSpec`; ``run`` executes one
straight from a JSON file.  All subcommands print plain-text tables (the same
renderers the benchmark harness uses) and exit non-zero on configuration
errors.  Invoked without a subcommand, the CLI prints usage and exits 0.

The simulation commands take ``--store [DIR]`` / ``--no-store`` to control
the persistent run store (:mod:`repro.store`): with a store, re-running an
unchanged command serves every (spec, seed) cell from disk instead of
simulating.  ``repro runs list|show|stats|gc`` inspects and maintains a
store.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

from ._version import __version__
from .analysis import format_comparison_table, format_series_table
from .analysis.plotting import plot_results
from .config import SweepConfig
from .core import available_algorithms
from .errors import ConfigurationError, ReproError
from .experiments import ExperimentSpec, ProgressObserver
from .paging import available_paging_policies
from .simulation import (
    ExperimentRunner,
    aggregate_runs,
    execute_experiment_spec,
    run_specs_parallel,
    run_sweep,
)
from .store import (
    group_statistics,
    resolve_store,
    spec_statistics,
    store_statistics,
)
from .topology import available_topologies
from .traffic import (
    available_workloads,
    compute_trace_statistics,
    load_trace_csv,
    make_workload,
    save_trace_csv,
    stream_trace_csv,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Online b-matching for reconfigurable optical datacenters "
        "(reproduction of Bienkowski et al., SC 2023)",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command")

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workload", default="facebook-database",
                       help="workload name (see `repro list`)")
        p.add_argument("--nodes", type=int, default=100, help="number of racks")
        p.add_argument("--requests", type=int, default=20_000, help="number of requests")
        p.add_argument("--topology", default="fat-tree", help="fixed-network topology")
        p.add_argument("--alpha", type=float, default=15.0, help="reconfiguration cost alpha")
        p.add_argument("--seed", type=int, default=0, help="base random seed")
        p.add_argument("--repetitions", type=int, default=1, help="repetitions to average")
        p.add_argument("--checkpoints", type=int, default=10, help="checkpoints to record")
        p.add_argument("--solver-backend", default=None,
                       help="static blossom kernel for SO-BMA: array (default), "
                            "nx, or numba")
        p.add_argument("--rng-mode", default=None,
                       help="randomness kernel for randomized algorithms: "
                            "counter (default; keyed Philox draws) or "
                            "stateful (legacy sequential generator)")
        add_stream_flags(p)
        add_store_flags(p)
        add_exec_flags(p)

    def add_exec_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workers", type=int, default=None, metavar="N",
                       help="worker count (default: the REPRO_WORKERS "
                            "environment variable, else 1)")
        p.add_argument("--backend", default=None,
                       choices=["serial", "pool", "queue"],
                       help="scheduler backend (default: serial for one "
                            "worker, pool otherwise)")
        p.add_argument("--queue-dir", default=None, metavar="DIR",
                       help="work-queue directory for --backend queue "
                            "(temporary when omitted; point independent "
                            "`repro worker DIR` processes at it to help)")

    def add_stream_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--stream", action="store_true",
                       help="replay the workload as a lazy trace stream "
                            "(memory bounded by the chunk size; results are "
                            "bit-identical to materialized replay)")
        p.add_argument("--chunk-size", type=int, default=None, metavar="N",
                       help="requests per streamed segment (default 8192; "
                            "implies --stream)")

    def add_store_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--store", nargs="?", const=".repro-store", default=None,
                       metavar="DIR",
                       help="run-store directory: serve unchanged (spec, seed) runs "
                            "from disk and write new ones back (bare --store uses "
                            "./.repro-store; default: the REPRO_RUN_STORE "
                            "environment variable)")
        p.add_argument("--no-store", action="store_true",
                       help="force cold runs even if REPRO_RUN_STORE is set")

    p_run = sub.add_parser("run", help="execute an experiment described by a JSON spec file")
    p_run.add_argument("spec", help="path to an ExperimentSpec JSON file")
    p_run.add_argument("--repeats", type=int, default=None,
                       help="override the spec's repeat count")
    p_run.add_argument("--seed", type=int, default=None, help="override the spec's base seed")
    p_run.add_argument("--progress", action="store_true",
                       help="print per-checkpoint progress (observer-based)")
    p_run.add_argument("--out", default=None,
                       help="write the spec, per-run results, and aggregate as JSON")
    add_stream_flags(p_run)
    add_store_flags(p_run)
    add_exec_flags(p_run)

    p_sim = sub.add_parser("simulate", help="run one algorithm on one workload")
    add_common(p_sim)
    p_sim.add_argument("--b", type=int, default=12, help="matching degree bound b")
    p_sim.add_argument("--algorithm", default="rbma", help="algorithm name (see `repro list`)")

    p_cmp = sub.add_parser("compare", help="run several algorithms on the same workload")
    add_common(p_cmp)
    p_cmp.add_argument("--b", type=int, default=12, help="matching degree bound b")
    p_cmp.add_argument("--algorithms", nargs="+",
                       default=["rbma", "bma", "so-bma", "oblivious"],
                       help="algorithm names to compare")
    p_cmp.add_argument("--plot", action="store_true", help="render an ASCII chart of the series")

    p_swp = sub.add_parser("sweep", help="cross-product sweep over algorithms, b, and alpha")
    add_common(p_swp)
    p_swp.add_argument("--b-values", type=int, nargs="+", default=[6, 12, 18],
                       help="degree bounds to sweep over")
    p_swp.add_argument("--alpha-values", type=float, nargs="+", default=None,
                       help="reconfiguration costs to sweep over (default: --alpha)")
    p_swp.add_argument("--algorithms", nargs="+", default=["rbma", "bma", "oblivious"],
                       help="algorithm names to sweep")

    p_gen = sub.add_parser("generate-trace", help="generate a workload and save it as CSV")
    p_gen.add_argument("--workload", default="facebook-database")
    p_gen.add_argument("--nodes", type=int, default=100)
    p_gen.add_argument("--requests", type=int, default=20_000)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--out", required=True, help="output CSV path")

    p_ana = sub.add_parser("analyze-trace", help="print structure statistics of a CSV trace")
    p_ana.add_argument("path", help="trace CSV written by generate-trace")
    add_stream_flags(p_ana)

    sub.add_parser("list", help="list available algorithms, workloads, topologies, "
                                "and paging policies")

    p_wrk = sub.add_parser("worker", help="drain tasks from a work-queue directory "
                                          "(see --backend queue)")
    p_wrk.add_argument("queue_dir", help="queue directory created by a "
                                         "--backend queue run")
    p_wrk.add_argument("--worker-id", default=None,
                       help="stable worker name (default: worker-<pid>)")
    p_wrk.add_argument("--poll-interval", type=float, default=None, metavar="SECONDS",
                       help="sleep between claim attempts when the queue is busy")
    p_wrk.add_argument("--max-tasks", type=int, default=None, metavar="N",
                       help="exit after completing N tasks")
    p_wrk.add_argument("--keep-alive", action="store_true",
                       help="keep polling after the queue drains (until a stop "
                            "is requested) instead of exiting")

    p_runs = sub.add_parser("runs", help="inspect and maintain the persistent run store")
    p_runs.add_argument("--store", default=None, metavar="DIR",
                        help="run-store directory (default: the REPRO_RUN_STORE "
                             "environment variable)")
    runs_sub = p_runs.add_subparsers(dest="runs_command")
    r_list = runs_sub.add_parser("list", help="list stored runs, newest first")
    r_list.add_argument("--limit", type=int, default=20,
                        help="show at most this many entries (0 = all)")
    r_show = runs_sub.add_parser("show", help="show one stored run by fingerprint prefix")
    r_show.add_argument("fingerprint", help="full fingerprint or unique prefix")
    r_stats = runs_sub.add_parser(
        "stats", help="cross-run statistics: recomputation history and regression flags")
    r_stats.add_argument("--group", action="store_true",
                         help="group entries differing only in seed (cross-seed "
                              "error bars) instead of per-fingerprint history")
    r_gc = runs_sub.add_parser("gc", help="expire stored runs by age and/or count")
    r_gc.add_argument("--max-entries", type=int, default=None,
                      help="keep only the newest N entries")
    r_gc.add_argument("--max-age-days", type=float, default=None,
                      help="delete entries last written more than this many days ago")
    r_gc.add_argument("--dry-run", action="store_true",
                      help="report what would be deleted without touching disk")
    r_exp = runs_sub.add_parser(
        "export", help="pack every stored run into a portable tarball")
    r_exp.add_argument("tarball", help="output .tar.gz path")
    r_imp = runs_sub.add_parser(
        "import", help="merge a tarball exported elsewhere into this store "
                       "(identical-or-error on fingerprint conflicts)")
    r_imp.add_argument("tarball", help="tarball written by `repro runs export`")

    p_doc = sub.add_parser(
        "doctor", help="audit a run store and/or a queue directory for crash "
                       "wreckage (stale tmp files, corrupt entries, orphaned "
                       "leases) and optionally repair it")
    p_doc.add_argument("--store", default=None, metavar="DIR",
                       help="run-store directory to audit (default: the "
                            "REPRO_RUN_STORE environment variable)")
    p_doc.add_argument("--queue", default=None, metavar="DIR",
                       help="work-queue directory to audit")
    p_doc.add_argument("--fix", action="store_true",
                       help="apply the safe repairs (reap stale tmp files, "
                            "quarantine corrupt entries, rebuild the index, "
                            "drop orphaned leases, requeue expired claims)")
    p_doc.add_argument("--json", action="store_true", dest="as_json",
                       help="emit the report as JSON instead of text")
    return parser


def _streaming_args(args: argparse.Namespace):
    """The (streaming, chunk_size) pair from ``--stream``/``--chunk-size``.

    An explicit ``--chunk-size`` implies streaming.
    """
    chunk_size = getattr(args, "chunk_size", None)
    streaming = bool(getattr(args, "stream", False)) or chunk_size is not None
    return streaming, chunk_size


def _build_specs(args: argparse.Namespace, algorithms: Sequence[str]):
    streaming, chunk_size = _streaming_args(args)
    return [
        ExperimentSpec(
            algorithm={"name": algorithm, "b": args.b, "alpha": args.alpha,
                       "solver_backend": args.solver_backend,
                       "rng_mode": args.rng_mode},
            traffic={"name": args.workload,
                     "params": {"n_nodes": args.nodes, "n_requests": args.requests},
                     "streaming": streaming, "chunk_size": chunk_size},
            topology={"name": args.topology},
            simulation={"checkpoints": args.checkpoints},
        )
        for algorithm in algorithms
    ]


def _store_arg(args: argparse.Namespace):
    """The ``store=`` policy encoded by ``--store``/``--no-store``.

    ``--no-store`` wins (``False`` forces cold runs); an explicit ``--store
    DIR`` names the store; otherwise ``None`` defers to ``REPRO_RUN_STORE``.
    """
    if getattr(args, "no_store", False):
        return False
    return args.store


def _run_specs(args: argparse.Namespace, algorithms: Sequence[str]):
    runner = ExperimentRunner(repetitions=args.repetitions, base_seed=args.seed,
                              store=_store_arg(args))
    return runner.compare_on_shared_trace(
        _build_specs(args, algorithms),
        n_workers=args.workers,
        backend=args.backend,
        queue_dir=args.queue_dir,
    )


def _load_spec(path: str) -> ExperimentSpec:
    """Load a spec file, mapping every parse failure onto a one-line CLI error.

    ``ExperimentSpec.load_json`` raises :class:`ConfigurationError` for
    malformed JSON and unknown keys, but a spec whose *values* have the
    wrong shape (``"seed": "abc"``, an algorithm given as a bare string, a
    list where an object belongs) used to surface as a raw
    ``TypeError``/``ValueError`` traceback.  Wrap those into the library's
    error hierarchy so ``main`` prints its usual actionable one-liner and
    exits non-zero instead.
    """
    try:
        return ExperimentSpec.load_json(path)
    except (ReproError, OSError):
        raise
    except (TypeError, ValueError, KeyError, AttributeError) as exc:
        raise ConfigurationError(
            f"spec file {path!r} does not describe a valid experiment "
            f"({type(exc).__name__}: {exc}); compare it against "
            "ExperimentSpec.to_json() output or docs in repro.experiments.specs"
        ) from exc


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _load_spec(args.spec)
    if args.repeats is not None:
        spec = spec.with_seed(spec.seed, repeats=args.repeats)
    if args.seed is not None:
        spec = spec.with_seed(args.seed, repeats=spec.repeats)
    streaming, chunk_size = _streaming_args(args)
    if streaming:
        spec = spec.with_streaming(chunk_size=chunk_size)
    observers = (ProgressObserver(),) if args.progress else ()
    singles = [spec.with_seed(seed) for seed in spec.repetition_seeds()]
    # Resolve the store once so the hit/miss summary reads one instance's
    # counters; None (resolved from a disabled/absent env default) must stay
    # disabled downstream, hence the False fallback.
    run_store = resolve_store(_store_arg(args))
    store_policy = run_store if run_store is not None else False
    from .exec import resolve_backend_name, resolve_worker_count

    workers = resolve_worker_count(args.workers, fallback=1)
    backend = resolve_backend_name(args.backend, workers)
    if backend != "serial":
        if args.progress:
            print("note: --progress is unavailable off the serial backend "
                  "(observers do not cross process boundaries)", file=sys.stderr)
        runs = run_specs_parallel(singles, n_workers=workers, store=store_policy,
                                  backend=backend, queue_dir=args.queue_dir)
    else:
        runs = [execute_experiment_spec(s, observers=observers, store=store_policy)
                for s in singles]
    if run_store is not None:
        counters = run_store.counters
        print(f"store: {counters.hits} hit(s), {counters.misses} miss(es) "
              f"at {run_store.root}")
    agg = aggregate_runs(runs)
    results = {spec.label: agg}
    print(format_series_table(results, metric="routing_cost", title=f"{spec.label}"))
    print()
    print(f"final routing cost:        {agg.routing_cost_mean:,.0f}")
    print(f"final execution time [s]:  {agg.elapsed_seconds_mean:.3f}")
    print(f"matched request share:     {agg.matched_fraction_mean:.1%}")
    if args.out:
        payload = {
            "spec": spec.to_dict(),
            "runs": [run.to_dict() for run in runs],
            "aggregate": agg.to_dict(),
        }
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {len(runs)} run(s) to {args.out}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    results = _run_specs(args, [args.algorithm])
    print(format_series_table(results, metric="routing_cost",
                              title=f"{args.algorithm} on {args.workload}"))
    result = next(iter(results.values()))
    print()
    print(f"final routing cost:        {result.routing_cost_mean:,.0f}")
    print(f"final execution time [s]:  {result.elapsed_seconds_mean:.3f}")
    print(f"matched request share:     {result.matched_fraction_mean:.1%}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    results = _run_specs(args, args.algorithms)
    oblivious_label = next((label for label in results if label.startswith("oblivious")), None)
    print(format_comparison_table(results, oblivious_label=oblivious_label))
    if args.plot:
        print()
        print(plot_results(results, metric="routing_cost",
                           title=f"routing cost on {args.workload}"))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    sweep = SweepConfig(
        b_values=tuple(args.b_values),
        alpha_values=tuple(args.alpha_values if args.alpha_values else [args.alpha]),
        algorithms=tuple(args.algorithms),
    )
    streaming, chunk_size = _streaming_args(args)
    results = run_sweep(
        sweep,
        workload=args.workload,
        workload_kwargs={"n_nodes": args.nodes, "n_requests": args.requests},
        topology=args.topology,
        repetitions=args.repetitions,
        base_seed=args.seed,
        checkpoints=args.checkpoints,
        n_workers=args.workers,
        solver_backend=args.solver_backend,
        rng_mode=args.rng_mode,
        store=_store_arg(args),
        streaming=streaming,
        chunk_size=chunk_size,
        backend=args.backend,
        queue_dir=args.queue_dir,
    )
    # Label collisions would silently drop rows: disambiguate by alpha when
    # more than one alpha value is swept.
    if len(sweep.alpha_values) > 1:
        by_label = {f"{r.algorithm} (b: {r.b}, alpha: {r.alpha:g})": r for r in results}
    else:
        by_label = {r.label: r for r in results}
    oblivious_label = next((label for label in by_label if label.startswith("oblivious")), None)
    print(format_comparison_table(by_label, oblivious_label=oblivious_label))
    return 0


def _cmd_generate_trace(args: argparse.Namespace) -> int:
    trace = make_workload(args.workload, n_nodes=args.nodes, n_requests=args.requests,
                          seed=args.seed)
    save_trace_csv(trace, args.out)
    print(f"wrote {len(trace):,} requests over {trace.n_nodes} racks to {args.out}")
    return 0


def _cmd_analyze_trace(args: argparse.Namespace) -> int:
    streaming, chunk_size = _streaming_args(args)
    if streaming:
        # Chunked read + incremental accumulator: memory stays bounded by
        # the chunk size, the statistics are bit-identical.
        trace = stream_trace_csv(args.path, chunk_size=chunk_size)
    else:
        trace = load_trace_csv(args.path)
    stats = compute_trace_statistics(trace)
    print(f"trace {trace.name!r}: {stats.n_requests:,} requests, {stats.n_nodes} racks")
    for key, value in stats.to_dict().items():
        if key in ("n_requests", "n_nodes"):
            continue
        print(f"  {key:<26} {value:.4g}")
    return 0


def _require_store(args: argparse.Namespace):
    run_store = resolve_store(args.store)
    if run_store is None:
        raise ConfigurationError(
            "no run store configured (pass --store DIR or set REPRO_RUN_STORE)"
        )
    return run_store


def _cmd_runs_list(args: argparse.Namespace) -> int:
    store = _require_store(args)
    entries = store.list_runs()
    print(f"{len(entries)} stored run(s) at {store.root}")
    shown = entries if args.limit <= 0 else entries[: args.limit]
    if shown:
        print(f"{'fingerprint':<14} {'algorithm':<12} {'workload':<20} "
              f"{'b':>3} {'seed':>6} {'runs':>4} {'total cost':>14} written")
    for e in shown:
        seed = "-" if e.seed is None else e.seed
        print(f"{e.fingerprint[:12]:<14} {e.algorithm:<12} {e.workload:<20} "
              f"{e.b:>3} {seed:>6} {e.runs:>4} {e.total_cost:>14,.0f} {e.written_at}")
    if len(entries) > len(shown):
        print(f"... {len(entries) - len(shown)} more (raise --limit)")
    return 0


def _cmd_runs_show(args: argparse.Namespace) -> int:
    store = _require_store(args)
    matches = store.find(args.fingerprint)
    if not matches:
        raise ConfigurationError(
            f"no stored run matches fingerprint prefix {args.fingerprint!r}"
        )
    if len(matches) > 1:
        listing = ", ".join(m.fingerprint[:12] for m in matches)
        raise ConfigurationError(
            f"fingerprint prefix {args.fingerprint!r} is ambiguous "
            f"({len(matches)} matches: {listing})"
        )
    payload = store.get_payload(matches[0].fingerprint)
    assert payload is not None  # the index row came from this entry file
    result = payload["result"]
    print(f"fingerprint:    {payload['fingerprint']}")
    print(f"written at:     {payload['written_at']} "
          f"(updated {payload['updated_at']}, repro {payload['repro_version']})")
    print(f"algorithm:      {result['algorithm']} (b: {result['b']}, "
          f"alpha: {result['alpha']:g})")
    print(f"workload:       {result['workload']} on {result['topology']} "
          f"({result['n_requests']:,} requests, seed {result.get('seed')})")
    total = float(result["total_routing_cost"]) + float(result["total_reconfiguration_cost"])
    print(f"total cost:     {total:,.0f} "
          f"(routing {float(result['total_routing_cost']):,.0f}, "
          f"reconfiguration {float(result['total_reconfiguration_cost']):,.0f})")
    print(f"wall time [s]:  {float(result['total_elapsed_seconds']):.3f}")
    history = payload.get("history") or []
    print(f"recomputations: {len(history)}")
    for row in history:
        print(f"  {row['written_at']}  wall {row['wall_seconds']:.3f}s  "
              f"cost {row['total_cost']:,.0f}")
    print("spec:")
    print(json.dumps(payload["spec"], indent=2, sort_keys=True))
    return 0


def _cmd_runs_stats(args: argparse.Namespace) -> int:
    store = _require_store(args)
    if args.group:
        groups = group_statistics(store)
        print(f"{len(groups)} configuration group(s) at {store.root}")
        for g in groups:
            print(f"{g.algorithm} on {g.workload} (b: {g.b}, alpha: {g.alpha:g}, "
                  f"{g.n_requests:,} requests) over {g.cost.n} seed(s):")
            print(f"  cost    mean {g.cost.mean:,.0f}  std {g.cost.std:,.0f}  "
                  f"CI [{g.cost.ci_low:,.0f}, {g.cost.ci_high:,.0f}]")
            print(f"  runtime mean {g.runtime.mean:.3f}s  std {g.runtime.std:.3f}s")
        return 0
    histories = store_statistics(store)
    print(f"{len(histories)} stored run(s) at {store.root}")
    for h in histories:
        flags = []
        if h.cost_regression:
            flags.append("COST DRIFT")
        if h.runtime_regression:
            flags.append("RUNTIME REGRESSION")
        suffix = f"  [{', '.join(flags)}]" if flags else ""
        print(f"{h.fingerprint[:12]}  {h.algorithm} on {h.workload} (b: {h.b}, "
              f"seed {h.seed}): {h.n_runs} recomputation(s){suffix}")
        print(f"  runtime mean {h.runtime.mean:.3f}s  "
              f"CI [{h.runtime.ci_low:.3f}, {h.runtime.ci_high:.3f}]  "
              f"latest {h.latest_wall_seconds:.3f}s")
        print(f"  cost    {h.latest_total_cost:,.0f}")
    return 0


def _cmd_runs_gc(args: argparse.Namespace) -> int:
    store = _require_store(args)
    deleted = store.gc(max_entries=args.max_entries, max_age_days=args.max_age_days,
                       dry_run=args.dry_run)
    verb = "would delete" if args.dry_run else "deleted"
    print(f"{verb} {len(deleted)} entr{'y' if len(deleted) == 1 else 'ies'} "
          f"at {store.root}")
    for fingerprint in deleted:
        print(f"  {fingerprint}")
    return 0


def _cmd_runs_export(args: argparse.Namespace) -> int:
    from .store.transfer import export_store

    store = _require_store(args)
    summary = export_store(store, args.tarball)
    print(f"exported {summary['exported']} entr"
          f"{'y' if summary['exported'] == 1 else 'ies'} "
          f"from {store.root} to {summary['path']}")
    for name in summary["skipped"]:
        print(f"  skipped unreadable entry file {name}", file=sys.stderr)
    return 0


def _cmd_runs_import(args: argparse.Namespace) -> int:
    from .store.transfer import import_store

    store = _require_store(args)
    summary = import_store(store, args.tarball)
    print(f"imported {summary['imported']} new entr"
          f"{'y' if summary['imported'] == 1 else 'ies'} into {store.root} "
          f"({summary['merged']} histor"
          f"{'y' if summary['merged'] == 1 else 'ies'} merged, "
          f"{summary['unchanged']} unchanged)")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from .exec import run_worker

    stats = run_worker(
        args.queue_dir,
        worker_id=args.worker_id,
        poll_interval=args.poll_interval,
        max_tasks=args.max_tasks,
        keep_alive=args.keep_alive,
    )
    print(f"worker {stats['worker']}: {stats['completed']} task(s) completed, "
          f"{stats['failed_attempts']} failed attempt(s)")
    anomalies = {k: v for k, v in stats.get("queue", {}).items() if v}
    if anomalies:
        listing = ", ".join(f"{k}: {v}" for k, v in sorted(anomalies.items()))
        print(f"  absorbed anomalies: {listing}")
    return 0


def _cmd_doctor(args: argparse.Namespace) -> int:
    from .doctor import audit_queue, audit_store

    reports = []
    if args.store is not None or os.environ.get("REPRO_RUN_STORE"):
        reports.append(audit_store(_require_store(args), fix=args.fix))
    if args.queue is not None:
        from .exec.queue import WorkQueue

        reports.append(audit_queue(WorkQueue.open(args.queue), fix=args.fix))
    if not reports:
        raise ConfigurationError(
            "nothing to audit: pass --store DIR (or set REPRO_RUN_STORE) "
            "and/or --queue DIR"
        )
    if args.as_json:
        print(json.dumps([r.to_dict() for r in reports], indent=2))
        return 0 if all(r.clean() for r in reports) else 1
    clean = True
    for report in reports:
        print(f"{report.area} at {report.root}:")
        if not report.findings:
            print("  clean")
        for finding in report.findings:
            status = "fixed" if finding.fixed else (
                "fixable with --fix" if finding.fixable else "manual attention"
            )
            print(f"  [{finding.kind}] {finding.path}: {finding.detail} ({status})")
        for key, value in sorted(report.info.items()):
            if value:
                print(f"  {key}: {value}")
        clean = clean and report.clean()
    return 0 if clean else 1


_RUNS_COMMANDS = {
    "list": _cmd_runs_list,
    "show": _cmd_runs_show,
    "stats": _cmd_runs_stats,
    "gc": _cmd_runs_gc,
    "export": _cmd_runs_export,
    "import": _cmd_runs_import,
}


def _cmd_runs(args: argparse.Namespace) -> int:
    if args.runs_command is None:
        print("usage: repro runs [--store DIR] {list,show,stats,gc,export,import}")
        return 0
    return _RUNS_COMMANDS[args.runs_command](args)


def _cmd_list(_args: argparse.Namespace) -> int:
    print("algorithms:      " + ", ".join(available_algorithms()))
    print("workloads:       " + ", ".join(available_workloads()))
    print("topologies:      " + ", ".join(available_topologies()))
    print("paging policies: " + ", ".join(available_paging_policies()))
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "simulate": _cmd_simulate,
    "compare": _cmd_compare,
    "sweep": _cmd_sweep,
    "generate-trace": _cmd_generate_trace,
    "analyze-trace": _cmd_analyze_trace,
    "list": _cmd_list,
    "runs": _cmd_runs,
    "worker": _cmd_worker,
    "doctor": _cmd_doctor,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 0
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
