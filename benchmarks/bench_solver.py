"""Solver A/B benchmark — nx vs array blossom tier on the SO-BMA solve.

Times the static maximum-weight b-matching solve behind SO-BMA for every
figure panel's ``b`` grid on the panel's aggregate demand, once per solver
backend (``"nx"`` = the reference NetworkX blossom path, no memoisation;
``"array"`` = the flat-array Galil kernel, measured both bare and with the
demand-fingerprint memo + prefix-shared b-sweeps), asserts that the
backends produce identical matchings and bit-identical SO-BMA figure costs
*before* recording any timing, and writes the seconds and speedup ratios to
``BENCH_solver.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_solver.py [fig1 fig2 ...]

Figures default to all four; ``REPRO_BENCH_SCALE`` scales the trace lengths
exactly as for the figure benchmarks.  Can also be collected by pytest, in
which case it benchmarks ``fig4`` only (the acceptance figure: the paper's
Microsoft panel, where SO-BMA wins and its blossom solve dominates).
"""

import sys

import _harness as harness


def _report(figures) -> dict:
    report = harness.solver_benchmark(figures=tuple(figures))
    width = max(len(f) for f in report)
    print(f"\nsolver A/B (written to {harness.SOLVER_BENCH_PATH}):")
    for figure, row in report.items():
        print(
            f"  {figure:<{width}}  b={tuple(row['b_values'])}  "
            f"nx {row['nx_seconds']:7.3f}s   "
            f"array-kernel {row['array_kernel_seconds']:7.3f}s "
            f"({row['kernel_speedup']:5.2f}x)   "
            f"array+memo+prefix {row['array_seconds']:7.3f}s "
            f"({row['speedup']:5.2f}x, "
            f"{row['blossom_rounds_nx']}->{row['blossom_rounds_array']} rounds)   "
            f"substage {row['blossom_substage_seconds']:7.3f}s "
            f"({row['substage_speedup']:5.2f}x vs pure)"
        )
    return report


def test_solver_speedup_fig4(benchmark):
    """The array tier must at least triple fig4's SO-BMA solve throughput."""
    report = benchmark.pedantic(_report, args=(["fig4"],), rounds=1, iterations=1)
    assert report["fig4"]["speedup"] >= 3.0


if __name__ == "__main__":
    figures = sys.argv[1:] or list(harness.FIGURE_SETTINGS)
    unknown = [f for f in figures if f not in harness.FIGURE_SETTINGS]
    if unknown:
        raise SystemExit(f"unknown figures: {unknown} (known: {list(harness.FIGURE_SETTINGS)})")
    harness.preflight()
    _report(figures)
