"""Ablation A6 — resource augmentation ((b, a)-matching).

The paper's bound improves from O(log b) to O(log(b/(b−a+1))) when the online
algorithm may use degree b while the offline optimum is restricted to a ≤ b.
On small star-adversary instances where the exact offline optimum is
computable, this ablation measures R-BMA's empirical ratio against optima with
different degree budgets a, next to the corresponding theoretical bounds.
"""

import _harness as harness

from repro.analysis import empirical_competitive_ratio, round_robin_adversary_trace
from repro.config import MatchingConfig
from repro.core import RBMA
from repro.paging.bounds import randomized_paging_lower_bound, resource_augmented_ratio
from repro.topology import StarTopology

B = 4
A_VALUES = (4, 3, 2, 1)
ALPHA = 3.0
N_BLOCKS = 40


def _measure():
    topo = StarTopology(n_racks=B + 1, hub_is_rack=True)
    trace = round_robin_adversary_trace(b=B, n_blocks=N_BLOCKS, alpha=ALPHA)
    requests = list(trace.requests())
    rows = []
    for a in A_VALUES:
        config = MatchingConfig(b=B, alpha=ALPHA, a=a)
        report = empirical_competitive_ratio(
            lambda: RBMA(topo, config, rng=a), requests, topo, config,
            trials=5, offline_b=a,
        )
        rows.append((a, report))
    return rows


def test_ablation_resource_augmentation(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    lines = [f"Ablation A6 — resource augmentation (online b = {B}, offline degree a)",
             f"{'a':>3} {'offline opt':>12} {'measured ratio':>15} "
             f"{'paging LB':>10} {'paging UB':>10}"]
    for a, report in rows:
        lines.append(
            f"{a:>3} {report.offline_cost:>12.1f} {report.ratio:>15.2f} "
            f"{randomized_paging_lower_bound(B, a):>10.2f} "
            f"{resource_augmented_ratio(B, a):>10.2f}"
        )
        assert report.ratio <= report.theoretical_bound
    lines.append("(the theoretical bounds shrink as the offline degree budget a decreases;")
    lines.append(" on this small adversary the measured ratio stays roughly flat because")
    lines.append(" the optimum already prefers routing every block over reconfiguring,")
    lines.append(" so restricting its degree does not change its cost)")
    harness.write_output("ablation_resource_augmentation", "\n".join(lines))
