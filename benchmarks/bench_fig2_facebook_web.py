"""Figure 2 — Facebook web-service cluster.

Regenerates the three panels of the paper's Figure 2 on the synthetic
Facebook-web-service-like workload (100 racks, fat-tree, b ∈ {6, 12, 18}).
"""

import _harness as harness


def test_fig2a_routing_cost(benchmark):
    results = benchmark.pedantic(harness.run_figure_panel, args=("fig2",), rounds=1, iterations=1)
    harness.write_output(
        "fig2a_routing_cost",
        harness.routing_cost_table(results, "Figure 2a — Facebook web service: routing cost"),
    )
    harness.write_output("fig2_summary", harness.summary_table(results, "Figure 2 — summary"))


def test_fig2b_execution_time(benchmark):
    results = harness.run_figure_panel("fig2")
    table = benchmark.pedantic(
        harness.execution_time_table,
        args=(results, "Figure 2b — Facebook web service: execution time [s]"),
        rounds=1, iterations=1,
    )
    harness.write_output("fig2b_execution_time", table)


def test_fig2c_best_of(benchmark):
    results = harness.run_figure_panel("fig2")
    table = benchmark.pedantic(
        harness.best_of_table,
        args=(results, "Figure 2c — Facebook web service: best-of comparison (b = 18)"),
        rounds=1, iterations=1,
    )
    harness.write_output("fig2c_best_of", table)
