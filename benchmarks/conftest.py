"""Pytest configuration for the benchmark suite."""

from __future__ import annotations

import sys
from pathlib import Path

# The harness module lives next to the benchmark files; make it importable
# regardless of how pytest was invoked, and allow running from a source
# checkout without installation.
_HERE = Path(__file__).resolve().parent
_SRC = _HERE.parent / "src"
for path in (str(_HERE), str(_SRC)):
    if path not in sys.path:
        sys.path.insert(0, path)
