"""Pytest configuration for the benchmark suite."""

from __future__ import annotations

import sys
from pathlib import Path

# The harness module lives next to the benchmark files; make it importable
# regardless of how pytest was invoked, and allow running from a source
# checkout without installation.
_HERE = Path(__file__).resolve().parent
_SRC = _HERE.parent / "src"
for path in (str(_HERE), str(_SRC)):
    if path not in sys.path:
        sys.path.insert(0, path)


import pytest


@pytest.fixture(scope="session", autouse=True)
def _smoke_preflight():
    """Fail a benchmark session in seconds if the library is broken.

    Runs the fast ``pytest -m smoke`` subset once before any benchmark
    executes; disable with ``REPRO_BENCH_PREFLIGHT=0``.
    """
    import _harness

    _harness.preflight()
