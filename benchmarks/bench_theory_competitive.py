"""Theory T1 — empirical competitive ratios against the exact offline optimum.

Connects the empirical section to the theory: on small adversarial and random
instances (where the exact dynamic-programming optimum is computable) we
measure the competitive ratio of R-BMA and BMA and compare against the
Corollary 3 upper bound and the Theorem 4 lower bound.  The paper's headline
— the randomized algorithm's ratio scales like log b while the deterministic
one scales like b — shows up as a growing gap between the two columns as b
increases.
"""

import _harness as harness
import numpy as np

from repro.analysis import empirical_competitive_ratio, round_robin_adversary_trace
from repro.config import MatchingConfig
from repro.core import BMA, RBMA
from repro.paging.bounds import rbma_lower_bound, rbma_upper_bound
from repro.topology import StarTopology

B_VALUES = (2, 3, 4)
ALPHA = 3.0
N_BLOCKS = 40


def _measure():
    rows = []
    for b in B_VALUES:
        topo = StarTopology(n_racks=b + 1, hub_is_rack=True)
        config = MatchingConfig(b=b, alpha=ALPHA)
        trace = round_robin_adversary_trace(b=b, n_blocks=N_BLOCKS, alpha=ALPHA)
        requests = list(trace.requests())
        rbma_report = empirical_competitive_ratio(
            lambda: RBMA(topo, config, rng=int(b)), requests, topo, config, trials=5
        )
        bma_report = empirical_competitive_ratio(
            lambda: BMA(topo, config), requests, topo, config, trials=1
        )
        rows.append((b, rbma_report, bma_report))
    return rows


def test_theory_competitive_ratio(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    lines = ["Theory T1 — empirical competitive ratios on the star adversary",
             f"{'b':>3} {'opt cost':>9} {'R-BMA ratio':>12} {'BMA ratio':>10} "
             f"{'lower bound':>12} {'upper bound':>12}"]
    for b, rbma_report, bma_report in rows:
        lines.append(
            f"{b:>3} {rbma_report.offline_cost:>9.1f} {rbma_report.ratio:>12.2f} "
            f"{bma_report.ratio:>10.2f} {rbma_lower_bound(b):>12.2f} "
            f"{rbma_upper_bound(b, b, 1.0, ALPHA):>12.2f}"
        )
        assert rbma_report.ratio <= rbma_report.theoretical_bound
    harness.write_output("theory_competitive", "\n".join(lines))
