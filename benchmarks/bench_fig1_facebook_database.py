"""Figure 1 — Facebook database cluster.

Regenerates the three panels of the paper's Figure 1 on the synthetic
Facebook-database-like workload (100 racks, fat-tree, b ∈ {6, 12, 18}):

* 1a — routing cost vs. number of requests for R-BMA, BMA and Oblivious;
* 1b — execution time vs. number of requests for R-BMA and BMA;
* 1c — best-of comparison (b = 18): R-BMA vs BMA vs SO-BMA.
"""

import _harness as harness


def test_fig1a_routing_cost(benchmark):
    results = benchmark.pedantic(harness.run_figure_panel, args=("fig1",), rounds=1, iterations=1)
    harness.write_output(
        "fig1a_routing_cost",
        harness.routing_cost_table(results, "Figure 1a — Facebook database: routing cost"),
    )
    harness.write_output("fig1_summary", harness.summary_table(results, "Figure 1 — summary"))


def test_fig1b_execution_time(benchmark):
    results = harness.run_figure_panel("fig1")
    table = benchmark.pedantic(
        harness.execution_time_table,
        args=(results, "Figure 1b — Facebook database: execution time [s]"),
        rounds=1, iterations=1,
    )
    harness.write_output("fig1b_execution_time", table)


def test_fig1c_best_of(benchmark):
    results = harness.run_figure_panel("fig1")
    table = benchmark.pedantic(
        harness.best_of_table,
        args=(results, "Figure 1c — Facebook database: best-of comparison (b = 18)"),
        rounds=1, iterations=1,
    )
    harness.write_output("fig1c_best_of", table)
