"""Ablation A5 — demand-aware vs. demand-oblivious reconfiguration.

The paper's related-work discussion contrasts demand-aware designs (the
b-matching algorithms studied here) with demand-oblivious rotor-style designs
(RotorNet, Sirius) that cycle through a fixed schedule of matchings.  This
ablation runs both on the same workloads: on skewed, bursty traffic the
demand-aware algorithms should serve far more traffic over optical links than
the rotor, while on near-uniform traffic the gap closes — quantifying how much
of the benefit comes from demand-awareness itself.
"""

import _harness as harness

from repro.analysis import format_comparison_table
from repro.simulation import ExperimentRunner, RunSpec

WORKLOADS = {
    "facebook-database": {"n_nodes": 100, "n_requests": None},
    "uniform": {"n_nodes": 100, "n_requests": None},
}


def _run():
    tables = {}
    runner = ExperimentRunner(repetitions=harness.bench_repetitions(), base_seed=23)
    for workload, kwargs in WORKLOADS.items():
        workload_kwargs = dict(kwargs)
        workload_kwargs["n_requests"] = harness.scaled_requests(350_000)
        specs = [
            RunSpec(algorithm=algorithm, workload=workload, b=12, alpha=harness.DEFAULT_ALPHA,
                    workload_kwargs=workload_kwargs, checkpoints=5,
                    algorithm_kwargs={"period": 200} if algorithm == "rotor" else {})
            for algorithm in ("rbma", "rotor", "oblivious")
        ]
        harness.check_specs_picklable(specs)
        tables[workload] = runner.compare_on_shared_trace(
            specs, n_workers=harness.bench_workers()
        )
    return tables


def test_ablation_demand_obliviousness(benchmark):
    tables = benchmark.pedantic(_run, rounds=1, iterations=1)
    sections = []
    for workload, results in tables.items():
        oblivious_label = next(label for label in results if label.startswith("oblivious"))
        sections.append(f"--- {workload} ---\n"
                        + format_comparison_table(results, oblivious_label=oblivious_label))
    harness.write_output(
        "ablation_demand_obliviousness",
        "Ablation A5 — demand-aware (R-BMA) vs demand-oblivious (rotor) reconfiguration\n\n"
        + "\n\n".join(sections),
    )
