"""Ablation A2 — reconfiguration cost (α) sweep.

The competitive bound carries a factor γ = 1 + ℓ_max/α, and the Theorem 1
filter forwards every ⌈α/ℓ_e⌉-th request, so α controls how eagerly R-BMA
reconfigures.  This ablation sweeps α on the Facebook-database-like workload
and reports total cost (routing + reconfiguration) for R-BMA, BMA, and the
oblivious baseline.
"""

import _harness as harness

from repro.config import SweepConfig
from repro.simulation import run_sweep

ALPHA_VALUES = (1.0, 4.0, 16.0, 40.0, 120.0)


def _run_sweep():
    sweep = SweepConfig(b_values=(12,), alpha_values=ALPHA_VALUES,
                        algorithms=("rbma", "bma", "oblivious"))
    return run_sweep(
        sweep,
        workload="facebook-database",
        workload_kwargs={"n_nodes": 100,
                         "n_requests": harness.scaled_requests(350_000)},
        repetitions=harness.bench_repetitions(),
        base_seed=13,
        checkpoints=5,
        n_workers=harness.bench_workers(),
    )


def test_ablation_alpha(benchmark):
    results = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    lines = ["Ablation A2 — reconfiguration cost sweep (b = 12)",
             f"{'algorithm':<12} {'alpha':>8} {'routing':>12} {'reconfig':>12} {'total':>12}"]
    for r in results:
        reconfig = r.series.reconfiguration_cost[-1]
        lines.append(
            f"{r.algorithm:<12} {r.alpha:>8.0f} {r.routing_cost_mean:>12.0f} "
            f"{reconfig:>12.0f} {r.routing_cost_mean + reconfig:>12.0f}"
        )
    harness.write_output("ablation_alpha", "\n".join(lines))
