"""Figure 4 — Microsoft (ProjecToR) cluster.

Regenerates the three panels of the paper's Figure 4 on the synthetic
Microsoft-like workload (50 racks, fat-tree, b ∈ {3, 6, 9}).  This trace is
sampled i.i.d. from a skewed traffic matrix, so it has no temporal structure —
the setting where the paper observes the static offline matching (SO-BMA)
clearly outperforming the online algorithms.
"""

import _harness as harness


def test_fig4a_routing_cost(benchmark):
    results = benchmark.pedantic(harness.run_figure_panel, args=("fig4",), rounds=1, iterations=1)
    harness.write_output(
        "fig4a_routing_cost",
        harness.routing_cost_table(results, "Figure 4a — Microsoft: routing cost"),
    )
    harness.write_output("fig4_summary", harness.summary_table(results, "Figure 4 — summary"))


def test_fig4b_execution_time(benchmark):
    results = harness.run_figure_panel("fig4")
    table = benchmark.pedantic(
        harness.execution_time_table,
        args=(results, "Figure 4b — Microsoft: execution time [s]"),
        rounds=1, iterations=1,
    )
    harness.write_output("fig4b_execution_time", table)


def test_fig4c_best_of(benchmark):
    results = harness.run_figure_panel("fig4")
    table = benchmark.pedantic(
        harness.best_of_table,
        args=(results, "Figure 4c — Microsoft: best-of comparison (b = 9)"),
        rounds=1, iterations=1,
    )
    harness.write_output("fig4c_best_of", table)
