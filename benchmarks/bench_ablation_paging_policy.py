"""Ablation A3 — paging policy inside R-BMA.

The paper's analysis requires the per-node caches to run a competitive
randomized paging algorithm (marking / Young); this ablation replaces it with
deterministic policies (LRU, FIFO, LFU) and naive random eviction to measure
how much of R-BMA's empirical performance is due to the marking phase
structure versus simply caching recently used pairs.
"""

import _harness as harness

from repro.analysis import format_comparison_table
from repro.simulation import ExperimentRunner, RunSpec

POLICIES = ("marking", "lru", "fifo", "lfu", "random")


def _run_ablation():
    workload_kwargs = {"n_nodes": 100, "n_requests": harness.scaled_requests(350_000)}
    specs = [
        RunSpec(
            algorithm="rbma",
            workload="facebook-database",
            b=12,
            alpha=harness.DEFAULT_ALPHA,
            workload_kwargs=workload_kwargs,
            algorithm_kwargs={"paging_policy": policy},
            checkpoints=5,
        )
        for policy in POLICIES
    ]
    specs.append(
        RunSpec(algorithm="oblivious", workload="facebook-database", b=12,
                alpha=harness.DEFAULT_ALPHA, workload_kwargs=workload_kwargs, checkpoints=5)
    )
    harness.check_specs_picklable(specs)
    runner = ExperimentRunner(repetitions=harness.bench_repetitions(), base_seed=17)
    aggregates = runner.run_many(specs, n_workers=harness.bench_workers())
    per_policy = {}
    for policy, agg in zip(list(POLICIES) + ["oblivious"], aggregates):
        per_policy[f"rbma[{policy}]" if policy != "oblivious" else "oblivious"] = agg
    return per_policy


def test_ablation_paging_policy(benchmark):
    results = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    table = format_comparison_table(results, oblivious_label="oblivious")
    harness.write_output(
        "ablation_paging_policy",
        "Ablation A3 — per-node paging policy inside R-BMA (b = 12)\n" + table,
    )
