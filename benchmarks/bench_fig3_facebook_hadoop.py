"""Figure 3 — Facebook Hadoop cluster.

Regenerates the three panels of the paper's Figure 3 on the synthetic
Facebook-Hadoop-like workload (100 racks, fat-tree, b ∈ {6, 12, 18}).
"""

import _harness as harness


def test_fig3a_routing_cost(benchmark):
    results = benchmark.pedantic(harness.run_figure_panel, args=("fig3",), rounds=1, iterations=1)
    harness.write_output(
        "fig3a_routing_cost",
        harness.routing_cost_table(results, "Figure 3a — Facebook Hadoop: routing cost"),
    )
    harness.write_output("fig3_summary", harness.summary_table(results, "Figure 3 — summary"))


def test_fig3b_execution_time(benchmark):
    results = harness.run_figure_panel("fig3")
    table = benchmark.pedantic(
        harness.execution_time_table,
        args=(results, "Figure 3b — Facebook Hadoop: execution time [s]"),
        rounds=1, iterations=1,
    )
    harness.write_output("fig3b_execution_time", table)


def test_fig3c_best_of(benchmark):
    results = harness.run_figure_panel("fig3")
    table = benchmark.pedantic(
        harness.best_of_table,
        args=(results, "Figure 3c — Facebook Hadoop: best-of comparison (b = 18)"),
        rounds=1, iterations=1,
    )
    harness.write_output("fig3c_best_of", table)
