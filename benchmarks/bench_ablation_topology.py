"""Ablation A4 — fixed-network topology sensitivity.

The paper notes that the static topology only changes the cost of requests
routed over the fixed network ("network topologies with shorter paths ...
would result in lower costs").  This ablation runs R-BMA and Oblivious on the
same workload over four fixed networks — fat-tree, leaf-spine, expander, and
star — and reports the absolute costs and the relative reduction, which stays
meaningful even as the oblivious baseline changes.
"""

import _harness as harness

from repro.analysis import routing_cost_reduction
from repro.simulation import ExperimentRunner, RunSpec

TOPOLOGIES = {
    "fat-tree": {},
    "leaf-spine": {},
    "expander": {"degree": 4, "seed": 1},
    "star": {},
}


def _run_ablation():
    workload_kwargs = {"n_nodes": 100, "n_requests": harness.scaled_requests(350_000)}
    runner = ExperimentRunner(repetitions=harness.bench_repetitions(), base_seed=19)
    rows = {}
    for topology, topo_kwargs in TOPOLOGIES.items():
        specs = [
            RunSpec(algorithm=algorithm, workload="facebook-database", b=12,
                    alpha=harness.DEFAULT_ALPHA, topology=topology,
                    topology_kwargs=topo_kwargs, workload_kwargs=workload_kwargs,
                    checkpoints=5)
            for algorithm in ("rbma", "oblivious")
        ]
        harness.check_specs_picklable(specs)
        results = runner.compare_on_shared_trace(
            specs, n_workers=harness.bench_workers()
        )
        rbma = results["rbma (b: 12)"]
        oblivious = results["oblivious (b: 12)"]
        rows[topology] = (rbma, oblivious, routing_cost_reduction(rbma, oblivious))
    return rows


def test_ablation_topology(benchmark):
    rows = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    lines = ["Ablation A4 — fixed-network topology sensitivity (R-BMA, b = 12)",
             f"{'topology':<12} {'oblivious cost':>16} {'rbma cost':>12} {'reduction':>10}"]
    for topology, (rbma, oblivious, reduction) in rows.items():
        lines.append(
            f"{topology:<12} {oblivious.routing_cost_mean:>16.0f} "
            f"{rbma.routing_cost_mean:>12.0f} {100 * reduction:>9.1f}%"
        )
    harness.write_output("ablation_topology", "\n".join(lines))
