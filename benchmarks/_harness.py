"""Shared machinery for the figure-reproduction benchmarks.

Every benchmark module regenerates one figure of the paper's evaluation
section (routing-cost panel, execution-time panel, best-of panel) as
plain-text tables printed to stdout and written under ``benchmarks/output/``.

Because the original traces are proprietary, the workloads are the synthetic
equivalents from :mod:`repro.traffic` (see ``DESIGN.md`` §2), and the request
counts are scaled down by ``REPRO_BENCH_SCALE`` (default 0.05 of the paper's
x-axes) so the whole suite runs in minutes on a laptop.  Set
``REPRO_BENCH_SCALE=1.0`` to run at the paper's full scale.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from functools import lru_cache
from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence

from repro.analysis import format_comparison_table, format_series_table
from repro.experiments import ExperimentSpec
from repro.simulation import AggregateResult, ExperimentRunner
from repro.simulation.parallel import default_worker_count
from repro.store import default_store, store_counters

__all__ = [
    "bench_scale",
    "bench_repetitions",
    "bench_workers",
    "scaled_requests",
    "preflight",
    "check_specs_picklable",
    "figure_specs",
    "run_figure_panel",
    "kernel_benchmark",
    "solver_benchmark",
    "routing_cost_table",
    "execution_time_table",
    "best_of_table",
    "summary_table",
    "write_output",
]

OUTPUT_DIR = Path(__file__).resolve().parent / "output"

#: Where :func:`kernel_benchmark` records reference-vs-fast wall-clock times.
KERNEL_BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_kernel.json"

#: Where :func:`solver_benchmark` records nx-vs-array SO-BMA solver times.
SOLVER_BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_solver.json"

#: Paper figure parameters: (workload, racks, full request count, b values).
FIGURE_SETTINGS = {
    "fig1": ("facebook-database", 100, 350_000, (6, 12, 18)),
    "fig2": ("facebook-web", 100, 400_000, (6, 12, 18)),
    "fig3": ("facebook-hadoop", 100, 185_000, (6, 12, 18)),
    "fig4": ("microsoft", 50, 1_750_000, (3, 6, 9)),
}

#: Per-algorithm rows timed by :func:`kernel_benchmark` on the fig1 workload:
#: the randomized/expert algorithms whose batched drive paths (steady-pair
#: paging scan, hybrid expert-stepping scan) are not exercised by the
#: rbma/bma figure panels.  Values are the algorithm's extra spec params.
ALGORITHM_BENCH_SETTINGS: Dict[str, Dict[str, object]] = {
    "uniform": {},
    "hybrid": {"period": 200, "window": 400},
}

#: Reconfiguration cost used throughout the benchmarks.  The paper does not
#: fix a value but requires α ≥ ℓ_max (= 4 on a fat tree); 15 keeps that
#: property while still letting the online algorithms amortise
#: reconfigurations within the scaled-down trace lengths (see EXPERIMENTS.md
#: for the effect of larger α, and the α-sweep ablation).
DEFAULT_ALPHA = 15.0


def bench_scale() -> float:
    """Fraction of the paper's request counts to simulate."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))


def bench_repetitions() -> int:
    """Number of repetitions per configuration (paper: 5; default here: 1)."""
    return int(os.environ.get("REPRO_BENCH_REPETITIONS", "1"))


def bench_workers() -> int:
    """Worker processes for sharding panels/ablations (``REPRO_BENCH_WORKERS``).

    Defaults to CPU count minus one; figure panels and ablations run their
    (algorithm × b × repetition) grids across this many processes with
    bit-identical results (the runs are independent; each worker rebuilds
    its trace deterministically from the spec).
    """
    env = os.environ.get("REPRO_BENCH_WORKERS")
    if env is not None:
        return max(1, int(env))
    return default_worker_count()


def scaled_requests(full_count: int) -> int:
    """Scale a paper request count, keeping at least a usable minimum."""
    return max(2_000, int(full_count * bench_scale()))


def _store_provenance() -> Dict[str, object]:
    """Run-store provenance recorded into every ``BENCH_*.json`` payload.

    ``store_active`` says whether a default store was configured while the
    benchmark process ran; ``store_hits``/``store_misses``/``store_writes``
    are the process-wide tallies, so a reader can tell how much of the
    surrounding pipeline (figure panels, preflight) was served from cache.
    The timing arms themselves always run with ``store=False``, so hits
    never contaminate the recorded wall-clock numbers.
    """
    counters = store_counters()
    return {
        "store_active": default_store() is not None,
        "store_hits": counters["hits"],
        "store_misses": counters["misses"],
        "store_writes": counters["writes"],
    }


_PREFLIGHT_RAN = False


def preflight() -> None:
    """Run the fast ``pytest -m smoke`` subset once before long benchmark runs.

    A multi-hour sweep should fail in seconds, not hours, when the library is
    broken.  Runs at most once per process; disable with
    ``REPRO_BENCH_PREFLIGHT=0``.
    """
    global _PREFLIGHT_RAN
    if _PREFLIGHT_RAN or os.environ.get("REPRO_BENCH_PREFLIGHT", "1") == "0":
        return
    _PREFLIGHT_RAN = True
    root = Path(__file__).resolve().parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(root / "src"), env.get("PYTHONPATH")) if p
    )
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-m", "smoke", "-q", "--no-header", "-p", "no:cacheprovider",
         str(root / "tests")],
        cwd=root,
        env=env,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"smoke-test preflight failed (exit {proc.returncode}); aborting benchmarks "
            "(set REPRO_BENCH_PREFLIGHT=0 to skip)"
        )
    for figure in FIGURE_SETTINGS:
        for backend in (None, "reference", "fast", "numba"):
            check_specs_picklable(figure_specs(figure, matching_backend=backend))


def check_specs_picklable(specs: Sequence[object]) -> None:
    """Assert every spec round-trips through pickle before a sharded run.

    Sharded execution ships specs to worker processes; a spec that pickles
    into something different (or not at all) would silently run a different
    experiment, so the preflight fails loudly instead — even on hosts where
    the pool (and its own dispatch-time check) is skipped.  Figure panels
    are checked by :func:`preflight`; the ablation sweeps call this on
    their own spec grids.
    """
    from repro.simulation.parallel import _check_picklable

    _check_picklable(list(specs))


def figure_specs(figure: str, matching_backend: Optional[str] = None) -> list[ExperimentSpec]:
    """The experiment specs behind one figure panel.

    ``matching_backend`` selects the b-matching kernel (``"fast"`` is the
    library default; ``"reference"`` forces the original per-request kernel,
    used by :func:`kernel_benchmark` for A/B timing).
    """
    workload, n_racks, full_requests, b_values = FIGURE_SETTINGS[figure]
    n_requests = scaled_requests(full_requests)

    simulation: Dict[str, object] = {"checkpoints": 10}
    if matching_backend is not None:
        simulation["matching_backend"] = matching_backend
    base = ExperimentSpec(
        algorithm={"name": "rbma", "b": b_values[0], "alpha": DEFAULT_ALPHA},
        traffic={"name": workload,
                 "params": {"n_nodes": n_racks, "n_requests": n_requests}},
        simulation=simulation,
    )
    specs = base.expand({"algorithm.name": ["rbma", "bma"],
                         "algorithm.b": list(b_values)})
    # Oblivious baseline (b is irrelevant) and SO-BMA at the largest b for the
    # best-of panel, as in the paper's (c) sub-figures.
    specs.extend(
        base.expand({"algorithm.name": ["oblivious"]})
        + base.expand({"algorithm.name": ["so-bma"],
                       "algorithm.b": [b_values[-1]],
                       "algorithm.params": [{"solver": "blossom"}]})
    )
    return specs


@lru_cache(maxsize=None)
def run_figure_panel(figure: str) -> Dict[str, AggregateResult]:
    """Run all configurations behind one figure and cache the results.

    Returns a mapping from configuration label (``"rbma (b: 12)"``,
    ``"oblivious (b: ...)"``, ``"so-bma (b: ...)"``) to aggregated results,
    all replayed on the same generated workload per repetition.  The
    (algorithm × b × repetition) grid is sharded over
    :func:`bench_workers` processes; results are bit-identical to a
    sequential run, so the cache key stays the figure alone.

    With ``REPRO_RUN_STORE`` set, panels are *incremental*: every (spec,
    seed) cell already in the store is served from disk (bit-identical to a
    cold run) and only new or changed cells simulate — regenerating all
    figures after touching one algorithm recomputes just that algorithm's
    cells.  The timing benchmarks below are exempt: they force cold runs.
    """
    preflight()
    runner = ExperimentRunner(repetitions=bench_repetitions(), base_seed=2023)
    return runner.compare_on_shared_trace(
        figure_specs(figure), n_workers=bench_workers()
    )


def _algorithm_spec(name: str, matching_backend: Optional[str] = None) -> ExperimentSpec:
    """One seeded spec for a per-algorithm kernel row (fig1 workload)."""
    workload, n_racks, full_requests, b_values = FIGURE_SETTINGS["fig1"]
    simulation: Dict[str, object] = {"checkpoints": 10}
    if matching_backend is not None:
        simulation["matching_backend"] = matching_backend
    return ExperimentSpec(
        algorithm={"name": name, "b": b_values[1], "alpha": DEFAULT_ALPHA,
                   "params": dict(ALGORITHM_BENCH_SETTINGS[name])},
        traffic={"name": workload,
                 "params": {"n_nodes": n_racks,
                            "n_requests": scaled_requests(full_requests)}},
        simulation=simulation,
        seed=2023,
    )


def _algorithm_rows(rounds: int, numba_active: bool) -> Dict[str, Dict[str, object]]:
    """Per-algorithm reference/fast/numba timings with bit-identity gates.

    Same honest-recording contract as the figure arms: every arm must
    reproduce the reference arm's totals exactly before any timing is
    written (randomized draws are mode-consistent across backends by the
    rng tier's differential tests, so totals agree bit-for-bit), and the
    numba arm is timed only where the compiled backend is genuinely
    active.  Each row records the effective ``rng_kernel`` the run drew
    under, read back from the run's own provenance.
    """
    from repro.simulation.runner import execute_experiment_spec

    rows: Dict[str, Dict[str, object]] = {}
    for name in ALGORITHM_BENCH_SETTINGS:
        timings: Dict[str, float] = {}
        totals: Dict[str, tuple] = {}
        rng_kernel: Optional[str] = None
        arms = [("reference", "reference"), ("fast", "fast")]
        if numba_active:
            arms.append(("numba", "numba"))
        for _round in range(max(1, rounds)):
            for arm, backend in arms:
                spec = _algorithm_spec(name, matching_backend=backend)
                started = time.perf_counter()
                result = execute_experiment_spec(spec, store=False)
                elapsed = time.perf_counter() - started
                timings[arm] = min(elapsed, timings.get(arm, elapsed))
                totals[arm] = (
                    result.total_routing_cost,
                    result.total_reconfiguration_cost,
                    result.matched_fraction,
                    tuple(result.series.routing_cost.tolist()),
                )
                rng_kernel = result.extra.get("rng_kernel", rng_kernel)
        for arm, _backend in arms[1:]:
            if totals[arm] != totals["reference"]:
                raise RuntimeError(
                    f"{name}: {arm} arm disagrees with the reference kernel on "
                    "costs; run tests/test_rng_counter.py and the differential "
                    "test suite"
                )
        row: Dict[str, object] = {
            "reference_seconds": round(timings["reference"], 4),
            "fast_seconds": round(timings["fast"], 4),
            "speedup": round(timings["reference"] / timings["fast"], 3),
            "numba_active": numba_active,
            "rng_kernel": rng_kernel,
        }
        if numba_active:
            row["numba_seconds"] = round(timings["numba"], 4)
            row["numba_speedup"] = round(timings["fast"] / timings["numba"], 3)
        rows[name] = row
    return rows


def kernel_benchmark(
    figures: Sequence[str] = ("fig1", "fig2", "fig3", "fig4"),
    output_path: Optional[Path] = None,
    rounds: int = 3,
    n_workers: Optional[int] = None,
) -> Dict[str, Dict[str, float]]:
    """Time each figure panel: reference vs fast vs numba vs sharded fast.

    Every panel is run on ``matching_backend="reference"`` (the original
    per-request replay over the set-of-tuples kernel), on
    ``matching_backend="fast"`` (the array-backed kernel plus the batched
    engine path), on ``matching_backend="numba"`` when the compiled backend
    is genuinely active (numba installed and not masked — the uncompiled
    pure-Python test mode is excluded: it would measure the wrong thing),
    and on the fast backend sharded over ``n_workers`` processes (default
    :func:`bench_workers`), with identical specs and seeds; arms are
    interleaved for ``rounds`` rounds and the per-arm minimum wall-clock is
    recorded (best-of-N suppresses scheduler noise), then written with the
    speedup ratios to ``BENCH_kernel.json`` at the repo root.  All arms
    produce bit-identical costs (asserted here), so the timing deltas are
    attributable to the kernel, the replay path, and the sharding alone.
    ``speedup``/``numba_speedup`` are against the reference and fast arms
    respectively; ``parallel_efficiency`` is the parallel speedup over the
    sequential fast arm divided by the worker count (1.0 = perfect scaling;
    on a single-CPU host the pool is skipped and the column records the
    degenerate 1-worker run).  On hosts without an active numba backend the
    numba columns record ``numba_active: false`` so downstream readers can
    tell "not measured" from "measured slow".
    """
    from repro.matching import NUMBA_AVAILABLE, numba_backend_active
    from repro.matching.numba_bmatching import warmup_kernels

    numba_active = NUMBA_AVAILABLE and numba_backend_active()
    if numba_active:
        # JIT compilation must happen outside the measured region.
        warmup_kernels()
    workers = bench_workers() if n_workers is None else max(1, n_workers)
    report: Dict[str, Dict[str, float]] = {}
    for figure in figures:
        # Prewarm the shared spec-layer inputs (the topology cache) so all
        # arms are measured against identical, already-built
        # infrastructure and the timing delta isolates kernel + replay path.
        warm_spec = figure_specs(figure)[0].with_seed(2023)
        warm_spec.build_topology(warm_spec.build_trace())
        timings: Dict[str, float] = {}
        totals: Dict[str, Dict[str, float]] = {}
        arms = [("reference", "reference", 1), ("fast", "fast", 1),
                ("parallel", "fast", workers)]
        if numba_active:
            arms.insert(2, ("numba", "numba", 1))
        for _round in range(max(1, rounds)):
            for arm, backend, arm_workers in arms:
                # store=False: timing arms must measure computation, never
                # warm-store reads — an env-configured store would otherwise
                # poison the A/B comparison after the first round.
                runner = ExperimentRunner(repetitions=bench_repetitions(),
                                          base_seed=2023, store=False)
                specs = figure_specs(figure, matching_backend=backend)
                started = time.perf_counter()
                results = runner.compare_on_shared_trace(specs, n_workers=arm_workers)
                elapsed = time.perf_counter() - started
                timings[arm] = min(elapsed, timings.get(arm, elapsed))
                totals[arm] = {
                    label: agg.routing_cost_mean for label, agg in results.items()
                }
        for arm, _backend, _workers in arms[1:]:
            if totals[arm] != totals["reference"]:
                raise RuntimeError(
                    f"{figure}: {arm} arm disagrees with the reference kernel on "
                    "routing costs; run the differential test suite"
                )
        parallel_speedup = timings["fast"] / timings["parallel"]
        row: Dict[str, float] = {
            "reference_seconds": round(timings["reference"], 4),
            "fast_seconds": round(timings["fast"], 4),
            "speedup": round(timings["reference"] / timings["fast"], 3),
            "numba_active": numba_active,
            "parallel_seconds": round(timings["parallel"], 4),
            "parallel_workers": workers,
            "parallel_speedup": round(parallel_speedup, 3),
            "parallel_efficiency": round(parallel_speedup / workers, 3),
            "total_speedup": round(timings["reference"] / timings["parallel"], 3),
        }
        if numba_active:
            row["numba_seconds"] = round(timings["numba"], 4)
            row["numba_speedup"] = round(timings["fast"] / timings["numba"], 3)
            row["numba_total_speedup"] = round(
                timings["reference"] / timings["numba"], 3
            )
        report[figure] = row

    from repro.core.rng import resolve_rng_mode

    payload = {
        "description": "Wall-clock seconds per figure panel: reference kernel "
        "(per-request replay over BMatching) vs fast kernel (FastBMatching + "
        "batched engine path) vs the compiled numba kernel (when active) vs "
        "the fast kernel sharded over worker processes, identical "
        "specs/seeds and bit-identical costs. numba_speedup = fast_seconds "
        "/ numba_seconds; numba_active=false means the host had no compiled "
        "backend, not that it measured slow. parallel_efficiency = "
        "(fast_seconds / parallel_seconds) / parallel_workers. The "
        "'algorithms' section times the randomized/expert algorithms "
        "(uniform paging, hybrid expert combiner) per backend on the fig1 "
        "workload — the rows whose batched drive paths the figure panels "
        "do not reach; rng_mode is the effective randomness kernel every "
        "randomized arm drew under.",
        "scale": bench_scale(),
        "repetitions": bench_repetitions(),
        "workers": workers,
        "numba_active": numba_active,
        "rng_mode": resolve_rng_mode(None),
        "store": _store_provenance(),
        "figures": report,
        "algorithms": _algorithm_rows(rounds, numba_active),
    }
    path = KERNEL_BENCH_PATH if output_path is None else Path(output_path)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return report


def solver_benchmark(
    figures: Sequence[str] = ("fig1", "fig2", "fig3", "fig4"),
    output_path: Optional[Path] = None,
    rounds: int = 3,
) -> Dict[str, Dict[str, object]]:
    """Time the SO-BMA static blossom solve per figure: nx vs array tier.

    For every figure panel the aggregate demand of the panel's shared trace
    is computed once, and three arms then solve the panel's full ``b`` grid
    (the workload a cache-size ablation or a ``b``-sweep panel pays):

    ``nx``
        Today's reference path — one independent iterated solve per ``b``
        with the NetworkX kernel and memoisation disabled, i.e.
        ``sum(b_values)`` blossom rounds.
    ``array_kernel``
        The same independent solves on the flat-array kernel (memoisation
        still disabled), isolating the pure kernel speedup.
    ``array``
        The new default tier: array kernel plus demand-fingerprint memo and
        prefix-shared rounds, started cold — the whole grid costs
        ``max(b_values)`` blossom rounds.

    Honest-recording contract (same as :func:`kernel_benchmark`): before any
    timing, the benchmark asserts that nx and array return *identical*
    matchings for every ``b`` in the grid and that a full SO-BMA figure run
    (via the simulation engine) produces bit-identical costs and checkpoint
    series under ``solver_backend="nx"`` and ``"array"``.  Arms are
    interleaved for ``rounds`` rounds and the per-arm minimum is recorded,
    then written to ``BENCH_solver.json`` at the repo root.
    """
    import os as _os
    import numpy as _np
    from dataclasses import replace as _replace

    from repro.experiments.specs import spawn_seeds
    from repro.matching import iterated_max_weight_b_matching, solver_cache_clear
    from repro.matching.blossom import max_weight_matching_arrays
    from repro.matching.numba_bmatching import numba_backend_active
    from repro.simulation.runner import execute_experiment_spec

    report: Dict[str, Dict[str, object]] = {}
    saved_cache_env = _os.environ.get("REPRO_SOLVER_CACHE")

    def _set_memo(enabled: bool) -> None:
        # Pin both arms to known cache settings rather than inheriting the
        # operator's REPRO_SOLVER_CACHE: an environment with the memo
        # disabled would otherwise silently turn the "array + memo" arm into
        # a kernel-only measurement while the JSON still claimed
        # prefix-shared rounds.  The original value is restored on exit.
        _os.environ["REPRO_SOLVER_CACHE"] = "16" if enabled else "0"

    try:
        for figure in figures:
            _workload, _n_racks, _full_requests, b_values = FIGURE_SETTINGS[figure]
            seed = spawn_seeds(2023, 1)[0]
            so_spec = next(
                s for s in figure_specs(figure) if s.algorithm.name == "so-bma"
            ).with_seed(seed)
            trace = so_spec.build_trace()
            topology = so_spec.build_topology(trace)
            algo = so_spec.build_algorithm(topology)
            weights = algo.aggregate_demand(trace)
            n = topology.n_racks

            # --- bit-identity gate: no timing is recorded unless the array
            # tier reproduces the nx solver exactly, per b and end-to-end.
            _set_memo(False)
            for b in b_values:
                chosen_nx = iterated_max_weight_b_matching(weights, n, b, backend="nx")
                chosen_array = iterated_max_weight_b_matching(
                    weights, n, b, backend="array"
                )
                if chosen_nx != chosen_array:
                    raise RuntimeError(
                        f"{figure}: array solver disagrees with nx at b={b}; "
                        "run tests/test_solver_backends.py"
                    )
            _set_memo(True)
            solver_cache_clear()
            run_costs: Dict[str, float] = {}
            baseline = None
            for backend in ("nx", "array"):
                run_spec = _replace(
                    so_spec, algorithm=_replace(so_spec.algorithm, solver_backend=backend)
                )
                result = execute_experiment_spec(run_spec, trace=trace)
                signature = (
                    result.total_routing_cost,
                    result.total_reconfiguration_cost,
                    result.matched_fraction,
                    tuple(result.series.routing_cost.tolist()),
                )
                run_costs[backend] = result.total_routing_cost
                if baseline is None:
                    baseline = signature
                elif signature != baseline:
                    raise RuntimeError(
                        f"{figure}: SO-BMA run costs differ between solver "
                        "backends; refusing to record timings"
                    )

            # --- blossom-substage arm: the single-round solve with the
            # compiled delta-scan/dual-update substage vs the pure loop,
            # gated on bit-identity of the returned matchings.  On hosts
            # without numba the "compiled" leg runs the same staged code as
            # plain Python (numba_solver_active below records which one was
            # measured).
            blossom_edges = [(u, v, w) for (u, v), w in weights.items()]
            if max_weight_matching_arrays(n, blossom_edges) != \
                    max_weight_matching_arrays(n, blossom_edges, compiled=True):
                raise RuntimeError(
                    f"{figure}: compiled blossom substage disagrees with the "
                    "pure solver; run tests/test_solver_backends.py"
                )

            # --- timing arms, interleaved, best-of-N.
            timings: Dict[str, float] = {}
            for _round in range(max(1, rounds)):
                _set_memo(False)
                for arm, backend in (("nx", "nx"), ("array_kernel", "array")):
                    started = time.perf_counter()
                    for b in b_values:
                        iterated_max_weight_b_matching(weights, n, b, backend=backend)
                    elapsed = time.perf_counter() - started
                    timings[arm] = min(elapsed, timings.get(arm, elapsed))
                _set_memo(True)
                solver_cache_clear()  # the combined arm is measured cold
                started = time.perf_counter()
                for b in b_values:
                    iterated_max_weight_b_matching(weights, n, b, backend="array")
                elapsed = time.perf_counter() - started
                timings["array"] = min(elapsed, timings.get("array", elapsed))
                for arm, compiled in (("blossom_pure", False),
                                      ("blossom_substage", True)):
                    started = time.perf_counter()
                    max_weight_matching_arrays(n, blossom_edges, compiled=compiled)
                    elapsed = time.perf_counter() - started
                    timings[arm] = min(elapsed, timings.get(arm, elapsed))

            report[figure] = {
                "b_values": list(b_values),
                "n_racks": n,
                "demand_pairs": len(weights),
                "nx_seconds": round(timings["nx"], 4),
                "array_kernel_seconds": round(timings["array_kernel"], 4),
                "array_seconds": round(timings["array"], 4),
                "kernel_speedup": round(timings["nx"] / timings["array_kernel"], 3),
                "speedup": round(timings["nx"] / timings["array"], 3),
                "blossom_rounds_nx": int(_np.sum(b_values)),
                "blossom_rounds_array": int(max(b_values)),
                "blossom_pure_seconds": round(timings["blossom_pure"], 4),
                "blossom_substage_seconds": round(timings["blossom_substage"], 4),
                "substage_speedup": round(
                    timings["blossom_pure"] / timings["blossom_substage"], 3
                ),
                "so_bma_routing_cost": run_costs["array"],
            }
    finally:
        if saved_cache_env is None:
            _os.environ.pop("REPRO_SOLVER_CACHE", None)
        else:
            _os.environ["REPRO_SOLVER_CACHE"] = saved_cache_env
        solver_cache_clear()

    payload = {
        "description": "Wall-clock seconds for the SO-BMA static blossom "
        "solve per figure panel, over the panel's full b grid on its "
        "aggregate demand: nx_seconds = the reference NetworkX path, one "
        "independent iterated solve per b, no memoisation (sum(b_values) "
        "blossom rounds); array_kernel_seconds = the same independent "
        "solves on the flat-array Galil kernel (pure kernel win); "
        "array_seconds = the default tier with demand-fingerprint "
        "memoisation and prefix-shared rounds, started cold (max(b_values) "
        "rounds).  speedup = nx_seconds / array_seconds; kernel_speedup = "
        "nx_seconds / array_kernel_seconds.  blossom_pure_seconds / "
        "blossom_substage_seconds time one single-round max-weight solve on "
        "the panel demand without and with the compiled delta-scan/"
        "dual-update substage (numba_solver_active says whether the "
        "substage genuinely compiled or ran its pure-Python staging).  "
        "Timings are recorded only after asserting that both backends "
        "return identical matchings for every b, that the substage leg "
        "reproduces the pure solve exactly, and bit-identical SO-BMA "
        "figure costs end-to-end (so_bma_routing_cost).",
        "scale": bench_scale(),
        "rounds": rounds,
        "numba_solver_active": numba_backend_active(),
        "store": _store_provenance(),
        "figures": report,
    }
    path = SOLVER_BENCH_PATH if output_path is None else Path(output_path)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return report


def _select(results: Mapping[str, AggregateResult], prefixes: Sequence[str]) -> Dict[str, AggregateResult]:
    return {
        label: result
        for label, result in results.items()
        if any(label.startswith(prefix) for prefix in prefixes)
    }


def routing_cost_table(results: Mapping[str, AggregateResult], title: str) -> str:
    """Panel (a): cumulative routing cost vs. number of requests."""
    selected = _select(results, ("rbma", "bma", "oblivious"))
    return format_series_table(selected, metric="routing_cost", title=title)


def execution_time_table(results: Mapping[str, AggregateResult], title: str) -> str:
    """Panel (b): cumulative execution time vs. number of requests."""
    selected = _select(results, ("rbma", "bma"))
    return format_series_table(selected, metric="elapsed_seconds", title=title,
                               float_format="{:.3f}")


def best_of_table(results: Mapping[str, AggregateResult], title: str) -> str:
    """Panel (c): R-BMA vs BMA vs SO-BMA at the largest cache size."""
    largest_b = max(result.b for label, result in results.items() if label.startswith("rbma"))
    selected = {
        label: result
        for label, result in results.items()
        if result.b == largest_b and label.split(" ")[0] in ("rbma", "bma", "so-bma")
    }
    return format_series_table(selected, metric="routing_cost", title=title)


def summary_table(results: Mapping[str, AggregateResult], title: str) -> str:
    """Final-cost summary with reduction vs. the oblivious baseline."""
    oblivious_label = next(label for label in results if label.startswith("oblivious"))
    return title + "\n" + format_comparison_table(results, oblivious_label=oblivious_label)


def write_output(name: str, text: str) -> None:
    """Print a table and persist it under ``benchmarks/output/``."""
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)
