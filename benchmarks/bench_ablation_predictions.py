"""Ablation A7 — prediction-augmented algorithms (the paper's §5 outlook).

Compares the purely online R-BMA against the prediction-based PredictiveBMA
and the robust combiner HybridBMA on the Facebook-database-like workload
(strong but drifting temporal structure).  The question from the paper's
conclusion is whether predictions can help without giving up robustness; the
combiner should track the better of its two experts up to a constant factor.
"""

import _harness as harness

from repro.analysis import format_comparison_table
from repro.simulation import ExperimentRunner, RunSpec

ALGORITHMS = {
    "rbma": {},
    "predictive": {"period": 500, "window": 2000},
    "hybrid": {"period": 500, "window": 2000},
    "oblivious": {},
}


def _run():
    workload_kwargs = {"n_nodes": 100, "n_requests": harness.scaled_requests(350_000)}
    specs = [
        RunSpec(algorithm=name, workload="facebook-database", b=12,
                alpha=harness.DEFAULT_ALPHA, workload_kwargs=workload_kwargs,
                algorithm_kwargs=kwargs, checkpoints=5)
        for name, kwargs in ALGORITHMS.items()
    ]
    harness.check_specs_picklable(specs)
    runner = ExperimentRunner(repetitions=harness.bench_repetitions(), base_seed=29)
    return runner.compare_on_shared_trace(specs, n_workers=harness.bench_workers())


def test_ablation_predictions(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    oblivious_label = next(label for label in results if label.startswith("oblivious"))
    table = format_comparison_table(results, oblivious_label=oblivious_label)
    harness.write_output(
        "ablation_predictions",
        "Ablation A7 — prediction-augmented algorithms (facebook-database, b = 12)\n" + table,
    )
