"""Ablation A1 — cache size (b) sweep.

The paper varies b over three values per figure; this ablation sweeps a wider
range on the Facebook-database-like workload to show the diminishing-returns
curve of adding optical switches, for both R-BMA and BMA, together with the
matched-traffic share.
"""

import _harness as harness

from repro.analysis import format_comparison_table
from repro.config import SweepConfig
from repro.simulation import run_sweep

B_VALUES = (1, 2, 4, 6, 9, 12, 18, 24)


def _run_sweep():
    sweep = SweepConfig(b_values=B_VALUES, alpha_values=(harness.DEFAULT_ALPHA,),
                        algorithms=("rbma", "bma", "oblivious"))
    results = run_sweep(
        sweep,
        workload="facebook-database",
        workload_kwargs={"n_nodes": 100,
                         "n_requests": harness.scaled_requests(350_000)},
        repetitions=harness.bench_repetitions(),
        base_seed=11,
        checkpoints=5,
        n_workers=harness.bench_workers(),
    )
    return {r.label: r for r in results}


def test_ablation_cache_size(benchmark):
    results = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    oblivious_label = next(label for label in results if label.startswith("oblivious"))
    table = format_comparison_table(results, oblivious_label=oblivious_label)
    harness.write_output("ablation_cache_size", "Ablation A1 — cache size sweep\n" + table)
