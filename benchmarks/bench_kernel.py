"""Kernel A/B/C benchmark — reference vs fast vs numba backend per figure.

Runs every figure panel on identical specs and seeds, once per
``matching_backend`` (``"reference"`` = original per-request replay over the
set-of-tuples kernel; ``"fast"`` = array-backed kernel plus the batched
engine path; ``"numba"`` = compiled scan kernels, timed only where numba is
genuinely installed), asserts the costs are bit-identical, and records the
wall-clock seconds and speedup ratios in ``BENCH_kernel.json`` at the repo
root.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel.py [fig1 fig2 ...]

Figures default to all four; ``REPRO_BENCH_SCALE`` scales the trace lengths
exactly as for the figure benchmarks.  Can also be collected by pytest, in
which case it benchmarks ``fig1`` only (the acceptance figure).
"""

import sys

import _harness as harness


def _numba_col(row) -> str:
    if row.get("numba_active"):
        return (
            f"numba {row['numba_seconds']:7.3f}s "
            f"({row['numba_speedup']:5.2f}x vs fast)   "
        )
    return "numba     n/a (backend inactive)   "


def _report(figures) -> dict:
    report = harness.kernel_benchmark(figures=tuple(figures))
    width = max(len(f) for f in report)
    print(f"\nkernel A/B/C (written to {harness.KERNEL_BENCH_PATH}):")
    for figure, row in report.items():
        print(
            f"  {figure:<{width}}  reference {row['reference_seconds']:7.3f}s   "
            f"fast {row['fast_seconds']:7.3f}s ({row['speedup']:5.2f}x)   "
            f"{_numba_col(row)}"
            f"parallel[{row['parallel_workers']}w] {row['parallel_seconds']:7.3f}s "
            f"({row['parallel_speedup']:5.2f}x more, eff {row['parallel_efficiency']:.2f}, "
            f"{row['total_speedup']:5.2f}x total)"
        )
    # The per-algorithm rows (uniform paging scan, hybrid expert-stepping
    # scan) live in the same JSON payload, next to the figure panels.
    import json

    algorithms = json.loads(harness.KERNEL_BENCH_PATH.read_text())["algorithms"]
    awidth = max(len(a) for a in algorithms)
    print("per-algorithm drive paths (fig1 workload):")
    for name, row in algorithms.items():
        print(
            f"  {name:<{awidth}}  reference {row['reference_seconds']:7.3f}s   "
            f"fast {row['fast_seconds']:7.3f}s ({row['speedup']:5.2f}x)   "
            f"{_numba_col(row)}"
            f"rng {row['rng_kernel']}"
        )
    return report


def test_kernel_speedup_fig1(benchmark):
    """Fast backend must at least double fig1 panel throughput."""
    report = benchmark.pedantic(_report, args=(["fig1"],), rounds=1, iterations=1)
    assert report["fig1"]["speedup"] >= 2.0


if __name__ == "__main__":
    figures = sys.argv[1:] or list(harness.FIGURE_SETTINGS)
    unknown = [f for f in figures if f not in harness.FIGURE_SETTINGS]
    if unknown:
        raise SystemExit(f"unknown figures: {unknown} (known: {list(harness.FIGURE_SETTINGS)})")
    harness.preflight()
    _report(figures)
