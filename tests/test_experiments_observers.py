"""Tests for the engine's observer protocol."""

import io

import pytest

from repro.config import MatchingConfig, SimulationConfig
from repro.errors import SimulationError
from repro.experiments import (
    CostTraceObserver,
    ExperimentSpec,
    ObserverList,
    ProgressObserver,
    SimulationObserver,
    ValidationObserver,
)
from repro.core import ObliviousRouting, RBMA
from repro.simulation import run_simulation
from repro.topology import LeafSpineTopology
from repro.traffic import zipf_pair_trace


@pytest.fixture
def trace():
    return zipf_pair_trace(n_nodes=8, n_requests=120, seed=2)


@pytest.fixture
def topology():
    return LeafSpineTopology(n_racks=8)


class RecordingObserver(SimulationObserver):
    def __init__(self, batch_interval=None):
        self.batch_interval = batch_interval
        self.calls = []
        self.batches = []

    def on_start(self, context):
        self.calls.append("start")

    def on_request_batch(self, context, start, stop):
        self.calls.append("batch")
        self.batches.append((start, stop))

    def on_checkpoint(self, context, event):
        self.calls.append("checkpoint")

    def on_end(self, context, result):
        self.calls.append("end")
        self.result = result


class TestHookSequence:
    def test_start_and_end_called_once(self, topology, trace):
        obs = RecordingObserver()
        result = run_simulation(ObliviousRouting(topology, MatchingConfig(b=2)), trace,
                                SimulationConfig(checkpoints=5), observers=[obs])
        assert obs.calls[0] == "start"
        assert obs.calls[-1] == "end"
        assert obs.calls.count("start") == 1
        assert obs.calls.count("end") == 1
        assert obs.result is result

    def test_checkpoints_match_series(self, topology, trace):
        obs = RecordingObserver()
        result = run_simulation(ObliviousRouting(topology, MatchingConfig(b=2)), trace,
                                SimulationConfig(checkpoints=6), observers=[obs])
        assert obs.calls.count("checkpoint") == len(result.series.requests)

    def test_batches_cover_trace_without_overlap(self, topology, trace):
        obs = RecordingObserver()
        run_simulation(ObliviousRouting(topology, MatchingConfig(b=2)), trace,
                       SimulationConfig(checkpoints=5), observers=[obs])
        # Consecutive, gap-free, and ending at the last request.
        assert obs.batches[0][0] == 0
        for (_, stop), (start, _) in zip(obs.batches, obs.batches[1:]):
            assert start == stop
        assert obs.batches[-1][1] == len(trace)

    def test_batch_interval_one_fires_per_request(self, topology, trace):
        obs = RecordingObserver(batch_interval=1)
        run_simulation(ObliviousRouting(topology, MatchingConfig(b=2)), trace,
                       SimulationConfig(checkpoints=5), observers=[obs])
        assert len(obs.batches) == len(trace)
        assert all(stop - start == 1 for start, stop in obs.batches)

    def test_no_observers_no_overhead_path(self, topology, trace):
        # The engine result is identical with and without observers attached.
        a = run_simulation(ObliviousRouting(topology, MatchingConfig(b=2)), trace,
                           SimulationConfig(checkpoints=5))
        b = run_simulation(ObliviousRouting(topology, MatchingConfig(b=2)), trace,
                           SimulationConfig(checkpoints=5),
                           observers=[RecordingObserver(batch_interval=1)])
        assert a.total_routing_cost == b.total_routing_cost
        assert (a.series.routing_cost == b.series.routing_cost).all()

    def test_non_observer_rejected(self, topology, trace):
        with pytest.raises(SimulationError, match="SimulationObserver"):
            run_simulation(ObliviousRouting(topology, MatchingConfig(b=2)), trace,
                           observers=[object()])


class TestObserverList:
    def test_fans_out_in_order(self):
        a, b = RecordingObserver(), RecordingObserver()
        fan = ObserverList([a, b])
        fan.on_start(None)
        assert a.calls == ["start"] and b.calls == ["start"]

    def test_min_batch_interval_wins(self):
        fan = ObserverList([RecordingObserver(), RecordingObserver(batch_interval=3),
                            RecordingObserver(batch_interval=7)])
        assert fan.batch_interval == 3
        assert ObserverList([RecordingObserver()]).batch_interval is None


class TestBundledObservers:
    def test_validation_observer_checks_every_request(self, topology, trace):
        obs = ValidationObserver()
        run_simulation(RBMA(topology, MatchingConfig(b=2, alpha=4), rng=0), trace,
                       SimulationConfig(checkpoints=5), observers=[obs])
        assert obs.checks == len(trace)

    def test_validation_observer_checkpoint_mode(self, topology, trace):
        obs = ValidationObserver(every_request=False)
        result = run_simulation(RBMA(topology, MatchingConfig(b=2, alpha=4), rng=0), trace,
                                SimulationConfig(checkpoints=5), observers=[obs])
        assert obs.checks == len(result.series.requests)

    def test_legacy_validate_flag_still_works(self, topology, trace):
        result = run_simulation(RBMA(topology, MatchingConfig(b=2, alpha=4), rng=0), trace,
                                SimulationConfig(checkpoints=5), validate=True)
        assert result.total_routing_cost >= 0

    def test_cost_trace_observer_mirrors_series(self, topology, trace):
        obs = CostTraceObserver()
        result = run_simulation(ObliviousRouting(topology, MatchingConfig(b=2)), trace,
                                SimulationConfig(checkpoints=5), observers=[obs])
        assert [e.requests_served for e in obs.events] == result.series.requests.tolist()
        assert [e.routing_cost for e in obs.events] == result.series.routing_cost.tolist()
        assert obs.events[-1].total_cost == result.total_cost
        assert obs.result is result

    def test_cost_trace_observer_callback(self, topology, trace):
        seen = []
        obs = CostTraceObserver(callback=seen.append)
        run_simulation(ObliviousRouting(topology, MatchingConfig(b=2)), trace,
                       SimulationConfig(checkpoints=4), observers=[obs])
        assert seen == obs.events

    def test_progress_observer_writes_to_stream(self, topology, trace):
        stream = io.StringIO()
        obs = ProgressObserver(stream=stream)
        run_simulation(ObliviousRouting(topology, MatchingConfig(b=2)), trace,
                       SimulationConfig(checkpoints=3), observers=[obs])
        output = stream.getvalue()
        assert "oblivious on zipf" in output
        assert "done:" in output
        assert "100.0%" in output


class TestSpecIntegration:
    def test_observers_via_spec_execute(self, topology):
        obs = CostTraceObserver()
        spec = ExperimentSpec(
            algorithm={"name": "oblivious", "b": 2},
            traffic={"name": "zipf", "params": {"n_nodes": 8, "n_requests": 80}},
            simulation={"checkpoints": 4},
            seed=1,
        )
        result = spec.execute(observers=[obs])
        assert obs.result is not None
        assert obs.result.total_routing_cost == result.total_routing_cost

    def test_runner_attaches_observers(self):
        obs = CostTraceObserver()
        from repro.simulation import ExperimentRunner

        spec = ExperimentSpec(
            algorithm={"name": "oblivious", "b": 2},
            traffic={"name": "zipf", "params": {"n_nodes": 8, "n_requests": 80}},
            simulation={"checkpoints": 4},
        )
        ExperimentRunner(repetitions=2, base_seed=0, observers=[obs]).run(spec)
        assert len(obs.events) == 8  # 4 checkpoints × 2 repetitions
