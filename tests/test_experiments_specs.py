"""Tests for the declarative ExperimentSpec tree and seed policy."""

import json

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.experiments import (
    AlgorithmSpec,
    ExperimentSpec,
    TopologySpec,
    TrafficSpec,
    expand_grid,
    spawn_seeds,
)
from repro.simulation import ExperimentRunner, RunSpec, run_experiments


def _spec(**overrides) -> ExperimentSpec:
    kwargs = dict(
        algorithm={"name": "rbma", "b": 2, "alpha": 4},
        traffic={"name": "zipf", "params": {"n_nodes": 10, "n_requests": 200,
                                            "exponent": 1.3}},
        seed=5,
    )
    kwargs.update(overrides)
    return ExperimentSpec(**kwargs)


class TestConstruction:
    @pytest.mark.smoke
    def test_dict_coercion(self):
        spec = _spec()
        assert isinstance(spec.algorithm, AlgorithmSpec)
        assert isinstance(spec.traffic, TrafficSpec)
        assert isinstance(spec.topology, TopologySpec)
        assert isinstance(spec.simulation, SimulationConfig)
        assert spec.topology.name == "fat-tree"

    def test_string_coercion(self):
        spec = ExperimentSpec(algorithm="oblivious", traffic="uniform", topology="ring")
        assert spec.algorithm.name == "oblivious"
        assert spec.traffic.name == "uniform"
        assert spec.topology.name == "ring"

    def test_label(self):
        assert _spec().label == "rbma (b: 2)"
        assert _spec(name="panel 1a").label == "panel 1a"

    def test_repeats_validated(self):
        with pytest.raises(ConfigurationError, match="repeats"):
            _spec(repeats=0)

    @pytest.mark.smoke
    def test_eager_validation_of_unknown_algorithm(self):
        spec = _spec(algorithm={"name": "rmba", "b": 2})
        with pytest.raises(ConfigurationError, match="did you mean 'rbma'"):
            spec.validate()

    def test_from_dict_validates_eagerly(self):
        data = _spec().to_dict()
        data["topology"] = {"name": "fatree"}
        with pytest.raises(ConfigurationError, match="fat-tree"):
            ExperimentSpec.from_dict(data)

    def test_from_dict_rejects_unknown_keys(self):
        data = _spec().to_dict()
        data["workload"] = "zipf"  # the legacy RunSpec field name
        with pytest.raises(ConfigurationError, match="unknown ExperimentSpec keys"):
            ExperimentSpec.from_dict(data)

    def test_algorithm_spec_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown AlgorithmSpec keys"):
            AlgorithmSpec.from_dict({"name": "rbma", "beta": 3})

    def test_matching_params_validated(self):
        with pytest.raises(ConfigurationError, match="b must be"):
            _spec(algorithm={"name": "rbma", "b": 0}).validate()


class TestSerialisation:
    @pytest.mark.smoke
    def test_dict_round_trip(self):
        spec = _spec(repeats=3, name="x",
                     topology={"name": "leaf-spine", "params": {"n_spines": 2}})
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = _spec()
        text = spec.to_json()
        json.loads(text)  # valid JSON document
        assert ExperimentSpec.from_json(text) == spec

    def test_file_round_trip(self, tmp_path):
        spec = _spec()
        path = tmp_path / "spec.json"
        spec.save_json(path)
        assert ExperimentSpec.load_json(path) == spec

    def test_malformed_json_raises_configuration_error(self):
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            ExperimentSpec.from_json("{not json")

    def test_non_object_json_rejected(self):
        with pytest.raises(ConfigurationError, match="must be an object"):
            ExperimentSpec.from_json("[1, 2]")

    def test_traffic_spec_requires_name(self):
        with pytest.raises(ConfigurationError, match="requires a workload 'name'"):
            TrafficSpec.from_dict({"params": {}})

    def test_experiment_spec_requires_algorithm_and_traffic(self):
        with pytest.raises(ConfigurationError, match="requires 'algorithm'"):
            ExperimentSpec.from_dict({"traffic": {"name": "zipf"}})


class TestBuilding:
    def test_build_trace_topology_algorithm(self):
        spec = _spec()
        trace = spec.build_trace()
        topology = spec.build_topology(trace)
        algorithm = spec.build_algorithm(topology)
        assert trace.n_nodes == 10
        assert topology.n_racks == 10
        assert algorithm.name == "rbma"
        assert algorithm.config.b == 2

    def test_topology_params_pin_size(self):
        spec = _spec(topology={"name": "fat-tree", "params": {"n_racks": 32}})
        trace = spec.build_trace()
        assert spec.build_topology(trace).n_racks >= 32

    def test_self_sized_topologies_ignore_trace_hint(self):
        spec = _spec(traffic={"name": "zipf", "params": {"n_nodes": 8, "n_requests": 50}},
                     topology={"name": "hypercube", "params": {"dimension": 3}})
        trace = spec.build_trace()
        assert spec.build_topology(trace).n_racks == 8


class TestSeedPolicy:
    @pytest.mark.smoke
    def test_spawn_seeds_deterministic_and_distinct(self):
        assert spawn_seeds(0, 5) == spawn_seeds(0, 5)
        assert len(set(spawn_seeds(0, 100))) == 100
        assert spawn_seeds(0, 3) != spawn_seeds(1, 3)

    def test_spawn_seeds_prefix_stable(self):
        """Growing the repetition count keeps earlier seeds unchanged."""
        assert spawn_seeds(7, 8)[:3] == spawn_seeds(7, 3)

    def test_spawn_seeds_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            spawn_seeds(0, 0)

    def test_spawn_matches_numpy_seedsequence(self):
        expected = [int(c.generate_state(1)[0])
                    for c in np.random.SeedSequence(13).spawn(4)]
        assert spawn_seeds(13, 4) == expected

    def test_repetition_seeds_are_spawned(self):
        spec = _spec(repeats=4, seed=9)
        assert spec.repetition_seeds() == spawn_seeds(9, 4)

    def test_single_repetition_uses_base_seed(self):
        assert _spec(repeats=1, seed=9).repetition_seeds() == [9]

    def test_run_equals_execute_for_single_repeat(self):
        spec = _spec(seed=7)
        assert spec.run().routing_cost_mean == spec.execute().total_routing_cost

    def test_simulation_config_cannot_smuggle_repeat_policy(self):
        with pytest.raises(ConfigurationError, match="repeat/seed policy"):
            _spec(simulation={"checkpoints": 4, "repetitions": 5})
        with pytest.raises(ConfigurationError, match="repeat/seed policy"):
            _spec(simulation=SimulationConfig(checkpoints=4, seed=3))

    def test_runner_seeds_are_spawned_not_incremented(self):
        runner = ExperimentRunner(repetitions=3, base_seed=2)
        seeds = runner.repetition_seeds()
        assert seeds == spawn_seeds(2, 3)
        assert seeds != [2, 1002, 2002]  # the old hand-incremented scheme

    def test_run_seeds_decouple_trace_and_algorithm(self):
        trace_seed, algo_seed = _spec().run_seeds()
        assert trace_seed != algo_seed
        assert _spec().run_seeds() == (trace_seed, algo_seed)

    def test_none_seed_propagates(self):
        spec = _spec(seed=None, repeats=2)
        assert spec.repetition_seeds() == [None, None]
        assert spec.run_seeds() == (None, None)

    def test_run_experiments_records_distinct_spawned_seeds(self):
        spec = _spec(repeats=3, seed=21,
                     traffic={"name": "zipf", "params": {"n_nodes": 8, "n_requests": 60}})
        agg = run_experiments([spec])[0]
        assert agg.repetitions == 3
        # Each repetition runs under its own spawned seed and is reproducible.
        rerun = run_experiments([spec])[0]
        assert agg.routing_cost_mean == rerun.routing_cost_mean

    def test_executions_with_distinct_seeds_differ(self):
        costs = {
            _spec(seed=seed).execute().total_routing_cost
            for seed in spawn_seeds(0, 3)
        }
        assert len(costs) > 1  # different seeds give different realisations


class TestProvenance:
    def test_result_records_spec(self):
        spec = _spec()
        result = spec.execute()
        assert result.spec == spec.to_dict()
        assert ExperimentSpec.from_dict(result.spec) == spec
        assert result.seed == spec.seed

    def test_provenance_survives_json(self, tmp_path):
        result = _spec().execute()
        path = tmp_path / "result.json"
        result.save_json(path)
        from repro.simulation import RunResult

        loaded = RunResult.load_json(path)
        assert ExperimentSpec.from_dict(loaded.spec) == _spec()


class TestGridExpansion:
    def test_cartesian_order_later_keys_fastest(self):
        specs = expand_grid(_spec(), {"algorithm.name": ["rbma", "bma"],
                                      "algorithm.b": [2, 4]})
        assert [(s.algorithm.name, s.algorithm.b) for s in specs] == [
            ("rbma", 2), ("rbma", 4), ("bma", 2), ("bma", 4)
        ]

    def test_nested_param_paths(self):
        specs = expand_grid(_spec(), {"traffic.params.n_nodes": [8, 12]})
        assert [s.traffic.params["n_nodes"] for s in specs] == [8, 12]
        # untouched params survive
        assert all(s.traffic.params["exponent"] == 1.3 for s in specs)

    def test_top_level_fields(self):
        specs = expand_grid(_spec(), {"seed": [1, 2, 3]})
        assert [s.seed for s in specs] == [1, 2, 3]

    def test_custom_name_dropped_on_expansion(self):
        specs = expand_grid(_spec(name="hand label"),
                            {"algorithm.name": ["rbma", "oblivious"]})
        assert [s.label for s in specs] == ["rbma (b: 2)", "oblivious (b: 2)"]

    def test_empty_grid_returns_base(self):
        base = _spec()
        assert expand_grid(base, {}) == [base]

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown spec field 'workload'"):
            expand_grid(_spec(), {"workload": ["zipf"]})

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigurationError, match="must be a sequence"):
            expand_grid(_spec(), {"algorithm.b": 4})
        with pytest.raises(ConfigurationError, match="non-empty"):
            expand_grid(_spec(), {"algorithm.b": []})

    def test_expanded_specs_are_validated(self):
        with pytest.raises(ConfigurationError, match="did you mean"):
            expand_grid(_spec(), {"algorithm.name": ["rmba"]})


class TestRunSpecShim:
    def test_conversion_preserves_fields(self):
        legacy = RunSpec(algorithm="bma", workload="uniform", b=3, alpha=2.0,
                         topology="ring", workload_kwargs={"n_nodes": 6, "n_requests": 50},
                         algorithm_kwargs={}, seed=4, checkpoints=7)
        spec = legacy.to_experiment_spec()
        assert spec.algorithm.name == "bma"
        assert spec.algorithm.b == 3
        assert spec.traffic.name == "uniform"
        assert spec.topology.name == "ring"
        assert spec.simulation.checkpoints == 7
        assert spec.seed == 4

    def test_legacy_and_structured_specs_agree(self):
        legacy = RunSpec(algorithm="oblivious", workload="zipf", b=2, alpha=4.0,
                         workload_kwargs={"n_nodes": 8, "n_requests": 100}, seed=3,
                         checkpoints=5)
        from repro.simulation import execute_run_spec

        a = execute_run_spec(legacy)
        b = execute_run_spec(legacy.to_experiment_spec())
        assert a.total_routing_cost == b.total_routing_cost
        assert (a.series.routing_cost == b.series.routing_cost).all()
