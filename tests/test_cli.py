"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_no_command_prints_usage_and_exits_zero(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "usage:" in out

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.algorithm == "rbma"
        assert args.workload == "facebook-database"
        assert args.b == 12


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "rbma" in out and "facebook-database" in out and "fat-tree" in out

    def test_simulate_small(self, capsys):
        code = main([
            "simulate", "--workload", "zipf", "--nodes", "10", "--requests", "300",
            "--b", "2", "--algorithm", "rbma", "--checkpoints", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "final routing cost" in out
        assert "rbma" in out

    def test_compare_with_plot(self, capsys):
        code = main([
            "compare", "--workload", "zipf", "--nodes", "10", "--requests", "300",
            "--b", "2", "--algorithms", "rbma", "oblivious", "--checkpoints", "4", "--plot",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "reduction vs oblivious" in out
        assert "legend:" in out

    def test_generate_and_analyze_trace(self, tmp_path, capsys):
        out_path = tmp_path / "trace.csv"
        assert main([
            "generate-trace", "--workload", "uniform", "--nodes", "8",
            "--requests", "200", "--out", str(out_path),
        ]) == 0
        assert out_path.exists()
        assert main(["analyze-trace", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "rereference_rate" in out

    def test_analyze_missing_file_returns_error_code(self, tmp_path, capsys):
        code = main(["analyze-trace", str(tmp_path / "missing.csv")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_algorithm_returns_error_code(self, capsys):
        code = main([
            "simulate", "--workload", "zipf", "--nodes", "8", "--requests", "100",
            "--algorithm", "does-not-exist",
        ])
        assert code == 2

    def test_typo_error_message_suggests_correction(self, capsys):
        code = main([
            "simulate", "--workload", "zipf", "--nodes", "8", "--requests", "100",
            "--algorithm", "rmba",
        ])
        assert code == 2
        assert "did you mean 'rbma'" in capsys.readouterr().err

    def test_sweep(self, capsys):
        code = main([
            "sweep", "--workload", "zipf", "--nodes", "10", "--requests", "200",
            "--b-values", "1", "2", "--algorithms", "rbma", "oblivious",
            "--checkpoints", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "rbma (b: 2)" in out
        assert "reduction vs oblivious" in out

    def test_sweep_with_multiple_alphas_keeps_every_row(self, capsys):
        code = main([
            "sweep", "--workload", "zipf", "--nodes", "10", "--requests", "200",
            "--b-values", "2", "--alpha-values", "4", "8", "--algorithms", "rbma",
            "--checkpoints", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "rbma (b: 2, alpha: 4)" in out
        assert "rbma (b: 2, alpha: 8)" in out

    def test_list_includes_paging_policies(self, capsys):
        assert main(["list"]) == 0
        assert "marking" in capsys.readouterr().out


class TestRunSpecFile:
    def _write_spec(self, path, **overrides):
        import json

        data = {
            "algorithm": {"name": "rbma", "b": 2, "alpha": 4},
            "traffic": {"name": "zipf",
                        "params": {"n_nodes": 10, "n_requests": 250, "exponent": 1.3}},
            "simulation": {"checkpoints": 4},
            "seed": 11,
        }
        data.update(overrides)
        path.write_text(json.dumps(data))
        return data

    def test_run_spec_json(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        self._write_spec(spec_path)
        assert main(["run", str(spec_path)]) == 0
        out = capsys.readouterr().out
        assert "final routing cost" in out
        assert "rbma (b: 2)" in out

    def test_run_reproduces_hand_constructed_simulation(self, tmp_path, capsys):
        """Acceptance: a pure-JSON experiment equals the imperative API call."""
        import json

        from repro import ExperimentSpec, MatchingConfig, run_simulation
        from repro.core import RBMA
        from repro.topology import FatTreeTopology
        from repro.traffic import zipf_pair_trace

        spec_path, out_path = tmp_path / "spec.json", tmp_path / "results.json"
        self._write_spec(spec_path)
        assert main(["run", str(spec_path), "--out", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())

        spec = ExperimentSpec.load_json(spec_path)
        run_seed = spec.repetition_seeds()[0]
        trace_seed, algo_seed = spec.with_seed(run_seed).run_seeds()
        trace = zipf_pair_trace(n_nodes=10, n_requests=250, exponent=1.3, seed=trace_seed)
        algo = RBMA(FatTreeTopology(n_racks=10), MatchingConfig(b=2, alpha=4),
                    rng=algo_seed)
        expected = run_simulation(algo, trace)
        assert payload["runs"][0]["total_routing_cost"] == expected.total_routing_cost
        assert payload["aggregate"]["routing_cost_mean"] == expected.total_routing_cost
        assert payload["spec"] == spec.to_dict()

    def test_run_with_repeats_and_progress(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        self._write_spec(spec_path)
        assert main(["run", str(spec_path), "--repeats", "2", "--progress"]) == 0
        captured = capsys.readouterr()
        assert "final routing cost" in captured.out
        assert "[repro]" in captured.err  # progress observer output

    def test_run_missing_file_returns_error_code(self, tmp_path, capsys):
        code = main(["run", str(tmp_path / "missing.json")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_run_invalid_spec_returns_error_code(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        self._write_spec(spec_path, algorithm={"name": "rmba", "b": 2})
        code = main(["run", str(spec_path)])
        assert code == 2
        assert "did you mean 'rbma'" in capsys.readouterr().err

    def test_run_malformed_json_returns_error_code(self, tmp_path, capsys):
        """Regression: a syntactically broken spec file must not traceback."""
        spec_path = tmp_path / "broken.json"
        spec_path.write_text("{this is not json")
        assert main(["run", str(spec_path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "JSON" in err

    def test_run_wrongly_typed_spec_returns_error_code(self, tmp_path, capsys):
        """Regression: valid JSON with wrong value shapes used to traceback.

        ``"seed": "abc"`` survives JSON parsing and key validation, then
        exploded as a raw ValueError inside int(); the CLI must turn it
        into its usual one-line error instead.
        """
        spec_path = tmp_path / "spec.json"
        self._write_spec(spec_path, seed="abc")
        assert main(["run", str(spec_path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "does not describe a valid experiment" in err
        assert len(err.strip().splitlines()) == 1

    def test_run_non_object_spec_returns_error_code(self, tmp_path, capsys):
        spec_path = tmp_path / "list.json"
        spec_path.write_text("[1, 2, 3]")
        assert main(["run", str(spec_path)]) == 2
        assert "must be an object" in capsys.readouterr().err
