"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.algorithm == "rbma"
        assert args.workload == "facebook-database"
        assert args.b == 12


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "rbma" in out and "facebook-database" in out and "fat-tree" in out

    def test_simulate_small(self, capsys):
        code = main([
            "simulate", "--workload", "zipf", "--nodes", "10", "--requests", "300",
            "--b", "2", "--algorithm", "rbma", "--checkpoints", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "final routing cost" in out
        assert "rbma" in out

    def test_compare_with_plot(self, capsys):
        code = main([
            "compare", "--workload", "zipf", "--nodes", "10", "--requests", "300",
            "--b", "2", "--algorithms", "rbma", "oblivious", "--checkpoints", "4", "--plot",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "reduction vs oblivious" in out
        assert "legend:" in out

    def test_generate_and_analyze_trace(self, tmp_path, capsys):
        out_path = tmp_path / "trace.csv"
        assert main([
            "generate-trace", "--workload", "uniform", "--nodes", "8",
            "--requests", "200", "--out", str(out_path),
        ]) == 0
        assert out_path.exists()
        assert main(["analyze-trace", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "rereference_rate" in out

    def test_analyze_missing_file_returns_error_code(self, tmp_path, capsys):
        code = main(["analyze-trace", str(tmp_path / "missing.csv")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_algorithm_returns_error_code(self, capsys):
        code = main([
            "simulate", "--workload", "zipf", "--nodes", "8", "--requests", "100",
            "--algorithm", "does-not-exist",
        ])
        assert code == 2
