"""Property-based tests for the online matching algorithms (hypothesis).

These are the library's central invariants: for any request sequence, every
algorithm maintains a feasible b-matching, reports consistent costs, and the
cost model relations of the paper hold (e.g. the oblivious cost upper-bounds
every algorithm's routing cost from below by the matched-request count).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MatchingConfig
from repro.core import BMA, RBMA, GreedyBMA, ObliviousRouting, UniformBMatching
from repro.matching.validation import check_b_matching
from repro.topology import LeafSpineTopology
from repro.types import Request

N_NODES = 8
TOPOLOGY = LeafSpineTopology(n_racks=N_NODES)  # every pair has length 2

request_sequences = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=N_NODES - 1),
        st.integers(min_value=0, max_value=N_NODES - 1),
    ).filter(lambda p: p[0] != p[1]),
    min_size=1,
    max_size=80,
)
b_values = st.integers(min_value=1, max_value=4)
alpha_values = st.sampled_from([1.0, 2.0, 4.0, 8.0])


def _algorithms(config):
    return [
        RBMA(TOPOLOGY, config, rng=0),
        BMA(TOPOLOGY, config),
        GreedyBMA(TOPOLOGY, config),
        ObliviousRouting(TOPOLOGY, config),
        UniformBMatching(TOPOLOGY, config, rng=0),
    ]


@given(pairs=request_sequences, b=b_values, alpha=alpha_values)
@settings(max_examples=60, deadline=None)
def test_matching_always_feasible(pairs, b, alpha):
    config = MatchingConfig(b=b, alpha=alpha)
    for algo in _algorithms(config):
        for u, v in pairs:
            algo.serve(Request(u, v))
            check_b_matching(algo.matching.edges, N_NODES, b)


@given(pairs=request_sequences, b=b_values, alpha=alpha_values)
@settings(max_examples=60, deadline=None)
def test_cost_accounting_consistent(pairs, b, alpha):
    """Totals equal the sum of per-request outcomes, and reconfiguration cost
    equals alpha times the number of matching changes."""
    config = MatchingConfig(b=b, alpha=alpha)
    for algo in _algorithms(config):
        routing = 0.0
        reconf = 0.0
        for u, v in pairs:
            outcome = algo.serve(Request(u, v))
            routing += outcome.routing_cost
            reconf += outcome.reconfiguration_cost
        assert algo.total_routing_cost == routing
        assert algo.total_reconfiguration_cost == reconf
        changes = algo.matching.additions + algo.matching.removals
        assert reconf == changes * alpha


@given(pairs=request_sequences, b=b_values, alpha=alpha_values)
@settings(max_examples=60, deadline=None)
def test_routing_cost_between_matched_and_oblivious_extremes(pairs, b, alpha):
    """Routing cost is between 'every request matched' (1 per request) and the
    oblivious cost (ℓ_e per request)."""
    config = MatchingConfig(b=b, alpha=alpha)
    n = len(pairs)
    oblivious_cost = 2.0 * n
    for algo in _algorithms(config):
        algo.serve_all([Request(u, v) for u, v in pairs])
        assert n - 1e-9 <= algo.total_routing_cost <= oblivious_cost + 1e-9
        assert 0.0 <= algo.matched_fraction <= 1.0


@given(pairs=request_sequences, b=b_values)
@settings(max_examples=40, deadline=None)
def test_rbma_reproducible_per_seed(pairs, b):
    config = MatchingConfig(b=b, alpha=4.0)
    requests = [Request(u, v) for u, v in pairs]
    costs = []
    for _ in range(2):
        algo = RBMA(TOPOLOGY, config, rng=77)
        algo.serve_all(requests)
        costs.append(algo.total_cost)
    assert costs[0] == costs[1]


@given(pairs=request_sequences, alpha=alpha_values)
@settings(max_examples=40, deadline=None)
def test_larger_b_never_increases_rbma_routing_cost_much(pairs, alpha):
    """More optical switches can only help routing cost (up to randomness);
    we allow a small tolerance because R-BMA is randomized."""
    requests = [Request(u, v) for u, v in pairs]
    costs = []
    for b in (1, 4):
        algo = RBMA(TOPOLOGY, MatchingConfig(b=b, alpha=alpha), rng=5)
        algo.serve_all(requests)
        costs.append(algo.total_routing_cost)
    assert costs[1] <= costs[0] + 4.0  # slack of two matched requests' worth


@given(pairs=request_sequences, b=b_values, alpha=alpha_values)
@settings(max_examples=40, deadline=None)
def test_reset_gives_identical_rerun(pairs, b, alpha):
    config = MatchingConfig(b=b, alpha=alpha)
    requests = [Request(u, v) for u, v in pairs]
    for make in (lambda: BMA(TOPOLOGY, config), lambda: GreedyBMA(TOPOLOGY, config)):
        algo = make()
        algo.serve_all(requests)
        first = algo.total_cost
        algo.reset()
        algo.serve_all(requests)
        assert algo.total_cost == first
