"""Integration tests connecting the implementation to the paper's theorems.

These do not re-prove the theorems; they check that the *mechanisms* the
proofs rely on are implemented as described (the Theorem 1 request filter,
the Theorem 2 matching/caching invariant, the Lemma 1 star-graph embedding)
and that measured competitive ratios sit inside the proven envelope on small
adversarial instances.
"""

import math

import numpy as np
import pytest

from repro.analysis import (
    adversarial_paging_trace,
    empirical_competitive_ratio,
    optimal_dynamic_matching_cost,
    round_robin_adversary_trace,
)
from repro.config import MatchingConfig
from repro.core import RBMA, UniformBMatching
from repro.paging import offline_paging_cost
from repro.paging.bounds import rbma_upper_bound
from repro.topology import LeafSpineTopology, StarTopology
from repro.types import Request, as_requests


class TestTheorem1Mechanism:
    """R-BMA touches the matching only on every k_e-th request to a pair."""

    def test_reconfigurations_only_on_special_requests(self):
        topo = LeafSpineTopology(n_racks=6)  # lengths 2
        alpha = 10.0
        algo = RBMA(topo, MatchingConfig(b=2, alpha=alpha), rng=0)
        k_e = math.ceil(alpha / 2.0)
        rng = np.random.default_rng(0)
        pair_pool = [(0, 1), (2, 3), (0, 4), (1, 5)]
        counts = {p: 0 for p in pair_pool}
        for _ in range(400):
            pair = pair_pool[rng.integers(len(pair_pool))]
            counts[pair] += 1
            outcome = algo.serve(Request(*pair))
            touched = outcome.edges_added or outcome.edges_removed
            if counts[pair] % k_e != 0:
                assert not touched
            # (on special requests reconfiguration is allowed but not forced)

    def test_total_reconfigurations_bounded_by_special_requests(self):
        topo = LeafSpineTopology(n_racks=8)
        alpha = 8.0
        algo = RBMA(topo, MatchingConfig(b=2, alpha=alpha), rng=1)
        rng = np.random.default_rng(2)
        n = 600
        for _ in range(n):
            u, v = rng.choice(8, size=2, replace=False)
            algo.serve(Request(int(u), int(v)))
        k_e = math.ceil(alpha / 2.0)
        max_special = n // k_e + len(list(algo.matching.edges))
        # Each special request adds at most 1 edge and removals never exceed additions.
        assert algo.matching.additions <= n // k_e + 1
        assert algo.matching.removals <= algo.matching.additions


class TestTheorem2Invariant:
    """A pair is (unmarked-)matched iff it is cached at both endpoints."""

    def test_invariant_holds_throughout_uniform_run(self):
        topo = LeafSpineTopology(n_racks=8)
        algo = UniformBMatching(topo, MatchingConfig(b=2, alpha=1), rng=3)
        rng = np.random.default_rng(4)
        for _ in range(500):
            u, v = rng.choice(8, size=2, replace=False)
            algo.serve(Request(int(u), int(v)))
            matcher = algo._matcher
            for edge in algo.matching.edges:
                if edge in algo.matching.marked_edges:
                    continue
                assert edge in matcher.pager(edge[0])
                assert edge in matcher.pager(edge[1])
            # Conversely: anything cached at both endpoints is matched.
            for node in matcher.active_nodes:
                for page in matcher.pager(node).cache:
                    other = page[0] if page[1] == node else page[1]
                    if other in matcher.active_nodes and page in matcher.pager(other):
                        assert page in algo.matching


class TestLemma1Embedding:
    """The star construction turns (b, a)-matching into paging with bypassing."""

    def test_star_matching_cost_tracks_paging_cost(self):
        b = 3
        alpha = 4.0
        n_blocks = 60
        trace = adversarial_paging_trace(b=b, n_blocks=n_blocks, alpha=alpha, seed=5)
        topo = StarTopology(n_racks=b + 1, hub_is_rack=True)
        algo = RBMA(topo, MatchingConfig(b=b, alpha=alpha), rng=6)
        algo.serve_all(list(trace.requests()))
        # The induced paging instance: one page per leaf, one request per block.
        leaf_sequence = trace.destinations[:: int(alpha)].tolist()
        paging_opt = offline_paging_cost(leaf_sequence, b)
        # The matching algorithm's total cost is at least the optimal paging
        # cost (each paging fault forces either alpha routing cost or a
        # reconfiguration of cost alpha), up to the additive cost of the
        # first fills.
        assert algo.total_cost >= paging_opt
        # And it is finite/sane: not more than routing everything obliviously.
        assert algo.total_routing_cost <= len(trace) * 1.0 + n_blocks * alpha


class TestCompetitiveEnvelope:
    def test_rbma_ratio_within_corollary3_bound_on_adversarial_instances(self):
        b = 2
        alpha = 3.0
        topo = StarTopology(n_racks=b + 1, hub_is_rack=True)
        config = MatchingConfig(b=b, alpha=alpha)
        trace = round_robin_adversary_trace(b=b, n_blocks=30, alpha=alpha)
        requests = list(trace.requests())
        report = empirical_competitive_ratio(
            lambda: RBMA(topo, config, rng=8), requests, topo, config, trials=5
        )
        assert report.offline_cost > 0
        assert report.ratio <= report.theoretical_bound

    def test_upper_bound_formula_matches_instance_parameters(self):
        topo = LeafSpineTopology(n_racks=10)
        config = MatchingConfig(b=6, alpha=40)
        algo = RBMA(topo, config, rng=0)
        assert algo.theoretical_upper_bound() == pytest.approx(
            rbma_upper_bound(6, 6, topo.max_distance(), 40)
        )
