"""Tests for the deterministic paging policies (LRU, FIFO, LFU, random)."""

import numpy as np
import pytest

from repro.paging import (
    FIFOPaging,
    LFUPaging,
    LRUPaging,
    RandomEvictionPaging,
    available_paging_policies,
    make_paging_factory,
)
from repro.errors import ConfigurationError


class TestLRU:
    def test_evicts_least_recently_used(self):
        algo = LRUPaging(2)
        algo.request("a")
        algo.request("b")
        algo.request("a")  # refresh a; b is now LRU
        result = algo.request("c")
        assert result.evicted == ("b",)

    def test_sequential_scan_thrashes(self):
        algo = LRUPaging(3)
        misses = algo.serve_sequence([0, 1, 2, 3] * 10)
        assert misses == 40  # classic LRU worst case

    def test_drop_then_evict_consistent(self):
        algo = LRUPaging(2)
        algo.request("a")
        algo.request("b")
        algo.drop("a")
        algo.request("c")
        result = algo.request("d")
        assert result.evicted == ("b",)


class TestFIFO:
    def test_evicts_oldest_fetch(self):
        algo = FIFOPaging(2)
        algo.request("a")
        algo.request("b")
        algo.request("a")  # hit does not refresh FIFO order
        result = algo.request("c")
        assert result.evicted == ("a",)

    def test_queue_skips_dropped_pages(self):
        algo = FIFOPaging(2)
        algo.request("a")
        algo.request("b")
        algo.drop("a")
        algo.request("c")
        result = algo.request("d")
        assert result.evicted == ("b",)


class TestLFU:
    def test_evicts_least_frequent(self):
        algo = LFUPaging(2)
        algo.request("a")
        algo.request("a")
        algo.request("b")
        result = algo.request("c")
        assert result.evicted == ("b",)

    def test_frequency_reset_after_eviction(self):
        algo = LFUPaging(2)
        for _ in range(5):
            algo.request("a")
        algo.request("b")
        algo.request("c")  # evicts b (frequency 1 < 5)
        assert "a" in algo and "c" in algo
        # a's high count persists while it stays cached
        result = algo.request("d")
        assert result.evicted == ("c",)

    def test_tie_broken_by_staleness(self):
        algo = LFUPaging(2)
        algo.request("a")
        algo.request("b")
        result = algo.request("c")
        assert result.evicted == ("a",)


class TestRandomEviction:
    def test_respects_capacity(self):
        algo = RandomEvictionPaging(3, rng=0)
        rng = np.random.default_rng(1)
        for page in rng.integers(0, 10, size=200):
            algo.request(int(page))
            assert len(algo) <= 3

    def test_reproducible(self):
        seq = list(np.random.default_rng(2).integers(0, 6, size=200))
        a = RandomEvictionPaging(3, rng=9).serve_sequence(seq)
        b = RandomEvictionPaging(3, rng=9).serve_sequence(seq)
        assert a == b


class TestPagingRegistry:
    def test_lists_policies(self):
        names = available_paging_policies()
        assert {"marking", "lru", "fifo", "lfu", "random"} <= set(names)

    def test_factories_produce_working_algorithms(self):
        for name in available_paging_policies():
            factory = make_paging_factory(name)
            algo = factory(3, np.random.default_rng(0))
            algo.request("p")
            assert "p" in algo
            assert algo.capacity == 3

    def test_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            make_paging_factory("not-a-policy")
