"""Tests for the Trace container."""

import numpy as np
import pytest

from repro.errors import TrafficError
from repro.traffic import Trace, TraceMetadata
from repro.types import Request


def _make_trace():
    meta = TraceMetadata(name="t", n_nodes=5, seed=1, params={"x": 1})
    return Trace([0, 1, 2, 3], [1, 2, 3, 4], meta)


class TestConstruction:
    def test_basic(self):
        trace = _make_trace()
        assert len(trace) == 4
        assert trace.n_nodes == 5
        assert trace.name == "t"

    def test_length_mismatch_rejected(self):
        meta = TraceMetadata(name="t", n_nodes=5)
        with pytest.raises(TrafficError):
            Trace([0, 1], [1], meta)

    def test_out_of_range_rejected(self):
        meta = TraceMetadata(name="t", n_nodes=3)
        with pytest.raises(TrafficError):
            Trace([0, 5], [1, 2], meta)

    def test_negative_rejected(self):
        meta = TraceMetadata(name="t", n_nodes=3)
        with pytest.raises(TrafficError):
            Trace([0, -1], [1, 2], meta)

    def test_self_loops_rejected(self):
        meta = TraceMetadata(name="t", n_nodes=3)
        with pytest.raises(TrafficError):
            Trace([0, 1], [1, 1], meta)

    def test_from_pairs(self):
        trace = Trace.from_pairs([(0, 1), (2, 3)], n_nodes=4, name="p", seed=7)
        assert len(trace) == 2
        assert trace.metadata.seed == 7

    def test_from_requests(self):
        trace = Trace.from_requests([Request(0, 1), Request(3, 2)], n_nodes=4)
        assert list(trace.pairs()) == [(0, 1), (2, 3)]


class TestAccess:
    def test_iteration_yields_requests(self):
        trace = _make_trace()
        requests = list(trace)
        assert all(isinstance(r, Request) for r in requests)
        assert [(r.src, r.dst) for r in requests] == [(0, 1), (1, 2), (2, 3), (3, 4)]
        assert [r.timestamp for r in requests] == [0.0, 1.0, 2.0, 3.0]

    def test_getitem_single(self):
        trace = _make_trace()
        r = trace[2]
        assert (r.src, r.dst) == (2, 3)

    def test_getitem_slice_returns_trace(self):
        trace = _make_trace()
        sub = trace[1:3]
        assert isinstance(sub, Trace)
        assert len(sub) == 2
        assert list(sub.pairs()) == [(1, 2), (2, 3)]

    def test_prefix(self):
        trace = _make_trace()
        assert len(trace.prefix(2)) == 2
        with pytest.raises(TrafficError):
            trace.prefix(-1)

    def test_pair_counts(self):
        trace = Trace.from_pairs([(0, 1), (1, 0), (2, 3)], n_nodes=4)
        counts = trace.pair_counts()
        assert counts[(0, 1)] == 2
        assert counts[(2, 3)] == 1

    def test_concatenate(self):
        a = Trace.from_pairs([(0, 1)], n_nodes=4, name="a")
        b = Trace.from_pairs([(2, 3)], n_nodes=4, name="b")
        combined = a.concatenate(b)
        assert len(combined) == 2
        assert combined.name == "a+b"

    def test_concatenate_mismatched_nodes_rejected(self):
        a = Trace.from_pairs([(0, 1)], n_nodes=4)
        b = Trace.from_pairs([(0, 1)], n_nodes=5)
        with pytest.raises(TrafficError):
            a.concatenate(b)

    def test_sources_destinations_arrays(self):
        trace = _make_trace()
        assert isinstance(trace.sources, np.ndarray)
        np.testing.assert_array_equal(trace.sources, [0, 1, 2, 3])
        np.testing.assert_array_equal(trace.destinations, [1, 2, 3, 4])


class TestGlobalTimestamps:
    """Sliced segments keep *global* request timestamps.

    Regression: slices used to rebuild timestamps from the segment-local
    index, so a batched or streamed segment saw different timestamps than
    the reference per-request path — any timestamp-sensitive algorithm
    diverged between the replay paths.
    """

    def _trace(self, n=20):
        return Trace.from_pairs([(i % 5, (i % 5) + 1) for i in range(n)], n_nodes=6)

    def test_full_trace_timestamps_are_indices(self):
        trace = self._trace()
        assert [r.timestamp for r in trace.requests()] == [float(i) for i in range(20)]

    def test_slice_carries_global_timestamps(self):
        trace = self._trace()
        segment = trace[7:15]
        assert segment.offset == 7
        assert [r.timestamp for r in segment.requests()] == [
            float(7 + j) for j in range(8)
        ]
        assert segment[0].timestamp == 7.0
        assert segment[-1].timestamp == 14.0

    def test_nested_slices_compose_offsets(self):
        trace = self._trace()
        nested = trace[4:18][3:8]
        assert nested.offset == 7
        assert [r.timestamp for r in nested.requests()] == [
            float(4 + 3 + j) for j in range(5)
        ]

    def test_with_offset_rebases(self):
        trace = self._trace(5)
        rebased = trace.with_offset(100)
        assert rebased.offset == 100
        assert [r.timestamp for r in rebased.requests()] == [
            100.0, 101.0, 102.0, 103.0, 104.0
        ]
        # the original is untouched, and rebasing to the same offset is a no-op
        assert trace.offset == 0
        assert trace.with_offset(0) is trace

    def test_negative_offset_rejected(self):
        trace = self._trace(5)
        with pytest.raises(TrafficError, match="non-negative"):
            trace.with_offset(-1)
