"""Differential and behavioural tests for the static solver tier.

Certifies the ``SOLVER_BACKENDS`` registry (nx / array / numba) behind
SO-BMA's iterated maximum-weight b-matching:

* a hypothesis differential harness — array vs nx must agree on total
  matching weight, produce valid b-matchings, and be run-to-run
  deterministic;
* a strict identity certificate — on seeded random instances the array
  kernel must return the *same* matchings as NetworkX, which is the
  mechanism that makes SO-BMA figure costs bit-identical across backends
  (asserted end-to-end by ``benchmarks/bench_solver.py`` and pinned by the
  golden traces);
* prefix-sharing equivalence (``solve_b_rounds`` vs per-``b`` solves);
* demand-fingerprint memo behaviour (hits, misses, eviction, mutation
  safety, the ``REPRO_SOLVER_CACHE`` knob);
* the numba solver leg: PUREPY differential plus the fallback-with-warning
  contract when the compiled backend is inactive;
* spec/config UX (typo suggestions, JSON round-trips) and
  ``RunResult.extra`` provenance;
* a ``perf_smoke`` leg timing array vs nx.
"""

import time
import warnings

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import MatchingConfig
from repro.errors import ConfigurationError
from repro.experiments import AlgorithmSpec, ExperimentSpec
from repro.matching import (
    DEFAULT_SOLVER_BACKEND,
    SOLVER_BACKENDS,
    iterated_max_weight_b_matching,
    matching_weight,
    resolve_solver_backend,
    solve_b_rounds,
    solver_cache_clear,
    solver_cache_info,
)
from repro.matching import static_solver
from repro.matching.validation import check_b_matching

pytestmark = pytest.mark.solver


@pytest.fixture(autouse=True)
def _fresh_cache():
    """Isolate every test from memo state left by other tests."""
    solver_cache_clear()
    yield
    solver_cache_clear()


def _random_weights(rng: np.random.Generator, n: int, m: int) -> dict:
    weights = {}
    for _ in range(m):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            weights[(min(u, v), max(u, v))] = float(rng.integers(1, 8))
    return weights


@st.composite
def _instances(draw):
    n = draw(st.integers(min_value=2, max_value=10))
    pair = (
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1))
        .filter(lambda p: p[0] != p[1])
        .map(lambda p: (min(p), max(p)))
    )
    weight = st.one_of(
        st.integers(1, 6).map(float),
        st.floats(min_value=0.5, max_value=10.0, allow_nan=False),
    )
    weights = draw(st.dictionaries(pair, weight, max_size=n * (n - 1) // 2))
    b = draw(st.integers(min_value=1, max_value=3))
    return n, weights, b


class TestDifferential:
    @settings(
        deadline=None,
        max_examples=120,
        # The autouse cache-clearing fixture is function-scoped; the test
        # also clears the cache per example, so sharing it across examples
        # is sound.
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(_instances())
    def test_array_matches_nx_weight_validity_determinism(self, instance):
        n, weights, b = instance
        solver_cache_clear()
        chosen_nx = iterated_max_weight_b_matching(weights, n, b, backend="nx")
        solver_cache_clear()
        chosen_array = iterated_max_weight_b_matching(weights, n, b, backend="array")
        solver_cache_clear()
        chosen_again = iterated_max_weight_b_matching(weights, n, b, backend="array")
        check_b_matching(chosen_nx, n, b)
        check_b_matching(chosen_array, n, b)
        assert chosen_array == chosen_again  # run-to-run determinism
        assert matching_weight(chosen_array, weights) == pytest.approx(
            matching_weight(chosen_nx, weights), abs=1e-9
        )

    def test_array_is_identical_to_nx_on_seeded_batch(self):
        """Strict certificate: same matchings, not merely equal weight.

        This is what makes SO-BMA costs (including intermediate checkpoint
        series and reconfiguration counts) bit-identical across backends.
        """
        rng = np.random.default_rng(2023)
        for _ in range(250):
            n = int(rng.integers(2, 14))
            weights = _random_weights(rng, n, int(rng.integers(0, 30)))
            for b in (1, 2, 4):
                solver_cache_clear()
                chosen_nx = iterated_max_weight_b_matching(weights, n, b, backend="nx")
                solver_cache_clear()
                chosen_array = iterated_max_weight_b_matching(
                    weights, n, b, backend="array"
                )
                assert chosen_array == chosen_nx

    def test_numba_purepy_leg_is_identical(self, monkeypatch):
        """The numba code path (run uncompiled) must match the other backends."""
        monkeypatch.delenv("REPRO_NO_NUMBA", raising=False)
        monkeypatch.setenv("REPRO_NUMBA_PUREPY", "1")
        assert resolve_solver_backend("numba") == "numba"
        rng = np.random.default_rng(7)
        for _ in range(40):
            n = int(rng.integers(2, 10))
            weights = _random_weights(rng, n, int(rng.integers(0, 16)))
            solver_cache_clear()
            via_numba = iterated_max_weight_b_matching(weights, n, 2, backend="numba")
            solver_cache_clear()
            via_array = iterated_max_weight_b_matching(weights, n, 2, backend="array")
            assert via_numba == via_array


class TestPrefixSharing:
    def test_solve_b_rounds_equals_per_b_solves(self):
        rng = np.random.default_rng(11)
        for backend in ("array", "nx"):
            for _ in range(20):
                n = int(rng.integers(3, 10))
                weights = _random_weights(rng, n, int(rng.integers(1, 20)))
                solver_cache_clear()
                rounds = solve_b_rounds(weights, n, 4, backend=backend)
                assert len(rounds) == 4
                for k in range(1, 5):
                    solver_cache_clear()
                    assert rounds[k - 1] == iterated_max_weight_b_matching(
                        weights, n, k, backend=backend
                    )

    def test_larger_b_extends_instead_of_resolving(self, monkeypatch):
        calls = []
        real = SOLVER_BACKENDS.resolve("array")

        def counting(remaining, n_nodes):
            calls.append(len(remaining))
            return real(remaining, n_nodes)

        monkeypatch.setitem(SOLVER_BACKENDS._factories, "array", counting)
        weights = {(0, i): float(10 - i) for i in range(1, 8)}
        for i in range(1, 7):
            weights[(i, i + 1)] = 1.0
        iterated_max_weight_b_matching(weights, 8, 2, backend="array")
        rounds_after_b2 = len(calls)
        iterated_max_weight_b_matching(weights, 8, 4, backend="array")
        assert len(calls) == 4  # rounds 3 and 4 only, not a fresh 1..4
        assert rounds_after_b2 == 2
        iterated_max_weight_b_matching(weights, 8, 3, backend="array")
        assert len(calls) == 4  # pure prefix hit, no new rounds


class TestMemo:
    def test_hit_and_miss_counting(self):
        weights = {(0, 1): 2.0, (1, 2): 3.0, (2, 3): 2.0}
        first = iterated_max_weight_b_matching(weights, 4, 1)
        info = solver_cache_info()
        assert (info["hits"], info["misses"]) == (0, 1)
        second = iterated_max_weight_b_matching(weights, 4, 1)
        info = solver_cache_info()
        assert (info["hits"], info["misses"]) == (1, 1)
        assert first == second

    def test_returned_sets_are_mutation_safe(self):
        weights = {(0, 1): 2.0, (2, 3): 3.0}
        first = iterated_max_weight_b_matching(weights, 4, 1)
        first.add((0, 3))  # caller mangles its copy
        second = iterated_max_weight_b_matching(weights, 4, 1)
        assert (0, 3) not in second

    def test_eviction_at_capacity(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER_CACHE", "2")
        for offset in range(3):
            weights = {(0, 1): 1.0 + offset}
            iterated_max_weight_b_matching(weights, 2, 1)
        info = solver_cache_info()
        assert info["currsize"] == 2
        assert info["evictions"] == 1
        # The oldest entry was evicted: solving it again is a miss.
        iterated_max_weight_b_matching({(0, 1): 1.0}, 2, 1)
        assert solver_cache_info()["misses"] == 4

    def test_cache_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER_CACHE", "0")
        weights = {(0, 1): 2.0}
        iterated_max_weight_b_matching(weights, 2, 1)
        iterated_max_weight_b_matching(weights, 2, 1)
        info = solver_cache_info()
        assert info["currsize"] == 0
        assert info["hits"] == 0

    def test_insertion_order_is_part_of_the_fingerprint(self):
        # Order is the solver's tie-breaking order, so it must key the memo.
        forward = {(0, 1): 2.0, (2, 3): 3.0}
        backward = {(2, 3): 3.0, (0, 1): 2.0}
        iterated_max_weight_b_matching(forward, 4, 1)
        iterated_max_weight_b_matching(backward, 4, 1)
        assert solver_cache_info()["misses"] == 2

    def test_distinct_backends_do_not_share_entries(self):
        weights = {(0, 1): 2.0, (1, 2): 3.0}
        iterated_max_weight_b_matching(weights, 3, 1, backend="array")
        iterated_max_weight_b_matching(weights, 3, 1, backend="nx")
        assert solver_cache_info()["misses"] == 2


class TestBackendSelection:
    def test_default_backend_is_array(self):
        assert DEFAULT_SOLVER_BACKEND == "array"
        assert resolve_solver_backend(None) == "array"

    def test_unknown_backend_gets_suggestions(self):
        with pytest.raises(ConfigurationError, match="did you mean 'array'"):
            resolve_solver_backend("aray")

    def test_config_validates_solver_backend(self):
        with pytest.raises(ConfigurationError, match="did you mean"):
            MatchingConfig(b=2, solver_backend="arrray")
        assert MatchingConfig(b=2, solver_backend="nx").solver_backend == "nx"

    def test_numba_falls_back_with_one_warning(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMBA", "1")
        monkeypatch.setattr(static_solver, "_NUMBA_FALLBACK_WARNED", False)
        with pytest.warns(RuntimeWarning, match="solver backend 'numba' is unavailable"):
            assert resolve_solver_backend("numba") == "array"
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second resolve must stay silent
            assert resolve_solver_backend("numba") == "array"

    def test_fallback_solve_equals_array(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMBA", "1")
        monkeypatch.setattr(static_solver, "_NUMBA_FALLBACK_WARNED", True)
        weights = {(0, 1): 2.0, (1, 2): 3.0, (2, 3): 2.0}
        via_numba = iterated_max_weight_b_matching(weights, 4, 2, backend="numba")
        via_array = iterated_max_weight_b_matching(weights, 4, 2, backend="array")
        assert via_numba == via_array
        # The fallback shares the array memo entry rather than duplicating it.
        assert solver_cache_info()["misses"] == 1


def _so_bma_spec(solver_backend=None):
    return ExperimentSpec(
        algorithm={
            "name": "so-bma",
            "b": 3,
            "alpha": 4.0,
            "solver_backend": solver_backend,
        },
        traffic={"name": "zipf", "params": {"n_nodes": 12, "n_requests": 400}},
        seed=3,
    )


class TestSpecAndProvenance:
    def test_solver_backend_roundtrips_through_spec_json(self):
        spec = _so_bma_spec("nx")
        rebuilt = ExperimentSpec.from_json(spec.to_json())
        assert rebuilt == spec
        assert rebuilt.algorithm.solver_backend == "nx"
        default = ExperimentSpec.from_json(_so_bma_spec().to_json())
        assert default.algorithm.solver_backend is None

    def test_algorithm_spec_rejects_unknown_backend_eagerly(self):
        with pytest.raises(ConfigurationError, match="unknown solver backend"):
            AlgorithmSpec(name="so-bma", b=2, solver_backend="blossom").validate()
        with pytest.raises(ConfigurationError, match="did you mean 'numba'"):
            AlgorithmSpec(name="so-bma", b=2, solver_backend="nunba").validate()

    def test_run_result_records_requested_and_effective_backend(self):
        result = _so_bma_spec().execute()
        assert result.extra["solver_backend"] == DEFAULT_SOLVER_BACKEND
        assert result.extra["solver_kernel"] == "array"
        result_nx = _so_bma_spec("nx").execute()
        assert result_nx.extra["solver_backend"] == "nx"
        assert result_nx.extra["solver_kernel"] == "nx"
        assert result_nx.total_routing_cost == result.total_routing_cost
        assert result_nx.series.routing_cost.tolist() == result.series.routing_cost.tolist()

    def test_numba_request_records_fallback_kernel(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMBA", "1")
        monkeypatch.setattr(static_solver, "_NUMBA_FALLBACK_WARNED", True)
        result = _so_bma_spec("numba").execute()
        assert result.extra["solver_backend"] == "numba"
        assert result.extra["solver_kernel"] == "array"

    def test_greedy_solver_records_greedy_provenance(self):
        spec = ExperimentSpec(
            algorithm={"name": "so-bma", "b": 3, "params": {"solver": "greedy"}},
            traffic={"name": "zipf", "params": {"n_nodes": 12, "n_requests": 300}},
            seed=3,
        )
        result = spec.execute()
        assert result.extra["solver_kernel"] == "greedy"

    def test_online_algorithms_record_no_solver_provenance(self):
        spec = ExperimentSpec(
            algorithm={"name": "bma", "b": 3},
            traffic={"name": "zipf", "params": {"n_nodes": 12, "n_requests": 300}},
            seed=3,
        )
        result = spec.execute()
        assert "solver_backend" not in result.extra
        assert "solver_kernel" not in result.extra


@pytest.mark.perf_smoke
def test_array_solver_outpaces_nx():
    """Timing canary: the array kernel must beat the NetworkX blossom path.

    Loose threshold (the array kernel wins this instance by ~1.8x on an idle
    machine) so scheduler noise cannot flake CI while a regression that
    erases the win still fails.  ``BENCH_solver.json`` records the full
    figure-panel numbers; this is only the canary.
    """
    rng = np.random.default_rng(5)
    n = 60
    weights = {}
    for u in range(n):
        for v in range(u + 1, n):
            weights[(u, v)] = float(rng.integers(1, 500))
    timings = {}
    for backend in ("nx", "array"):
        best = float("inf")
        for _attempt in range(2):  # best-of-2 suppresses one-off blips
            solver_cache_clear()
            started = time.perf_counter()
            iterated_max_weight_b_matching(weights, n, 2, backend=backend)
            best = min(best, time.perf_counter() - started)
        timings[backend] = best
    assert timings["array"] < timings["nx"] * 0.9, (
        f"array solver took {timings['array']:.3f}s vs nx {timings['nx']:.3f}s "
        "— expected a clear win; the flat-array blossom kernel has regressed"
    )
